"""Documentation consistency checks (run by the CI docs job).

Verifies that:

1. every CLI subcommand (and every ``engine`` sub-subcommand) is documented
   in README.md;
2. the doc files README.md links to exist;
3. the docs-bearing modules listed in tests/test_doctests.py actually carry
   doctests (so the CI doctest step cannot silently test nothing);
4. the shell blocks of docs/cookbook.md actually run: they are extracted in
   order and executed in one scratch directory against a tiny generated
   fixture (skip with ``--skip-cookbook`` for a fast link-only check).

Run with::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import argparse
import doctest
import importlib
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "tests"))

COOKBOOK_PATH = os.path.join(REPO_ROOT, "docs", "cookbook.md")


def _subcommands():
    """All top-level CLI subcommands plus engine's nested ones."""
    from repro.cli import build_parser
    import argparse

    names = []
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                names.append(name)
                for sub_action in sub._actions:
                    if isinstance(sub_action, argparse._SubParsersAction):
                        names.extend("%s %s" % (name, nested)
                                     for nested in sub_action.choices)
    return names


def check_readme_covers_cli(readme_text: str):
    missing = [name for name in _subcommands()
               if not re.search(r"\b%s\b" % re.escape(name), readme_text)]
    return ["README.md does not mention CLI subcommand %r" % name
            for name in missing]


def check_linked_docs_exist(readme_text: str):
    problems = []
    for target in re.findall(r"\]\(([^)#]+)\)", readme_text):
        if target.startswith("http"):
            continue
        if not os.path.exists(os.path.join(REPO_ROOT, target)):
            problems.append("README.md links to missing path %r" % target)
    return problems


def check_doctest_modules():
    problems = []
    try:
        from test_doctests import DOCS_BEARING_MODULES
    except ImportError as exc:
        return ["cannot import tests/test_doctests.py: %s" % exc]
    for module_name in DOCS_BEARING_MODULES:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder(exclude_empty=True)
        examples = sum(len(case.examples) for case in finder.find(module))
        if examples == 0:
            problems.append("%s is listed as docs-bearing but has no doctests"
                            % module_name)
    return problems


def cookbook_shell_blocks():
    """The ```bash blocks of docs/cookbook.md, in document order."""
    if not os.path.isfile(COOKBOOK_PATH):
        return None
    with open(COOKBOOK_PATH, "r", encoding="utf-8") as handle:
        text = handle.read()
    return re.findall(r"```bash\n(.*?)```", text, flags=re.DOTALL)


def run_cookbook_smoke():
    """Execute every cookbook shell block, in order, in one scratch dir.

    The blocks are concatenated into a single ``bash -e`` script so a later
    recipe can use the files an earlier one created — exactly how an
    operator would paste them.  ``python`` resolves to the interpreter
    running this check via a PATH shim, and ``PYTHONPATH`` points at the
    checkout's ``src``.
    """
    blocks = cookbook_shell_blocks()
    if blocks is None:
        return ["docs/cookbook.md is missing"]
    if len(blocks) < 5:
        return ["docs/cookbook.md has only %d shell block(s); expected the "
                "recipe set" % len(blocks)]
    script = "set -euo pipefail\n" + "\n".join(blocks)
    with tempfile.TemporaryDirectory(prefix="cookbook_smoke_") as scratch:
        shim_dir = os.path.join(scratch, "bin")
        os.makedirs(shim_dir)
        for alias in ("python", "python3"):
            shim = os.path.join(shim_dir, alias)
            with open(shim, "w", encoding="utf-8") as handle:
                handle.write('#!/bin/sh\nexec "%s" "$@"\n' % sys.executable)
            os.chmod(shim, 0o755)
        env = dict(os.environ)
        env["PATH"] = shim_dir + os.pathsep + env.get("PATH", "")
        env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src") + os.pathsep
                             + env.get("PYTHONPATH", ""))
        result = subprocess.run(["bash", "-c", script], cwd=scratch, env=env,
                                capture_output=True, text=True)
        if result.returncode != 0:
            tail = "\n".join((result.stdout + "\n" + result.stderr).splitlines()[-25:])
            return ["cookbook smoke failed (exit %d); last output:\n%s"
                    % (result.returncode, tail)]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="documentation consistency checks")
    parser.add_argument("--skip-cookbook", action="store_true",
                        help="skip executing the docs/cookbook.md shell blocks")
    args = parser.parse_args(argv)

    readme_path = os.path.join(REPO_ROOT, "README.md")
    if not os.path.isfile(readme_path):
        print("FAIL: README.md is missing")
        return 1
    with open(readme_path, "r", encoding="utf-8") as handle:
        readme_text = handle.read()

    problems = (check_readme_covers_cli(readme_text)
                + check_linked_docs_exist(readme_text)
                + check_doctest_modules())
    cookbook_note = "cookbook skipped"
    if not args.skip_cookbook:
        problems += run_cookbook_smoke()
        cookbook_note = "%d cookbook blocks ran" % len(cookbook_shell_blocks() or [])
    if problems:
        print("documentation checks FAILED:")
        for problem in problems:
            print("  - %s" % problem)
        return 1
    print("documentation checks OK: %d CLI subcommands documented, links valid, "
          "doctests present, %s" % (len(_subcommands()), cookbook_note))
    return 0


if __name__ == "__main__":
    sys.exit(main())
