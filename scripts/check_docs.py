"""Documentation consistency checks (run by the CI docs job).

Verifies that:

1. every CLI subcommand (and every ``engine`` sub-subcommand) is documented
   in README.md;
2. the doc files README.md links to exist;
3. the docs-bearing modules listed in tests/test_doctests.py actually carry
   doctests (so the CI doctest step cannot silently test nothing).

Run with::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import doctest
import importlib
import os
import re
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "tests"))


def _subcommands():
    """All top-level CLI subcommands plus engine's nested ones."""
    from repro.cli import build_parser
    import argparse

    names = []
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                names.append(name)
                for sub_action in sub._actions:
                    if isinstance(sub_action, argparse._SubParsersAction):
                        names.extend("%s %s" % (name, nested)
                                     for nested in sub_action.choices)
    return names


def check_readme_covers_cli(readme_text: str):
    missing = [name for name in _subcommands()
               if not re.search(r"\b%s\b" % re.escape(name), readme_text)]
    return ["README.md does not mention CLI subcommand %r" % name
            for name in missing]


def check_linked_docs_exist(readme_text: str):
    problems = []
    for target in re.findall(r"\]\(([^)#]+)\)", readme_text):
        if target.startswith("http"):
            continue
        if not os.path.exists(os.path.join(REPO_ROOT, target)):
            problems.append("README.md links to missing path %r" % target)
    return problems


def check_doctest_modules():
    problems = []
    try:
        from test_doctests import DOCS_BEARING_MODULES
    except ImportError as exc:
        return ["cannot import tests/test_doctests.py: %s" % exc]
    for module_name in DOCS_BEARING_MODULES:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder(exclude_empty=True)
        examples = sum(len(case.examples) for case in finder.find(module))
        if examples == 0:
            problems.append("%s is listed as docs-bearing but has no doctests"
                            % module_name)
    return problems


def main() -> int:
    readme_path = os.path.join(REPO_ROOT, "README.md")
    if not os.path.isfile(readme_path):
        print("FAIL: README.md is missing")
        return 1
    with open(readme_path, "r", encoding="utf-8") as handle:
        readme_text = handle.read()

    problems = (check_readme_covers_cli(readme_text)
                + check_linked_docs_exist(readme_text)
                + check_doctest_modules())
    if problems:
        print("documentation checks FAILED:")
        for problem in problems:
            print("  - %s" % problem)
        return 1
    print("documentation checks OK: %d CLI subcommands documented, links valid, "
          "doctests present" % len(_subcommands()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
