"""CI smoke test for the trace-analytics daemon.

Starts the service on a freshly written two-store catalog and drives the
load-bearing behaviours end to end through real HTTP:

* health + store listing;
* characterize: cold miss, then a cache hit bit-identical to the cold bytes;
* engine query against the second store (per-store caches);
* append through the API: the manifest sequence bumps, only that store's
  cache entries are invalidated, and the re-run sees the appended rows;
* /metrics exports the scan/cache counters the run just exercised.

Exit code 0 on success, 1 with a message on any violated expectation.

Run with::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import os
import sys
import tempfile

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.engine import ChunkedTraceStore
from repro.service import ServiceClient, ServiceThread
from repro.traces import load_workload


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit("service smoke FAILED: %s" % message)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="service_smoke_") as catalog:
        fb = load_workload("FB-2010", seed=0, scale=0.002)
        cc = load_workload("CC-b", seed=1, scale=0.01)
        ChunkedTraceStore.write(os.path.join(catalog, "fb"), fb, chunk_rows=512)
        ChunkedTraceStore.write(os.path.join(catalog, "cc"), cc, chunk_rows=512)

        with ServiceThread(catalog, batch_window_s=0.02) as thread:
            client = ServiceClient(port=thread.port, timeout=120.0)

            health = client.healthz()
            check(health["status"] == "ok", "healthz not ok: %r" % health)
            check(health["stores"] == ["cc", "fb"],
                  "unexpected store listing: %r" % health["stores"])

            cold = client.characterize("fb", experiments=["table1", "figure1"])
            check(cold.cache == "miss", "first characterize was %r" % cold.cache)
            warm = client.characterize("fb", experiments=["table1", "figure1"])
            check(warm.cache == "hit", "repeat characterize was %r" % warm.cache)
            check(warm.data == cold.data, "cache hit was not bit-identical")

            queried = client.query("cc", agg=["count", "p99:duration_s"])
            check(queried.cache == "miss", "cc query was %r" % queried.cache)
            n_cc = queried.json()["aggregates"]["count"]
            check(n_cc == len(cc), "cc count %r != %d" % (n_cc, len(cc)))

            appended = client.append("fb", cc.jobs[:25])
            check(appended["manifest_sequence"] == 1,
                  "append did not bump the sequence: %r" % appended)
            fresh = client.characterize("fb", experiments=["table1", "figure1"])
            check(fresh.cache == "miss", "append did not invalidate fb")
            body = fresh.json()
            check(body["manifest_sequence"] == 1 and
                  body["n_jobs"] == len(fb) + 25,
                  "re-characterize did not see the append: %r"
                  % {k: body[k] for k in ("manifest_sequence", "n_jobs")})
            check(client.query("cc", agg=["count", "p99:duration_s"]).cache
                  == "hit", "append to fb invalidated cc")

            check(client.metric("repro_scans_started_total") == 2,
                  "expected exactly 2 scans (cold + post-append)")
            check(client.metric("repro_cache_hits_total") >= 2,
                  "cache hits not visible in /metrics")
            check(client.metric("repro_cache_invalidations_total") >= 1,
                  "invalidation not visible in /metrics")

    print("service smoke OK: cold/hit bit-identical, append invalidated "
          "one store, 2 scans for 3 characterizations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
