"""Command-line interface.

``python -m repro`` (or the ``repro-workloads`` console script) exposes the
main workflows:

* ``generate`` — synthesize a paper workload trace and write it to disk;
* ``characterize`` — run the full characterization on a workload, a trace
  file, or — out-of-core via streamed engine scans — a chunked columnar
  store (``--store``);
* ``synthesize`` — build a SWIM-style scaled workload from a trace;
* ``replay`` — replay a workload on the simulated cluster, either
  materialized or streamed with bounded memory from a chunked store
  (``--store``) or a trace file (``--streaming``); ``--sweep spec.json``
  fans a grid of (scheduler × cache × cluster) scenarios out over worker
  processes and prints a comparison table;
* ``anonymize`` — hash paths/names in a trace and optionally export the
  aggregated metrics JSON for offsite sharing;
* ``compare`` — compare two traces (evolution report: median shifts,
  burstiness change);
* ``bench`` — run the benchmark suite and print the report; ``--store``
  reproduces Table 1, Figures 1-10 and Table 2 directly from chunked
  columnar store(s) without materializing jobs;
* ``engine`` — columnar trace engine: convert a trace (or re-encode an
  existing store) to the chunked on-disk columnar store, **append** fresh
  jobs to a v2 store (``ingest``, crash-safe), inspect a store (``info
  --sizes`` breaks the disk footprint down per column; ``info --json``
  emits the machine-readable metadata the service catalog consumes), build
  secondary-index sidecars (``index build``/``status``/``drop``), and run
  filtered/grouped aggregate and top-k queries over it — planned through
  the indexes when fresh ones exist (``query --explain`` prints the chosen
  access path; ``--no-index`` forces the scan path), optionally in
  parallel;
* ``serve`` — run the trace-analytics daemon: an HTTP server over a catalog
  of named stores with shared-scan admission, append-aware result caching,
  background feed ingest and workload-drift subscriptions (see
  ``docs/service.md``).

``characterize --store`` supports **checkpointed incremental runs**:
``--checkpoint PATH`` persists the scan's fold states; after an ``engine
ingest``, ``--resume PATH`` folds only the appended chunks (bit-identical to
a full rescan, which non-resumable analyses transparently fall back to).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from . import __version__
from .bench.suite import CHARACTERIZATION_EXPERIMENT_IDS, EXPERIMENT_IDS, render_suite, run_suite
from .engine import ChunkedTraceStore, ParallelExecutor, Query, execute
from .errors import ReproError
from .core.characterization import characterize
from .core.evolution import compare_evolution
from .simulator.cluster import ClusterConfig
from .simulator.replay import WorkloadReplayer
from .simulator.sweep import (
    CACHE_NAMES,
    SCHEDULER_NAMES,
    Scenario,
    ScenarioSweep,
    load_sweep_spec,
)
from .synth.swim import SwimSynthesizer
from .traces.anonymize import Anonymizer, anonymize_trace
from .traces.export import aggregate_trace
from .traces.io import iter_trace, read_trace, write_trace
from .traces.registry import load_workload, registered_names
from .units import HOUR

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-workloads",
        description="MapReduce workload characterization, synthesis and replay "
                    "(reproduction of Chen, Alspaugh & Katz, VLDB 2012).",
    )
    parser.add_argument("--version", action="version", version="repro %s" % __version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a workload trace")
    generate.add_argument("workload", choices=registered_names(), help="workload name")
    generate.add_argument("--scale", type=float, default=None, help="job-count scale factor")
    generate.add_argument("--seed", type=int, default=0, help="generation seed")
    generate.add_argument("--output", required=True, help="output trace path (.csv/.jsonl[.gz])")

    character = subparsers.add_parser("characterize", help="characterize a workload")
    source = character.add_mutually_exclusive_group(required=True)
    source.add_argument("--workload", choices=registered_names(), help="generate and characterize")
    source.add_argument("--trace", help="characterize an existing trace file")
    source.add_argument("--store", help="characterize a chunked columnar store "
                                        "out-of-core (streamed engine scans)")
    character.add_argument("--scale", type=float, default=None, help="scale for generated workloads")
    character.add_argument("--seed", type=int, default=0)
    character.add_argument("--no-cluster", action="store_true", help="skip the Table-2 clustering step")
    character.add_argument("--processes", type=int, default=None, metavar="N",
                           help="fan the shared scan of a --store source out "
                                "over N worker processes")
    character.add_argument("--checkpoint", metavar="PATH",
                           help="save a characterization checkpoint (JSON + "
                                ".npz) after the scan — --store sources only")
    character.add_argument("--resume", metavar="PATH",
                           help="resume from a checkpoint of an earlier scan: "
                                "resumable analyses fold only the chunks "
                                "appended since (ingest), the rest rescan — "
                                "--store sources only")

    synthesize = subparsers.add_parser("synthesize", help="SWIM-style scaled synthesis")
    synth_source = synthesize.add_mutually_exclusive_group(required=True)
    synth_source.add_argument("--workload", choices=registered_names())
    synth_source.add_argument("--trace", help="source trace file")
    synthesize.add_argument("--jobs", type=int, default=2000, help="synthetic job count")
    synthesize.add_argument("--hours", type=float, default=4.0, help="replay window in hours")
    synthesize.add_argument("--machines", type=int, default=20, help="target cluster size")
    synthesize.add_argument("--seed", type=int, default=0)
    synthesize.add_argument("--scale", type=float, default=None)
    synthesize.add_argument("--output", required=True, help="output synthetic trace path")

    replay = subparsers.add_parser(
        "replay",
        help="replay a workload on the simulator (materialized or streaming)")
    replay_source = replay.add_mutually_exclusive_group(required=True)
    replay_source.add_argument("--workload", choices=registered_names())
    replay_source.add_argument("--trace", help="trace file to replay")
    replay_source.add_argument("--store", help="chunked columnar store directory "
                                               "(streamed with bounded memory)")
    replay.add_argument("--scale", type=float, default=None)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--nodes", type=int, default=100, help="simulated cluster size")
    replay.add_argument("--max-jobs", type=int, default=None, help="cap on replayed jobs")
    replay.add_argument("--scheduler", choices=list(SCHEDULER_NAMES), default="fifo",
                        help="scheduling policy (default fifo)")
    replay.add_argument("--cache", choices=list(CACHE_NAMES), default="none",
                        help="storage-cache policy (default none)")
    replay.add_argument("--cache-gb", type=float, default=1024.0,
                        help="cache capacity in GB for bounded policies")
    replay.add_argument("--streaming", action="store_true",
                        help="stream a --trace file lazily instead of materializing it "
                             "(--store always streams)")
    replay.add_argument("--shards", type=int, default=0, metavar="N",
                        help="split a --store replay into N time-window "
                             "shards (0/1 = unsharded)")
    replay.add_argument("--shard-mode", choices=["exact", "windowed"],
                        default="exact",
                        help="exact: one engine threaded across boundaries, "
                             "bit-identical to unsharded; windowed: windows "
                             "replay in parallel worker processes, "
                             "cross-boundary contention approximated")
    replay.add_argument("--lookahead", type=int, default=None,
                        help="bound on submissions queued ahead of simulated time")
    replay.add_argument("--sweep", metavar="SPEC.json",
                        help="run a scenario sweep (grid/list of scheduler x cache x "
                             "cluster cells) instead of a single replay")
    replay.add_argument("--processes", type=int, default=None, metavar="N",
                        help="worker processes for a store-backed --sweep")
    replay.add_argument("--output", help="also write the sweep results JSON here")

    anonymize = subparsers.add_parser("anonymize",
                                      help="anonymize a trace and/or export aggregated metrics")
    anon_source = anonymize.add_mutually_exclusive_group(required=True)
    anon_source.add_argument("--workload", choices=registered_names())
    anon_source.add_argument("--trace", help="trace file to anonymize")
    anonymize.add_argument("--scale", type=float, default=None)
    anonymize.add_argument("--seed", type=int, default=0)
    anonymize.add_argument("--salt", default="repro", help="anonymization salt")
    anonymize.add_argument("--output", help="write the anonymized trace here (.csv/.jsonl[.gz])")
    anonymize.add_argument("--aggregate", help="also write the aggregated-metrics JSON here")

    compare = subparsers.add_parser("compare",
                                    help="evolution comparison of two traces (before vs after)")
    compare.add_argument("--before-workload", choices=registered_names())
    compare.add_argument("--before-trace")
    compare.add_argument("--after-workload", choices=registered_names())
    compare.add_argument("--after-trace")
    compare.add_argument("--scale", type=float, default=None)
    compare.add_argument("--seed", type=int, default=0)

    bench = subparsers.add_parser("bench", help="run the benchmark suite")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--scale", type=float, default=None, help="uniform workload scale")
    bench.add_argument("--store", action="append", metavar="DIR",
                       help="run the suite on chunked columnar store(s) instead of "
                            "generating workloads (repeatable; defaults to the "
                            "characterization experiments, streamed out-of-core)")
    bench.add_argument("--experiments", nargs="*", choices=list(EXPERIMENT_IDS),
                       help="subset of experiments to run")
    bench.add_argument("--no-simulation", action="store_true",
                       help="skip experiments that need the replay simulator")
    bench.add_argument("--no-shared-scan", action="store_true",
                       help="run each characterization experiment as its own "
                            "scan instead of one shared scan per trace")
    bench.add_argument("--processes", type=int, default=None, metavar="N",
                       help="worker processes for the shared scan of "
                            "store-backed traces")
    bench.add_argument("--output", help="also write the report to this file")

    engine = subparsers.add_parser("engine",
                                   help="columnar trace engine (convert / info "
                                        "/ index / query)")
    engine_actions = engine.add_subparsers(dest="engine_command", required=True)

    convert = engine_actions.add_parser("convert",
                                        help="convert a trace to a chunked columnar store")
    convert_source = convert.add_mutually_exclusive_group(required=True)
    convert_source.add_argument("--workload", choices=registered_names(),
                                help="generate and convert a paper workload")
    convert_source.add_argument("--trace", help="trace file (.csv/.jsonl[.gz]); streamed lazily")
    convert_source.add_argument("--store", help="existing store directory "
                                                "(v1<->v2<->v3 re-encoding, streamed "
                                                "chunk by chunk)")
    convert.add_argument("--scale", type=float, default=None)
    convert.add_argument("--seed", type=int, default=0)
    convert.add_argument("--output", required=True, help="store directory to create")
    convert.add_argument("--chunk-rows", type=int, default=65536,
                         help="rows per on-disk chunk (bounds conversion memory)")
    convert.add_argument("--format", choices=["v1", "v2", "v3"], default="v2",
                         help="store layout: v2 (default) raw per-column .npy "
                              "read via mmap; v3 per-column compressed blocks "
                              "with dictionary-encoded strings; v1 legacy "
                              "compressed .npz")
    convert.add_argument("--codec", default=None,
                         help="v3 block codec (default zlib; lzma always "
                              "available, zstd/lz4 when installed)")
    convert.add_argument("--level", type=int, default=None,
                         help="v3 codec compression level (codec default if "
                              "omitted)")

    ingest = engine_actions.add_parser(
        "ingest", help="append fresh jobs to an existing v2/v3 store "
                       "(crash-safe manifest swap; zone maps extended)")
    ingest.add_argument("--store", required=True, help="store directory to append to")
    ingest_source = ingest.add_mutually_exclusive_group(required=True)
    ingest_source.add_argument("--trace", help="trace file with the new jobs; streamed lazily")
    ingest_source.add_argument("--workload", choices=registered_names(),
                               help="generate and append a paper workload")
    ingest.add_argument("--scale", type=float, default=None)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--chunk-rows", type=int, default=None,
                        help="rows per appended chunk (default: the store's "
                             "own chunk_rows)")
    ingest.add_argument("--codec", default=None,
                        help="create the store as v3 with this codec when "
                             "--store does not exist yet (appends always reuse "
                             "the store's own codec)")
    ingest.add_argument("--level", type=int, default=None,
                        help="codec level for --codec (codec default if omitted)")

    info = engine_actions.add_parser("info", help="summarize a chunked columnar store")
    info.add_argument("--store", required=True, help="store directory")
    info.add_argument("--sizes", action="store_true",
                      help="also print the per-column on-disk size breakdown "
                           "(v1: compressed member sizes; v2: raw .npy sizes; "
                           "v3: compressed vs uncompressed bytes and ratio)")
    info.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON (store uid, manifest "
                           "sequence, columns, sizes) instead of the table")

    index = engine_actions.add_parser(
        "index", help="build / inspect / drop the secondary-index sidecar "
                      "(sorted numeric indexes, inverted string indexes)")
    index.add_argument("action", choices=["build", "status", "drop"],
                       help="build: stream the store chunk-at-a-time and write "
                            "the sidecar; status: freshness and per-column "
                            "stats; drop: delete the sidecar")
    index.add_argument("--store", required=True, help="store directory")
    index.add_argument("--columns", nargs="*", default=None,
                       help="columns to index with 'build' (default: every "
                            "indexable column)")
    index.add_argument("--json", action="store_true",
                       help="emit the 'status' summary as JSON")

    query = engine_actions.add_parser("query",
                                      help="filtered aggregate / group-by / top-k over a store")
    query.add_argument("--store", required=True, help="store directory")
    query.add_argument("--where", action="append", default=[], metavar="COL OP VALUE",
                       help="filter, e.g. 'input_bytes > 1e9' (repeatable, ANDed)")
    query.add_argument("--agg", nargs="*", default=[], metavar="OP:COLUMN",
                       help="aggregates, e.g. count sum:input_bytes p99:duration_s")
    query.add_argument("--group-by", help="group aggregates by a column")
    query.add_argument("--top-k", metavar="COLUMN:K",
                       help="return the K rows with the largest COLUMN instead of aggregating")
    query.add_argument("--limit", type=int, default=None,
                       help="collect at most N matching rows (short-circuits the scan)")
    query.add_argument("--columns", nargs="*", help="projection for top-k/limit output")
    query.add_argument("--parallel", type=int, default=None, metavar="N",
                       help="fan the scan out over N worker processes")
    query.add_argument("--explain", action="store_true",
                       help="print the planner's chosen access path without "
                            "executing the query")
    query.add_argument("--no-index", action="store_true",
                       help="ignore any index sidecar (zone-map scan only)")
    query.add_argument("--json", action="store_true",
                       help="emit results, stats and the plan as JSON")

    fed_compare = engine_actions.add_parser(
        "compare", help="federated cross-store comparison over a catalog of "
                        "member stores (the paper's seven-cluster argument)")
    fed_compare.add_argument("--catalog", required=True,
                             help="catalog directory: each subdirectory holding "
                                  "a store manifest is one member (name "
                                  "'<cluster>@<epoch>' tags cluster and epoch; "
                                  "catalog.json can override per member)")
    fed_compare.add_argument("--members", nargs="*", default=None,
                             help="member names to compare (default: every "
                                  "member in the catalog)")
    fed_compare.add_argument("--pairs", action="append", default=None,
                             metavar="A,B",
                             help="focus pair to detail with per-feature "
                                  "deltas (repeatable; default: every pair)")
    fed_compare.add_argument("--suite-size", type=int, default=None, metavar="K",
                             help="also select K representative members by "
                                  "greedy k-center")
    fed_compare.add_argument("--threshold-gb", type=float, default=10.0,
                             help="small-job byte threshold in GB (default 10)")
    fed_compare.add_argument("--processes", type=int, default=None, metavar="N",
                             help="profile members in parallel over N worker "
                                  "processes (results identical to serial)")
    fed_compare.add_argument("--checkpoints", metavar="DIR",
                             help="per-member profile checkpoints directory; "
                                  "reruns after appends fold only new chunks")
    fed_compare.add_argument("--json", action="store_true",
                             help="emit the full machine-readable report as JSON")

    serve = subparsers.add_parser(
        "serve", help="run the trace-analytics service daemon over a store catalog")
    serve.add_argument("--catalog", required=True,
                       help="catalog directory: each subdirectory holding a "
                            "manifest.json is served as a named store")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (0 picks an ephemeral port; see "
                            "--ready-file)")
    serve.add_argument("--workers", type=int, default=4, metavar="N",
                       help="worker threads for scans/queries/replays")
    serve.add_argument("--batch-window-ms", type=float, default=50.0,
                       help="admission window: characterization requests for "
                            "the same store arriving within it share one scan")
    serve.add_argument("--cache-entries", type=int, default=256,
                       help="result-cache capacity in entries")
    serve.add_argument("--feed", action="append", default=[], metavar="STORE=PATH",
                       help="tail a JSONL trace feed into a named store "
                            "(repeatable); offsets persist across restarts")
    serve.add_argument("--poll-interval", type=float, default=1.0,
                       help="feed poll interval in seconds")
    serve.add_argument("--no-checkpoints", action="store_true",
                       help="disable the per-store characterization "
                            "checkpoints under <catalog>/.service/")
    serve.add_argument("--ready-file", metavar="PATH",
                       help="write {host, port, pid} JSON here once the "
                            "socket is bound (for scripts using --port 0)")
    return parser


def _load_source(args) -> "object":
    """Load a trace from --workload, --trace or --store arguments.

    ``--store`` returns a lazy :class:`ChunkedTraceStore` handle (for the
    commands that stream it); the others materialize a :class:`Trace`.
    """
    if getattr(args, "workload", None):
        return load_workload(args.workload, seed=args.seed, scale=args.scale)
    if getattr(args, "store", None) and not getattr(args, "trace", None):
        return ChunkedTraceStore(args.store)
    return read_trace(args.trace)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Library failures (any :class:`~repro.errors.ReproError` — bad traces,
    impossible analyses, malformed stores) print one error line to stderr and
    exit 1 instead of dumping a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(parser, args)
    except ReproError as exc:
        print("error: %s" % (exc,), file=sys.stderr)
        return 1


def _dispatch(parser, args) -> int:
    if args.command == "generate":
        trace = load_workload(args.workload, seed=args.seed, scale=args.scale)
        write_trace(trace, args.output)
        print("wrote %d jobs to %s" % (len(trace), args.output))
        return 0

    if args.command == "characterize":
        if (args.checkpoint or args.resume) and not args.store:
            parser.error("--checkpoint/--resume need a --store source "
                         "(checkpoints record a chunk watermark)")
        trace = _load_source(args)
        report = characterize(trace, cluster=not args.no_cluster,
                              processes=args.processes,
                              resume_from=args.resume,
                              checkpoint_to=args.checkpoint)
        print(report.render())
        return 0

    if args.command == "synthesize":
        trace = _load_source(args)
        synthesizer = SwimSynthesizer(trace, seed=args.seed,
                                      source_machines=trace.machines or args.machines)
        plan = synthesizer.synthesize(n_jobs=args.jobs, horizon_s=args.hours * HOUR,
                                      target_machines=args.machines)
        write_trace(plan.trace, args.output)
        print(plan.describe())
        print("wrote synthetic trace to %s" % args.output)
        return 0

    if args.command == "replay":
        return _run_replay(parser, args)

    if args.command == "anonymize":
        trace = _load_source(args)
        anonymized = anonymize_trace(trace, Anonymizer(salt=args.salt), hash_job_ids=True)
        if args.output:
            write_trace(anonymized, args.output)
            print("wrote anonymized trace (%d jobs) to %s" % (len(anonymized), args.output))
        if args.aggregate:
            with open(args.aggregate, "w", encoding="utf-8") as handle:
                handle.write(aggregate_trace(anonymized).to_json(indent=2) + "\n")
            print("wrote aggregated metrics to %s" % args.aggregate)
        if not args.output and not args.aggregate:
            print(aggregate_trace(anonymized).to_json(indent=2))
        return 0

    if args.command == "compare":
        def load(workload, trace_path):
            if workload:
                return load_workload(workload, seed=args.seed, scale=args.scale)
            if trace_path:
                return read_trace(trace_path)
            parser.error("compare needs both a before and an after source")
        before = load(args.before_workload, args.before_trace)
        after = load(args.after_workload, args.after_trace)
        report = compare_evolution(before, after)
        print("\n".join(report.summary_lines()))
        return 0

    if args.command == "engine":
        return _run_engine(parser, args)

    if args.command == "serve":
        return _run_serve(parser, args)

    if args.command == "bench":
        traces = None
        experiments = args.experiments
        if args.store:
            traces = {}
            for directory in args.store:
                store = ChunkedTraceStore(directory)
                # Stores converted from plain trace files all default to the
                # manifest name "trace"; disambiguate collisions by directory
                # so no store silently drops out of the report.
                name = store.name
                if name in traces:
                    base = os.path.basename(os.path.normpath(directory))
                    name = "%s (%s)" % (store.name, base)
                    suffix = 2
                    while name in traces:
                        name = "%s (%s#%d)" % (store.name, base, suffix)
                        suffix += 1
                traces[name] = store
            if experiments is None:
                # Stores default to the characterization experiments: the
                # replay ablations need materialized Job objects and must be
                # requested explicitly.
                experiments = list(CHARACTERIZATION_EXPERIMENT_IDS)
        results = run_suite(seed=args.seed, scale=args.scale,
                            traces=traces,
                            experiments=experiments,
                            include_simulation=not args.no_simulation,
                            shared_scan=not args.no_shared_scan,
                            processes=args.processes)
        report = render_suite(results)
        print(report)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
        return 0

    parser.error("unknown command %r" % (args.command,))
    return 2


# ---------------------------------------------------------------------------
# replay subcommand
# ---------------------------------------------------------------------------
def _replay_scenario(args) -> Scenario:
    """Build the single-replay Scenario described by the CLI flags."""
    return Scenario(
        name="cli",
        scheduler=args.scheduler,
        cache=args.cache,
        cache_gb=args.cache_gb,
        nodes=args.nodes,
        max_jobs=args.max_jobs,
        shards=args.shards,
        shard_mode=args.shard_mode,
        **({"lookahead": args.lookahead} if args.lookahead is not None else {}),
    )


def _run_replay(parser, args) -> int:
    if args.sweep:
        return _run_replay_sweep(parser, args)

    if args.shards and args.shards > 1 and not args.store:
        parser.error("--shards needs --store: time-window sharding splits a "
                     "sorted chunked store (build one with 'repro engine "
                     "convert')")
    scenario = _replay_scenario(args)
    if args.store:
        replayer = scenario.build_replayer()
        if scenario.shards > 1:
            # The sweep runner pins shard workers to 1 process (its own pool
            # does the fan-out); a single CLI replay gets the cores itself.
            replayer.processes = args.processes
        metrics = replayer.replay_store(args.store)
        source_label = "store %s (streamed)" % args.store
        if scenario.shards > 1:
            source_label += ", %d %s shards" % (scenario.shards,
                                                scenario.shard_mode)
    elif args.trace and args.streaming:
        metrics = scenario.build_replayer().replay_path(args.trace)
        source_label = "trace %s (streamed)" % args.trace
    else:
        trace = _load_source(args)
        replayer = WorkloadReplayer(cluster_config=scenario.cluster_config(),
                                    scheduler=scenario.build_scheduler(),
                                    cache=scenario.build_cache(),
                                    max_simulated_jobs=args.max_jobs,
                                    **({"lookahead": args.lookahead}
                                       if args.lookahead is not None else {}))
        metrics = replayer.replay(trace)
        source_label = "trace (materialized)"
    print("replayed %d jobs (%d finished) on %d nodes [%s, scheduler=%s, cache=%s]"
          % (metrics.n_jobs, metrics.finished_jobs, args.nodes,
             source_label, args.scheduler, args.cache))
    print("mean wait %.1f s, median completion %.1f s, mean utilization %.1f%%" % (
        metrics.mean_wait_time(), metrics.median_completion_time(),
        100 * metrics.mean_utilization()))
    if args.cache != "none" and metrics.cache_stats is not None:
        print("cache hit rate %.1f%% (%.1f%% of bytes)" % (
            100 * metrics.cache_stats.hit_rate,
            100 * metrics.cache_stats.byte_hit_rate))
    return 0


def _run_replay_sweep(parser, args) -> int:
    from .engine import ParallelExecutor

    # Scenario identity (scheduler/cache/cluster) lives in the spec file;
    # rejecting the single-replay flags here beats silently ignoring them.
    if (args.scheduler != "fifo" or args.cache != "none"
            or args.cache_gb != 1024.0 or args.nodes != 100 or args.shards):
        parser.error("--scheduler/--cache/--cache-gb/--nodes/--shards apply "
                     "to single replays; with --sweep, define them per "
                     "scenario in the spec file")
    scenarios = load_sweep_spec(args.sweep)
    for scenario in scenarios:
        if args.max_jobs is not None:
            scenario.max_jobs = args.max_jobs
        if args.lookahead is not None:
            scenario.lookahead = args.lookahead
    sweep = ScenarioSweep(scenarios,
                          executor=ParallelExecutor(processes=args.processes))
    if args.store:
        source = args.store
    else:
        # Trace files and generated workloads are materialized once and the
        # scenarios run serially against the shared in-memory trace.
        source = _load_source(args)
    result = sweep.run(source)
    print(result.render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.to_json(indent=2) + "\n")
        print("wrote sweep results JSON to %s" % args.output)
    return 0


# ---------------------------------------------------------------------------
# engine subcommand
# ---------------------------------------------------------------------------
def _build_engine_query(args) -> Query:
    """Build the engine Query from the CLI flags.

    Delegates to :func:`repro.service.requests.build_query` — the service's
    ``query`` endpoint consumes the same spec, so clause syntax and
    validation are identical on both surfaces.
    """
    from .service.requests import build_query

    return build_query({
        "where": list(args.where),
        "agg": list(args.agg),
        "group_by": args.group_by,
        "top_k": args.top_k,
        "limit": args.limit,
        "columns": args.columns,
    })


def _run_engine(parser, args) -> int:
    if args.engine_command == "convert":
        if (args.codec is not None or args.level is not None) and args.format != "v3":
            parser.error("--codec/--level require --format v3")
        if args.workload:
            source = load_workload(args.workload, seed=args.seed, scale=args.scale)
        elif args.store:
            from .engine.pipeline import find_store_checkpoints

            source = ChunkedTraceStore(args.store)  # store->store re-encode
            checkpoints = find_store_checkpoints(source)
            if checkpoints:
                raise ReproError(
                    "refusing to convert %s: checkpoint(s) reference this store "
                    "(%s); conversion mints a fresh store_uid, so a resume "
                    "against the converted copy would be rejected — finish or "
                    "delete the checkpoint(s) first"
                    % (args.store, ", ".join(checkpoints)))
        else:
            source = iter_trace(args.trace)  # lazy: bounded by --chunk-rows
        store = ChunkedTraceStore.write(args.output, source, chunk_rows=args.chunk_rows,
                                        name=args.workload or None,
                                        format_version=int(args.format.lstrip("v")),
                                        codec=args.codec, codec_level=args.level)
        codec_note = ", codec %s" % (store.codec,) if store.format_version == 3 else ""
        print("wrote %d jobs in %d chunks to %s (format v%d%s)"
              % (store.n_jobs, store.n_chunks, args.output, store.format_version,
                 codec_note))
        return 0

    if args.engine_command == "ingest":
        from .engine.store import MANIFEST_NAME

        if args.workload:
            source = load_workload(args.workload, seed=args.seed, scale=args.scale)
        else:
            source = iter_trace(args.trace)  # lazy: bounded by chunk rows
        if args.level is not None and args.codec is None:
            parser.error("--level requires --codec")
        store_exists = os.path.isfile(os.path.join(args.store, MANIFEST_NAME))
        if args.codec is not None and store_exists:
            parser.error("--codec only applies when creating a new store; %s "
                         "exists and appends reuse its own codec" % (args.store,))
        if args.codec is not None:
            store = ChunkedTraceStore.write(
                args.store, source, chunk_rows=args.chunk_rows or 65536,
                name=args.workload or None, format_version=3,
                codec=args.codec, codec_level=args.level)
            print("created %s as a v3 store (codec %s): %d jobs in %d chunks"
                  % (args.store, store.codec, store.n_jobs, store.n_chunks))
            return 0
        appender = ChunkedTraceStore.open_append(args.store)
        before_jobs = appender.store.n_jobs
        before_chunks = appender.store.n_chunks
        store = appender.append(source, chunk_rows=args.chunk_rows)
        print("appended %d jobs in %d chunks to %s "
              "(now %d jobs, %d chunks, sorted_by_submit_time=%s, "
              "manifest_sequence=%d)"
              % (store.n_jobs - before_jobs, store.n_chunks - before_chunks,
                 args.store, store.n_jobs, store.n_chunks,
                 store.sorted_by_submit_time, store.manifest_sequence))
        return 0

    if args.engine_command == "info":
        import json as json_module

        store = ChunkedTraceStore(args.store)
        info = store.info()
        if args.json:
            if args.sizes:
                info["column_sizes"] = store.column_sizes()
                raw_sizes = store.column_raw_sizes()
                if raw_sizes is not None:
                    info["column_raw_sizes"] = raw_sizes
            print(json_module.dumps(info, indent=2, sort_keys=True))
            return 0
        for key in ("directory", "name", "store_uid", "machines",
                    "format_version", "manifest_sequence",
                    "sorted_by_submit_time", "n_jobs", "n_chunks",
                    "on_disk_bytes", "submit_time_range"):
            print("%-18s %s" % (key, info[key]))
        print("%-18s %s" % ("columns", ", ".join(info["columns"])))
        if args.sizes:
            sizes = store.column_sizes()
            total = sum(sizes.values()) or 1
            if store.format_version == 3:
                raw_sizes = store.column_raw_sizes() or {}
                print("\nper-column on-disk bytes (format v3, codec %s):"
                      % (store.codec,))
                print("  %-20s %12s %12s %7s" % ("column", "compressed",
                                                 "uncompressed", "ratio"))
                for column, size in sorted(sizes.items(), key=lambda item: -item[1]):
                    raw = raw_sizes.get(column, 0)
                    print("  %-20s %12d %12d %6.1fx"
                          % (column, size, raw, raw / size if size else 0.0))
                raw_total = sum(raw_sizes.values())
                print("  %-20s %12d %12d %6.1fx"
                      % ("(total)", total, raw_total, raw_total / total))
            else:
                print("\nper-column on-disk bytes (format v%d%s):"
                      % (store.format_version,
                         ", compressed" if store.format_version == 1 else ", raw .npy"))
                for column, size in sorted(sizes.items(), key=lambda item: -item[1]):
                    print("  %-20s %12d  (%5.1f%%)" % (column, size, 100.0 * size / total))
            index_info = info.get("indexes")
            if index_info is not None:
                state = ("fresh" if index_info["fresh"]
                         else "STALE: %s" % index_info["stale_reason"])
                print("\nindex sidecar bytes (%s):" % (state,))
                from .engine import load_indexes

                index_sizes = load_indexes(store).sizes()
                for column, size in sorted(index_sizes.items(),
                                           key=lambda item: -item[1]):
                    kind = index_info["columns"][column]["kind"]
                    print("  %-20s %-9s %12d" % (column, kind, size))
        return 0

    if args.engine_command == "query":
        import json as json_module

        store = ChunkedTraceStore(args.store)
        query = _build_engine_query(args)
        use_index = not args.no_index
        if args.explain:
            from .engine import plan_query

            plan = plan_query(store, query, use_index=use_index)
            if args.json:
                print(json_module.dumps(plan.to_dict(), indent=2, sort_keys=True))
            else:
                print(plan.describe())
            return 0
        if args.parallel and query.is_aggregate_only():
            result = ParallelExecutor(processes=args.parallel).run(store, query)
        else:
            from .engine import execute_planned

            result = execute_planned(store, query, use_index=use_index)
        plan = result.plan
        if plan is not None and plan.stale_index:
            print("warning: stale index sidecar ignored -- rebuild it with "
                  "'repro engine index build --store %s'" % (args.store,),
                  file=sys.stderr)
        if args.json:
            payload = {
                "stats": {
                    "rows_scanned": result.rows_scanned,
                    "chunks_scanned": result.chunks_scanned,
                    "chunks_skipped": result.chunks_skipped,
                    "rows_matched": result.rows_matched,
                },
                "plan": plan.to_dict() if plan is not None else None,
            }
            if result.aggregates is not None:
                payload["aggregates"] = result.aggregates
            elif result.groups is not None:
                payload["groups"] = {
                    str(key if key != "" else "(missing)"): aggregates
                    for key, aggregates in result.groups.items()}
            else:
                payload["rows"] = result.row_dicts()
            print(json_module.dumps(payload, indent=2, sort_keys=True,
                                    default=float))
            return 0
        if result.aggregates is not None:
            for label, value in result.aggregates.items():
                print("%-24s %s" % (label, _render_value(value)))
        elif result.groups is not None:
            for key, aggregates in result.groups.items():
                rendered = ", ".join("%s=%s" % (label, _render_value(value))
                                     for label, value in aggregates.items())
                print("%-24s %s" % (key if key != "" else "(missing)", rendered))
        else:
            for row in result.row_dicts():
                print(row)
        print("-- scanned %d rows in %d chunks (%d skipped via zone maps), %d matched"
              % (result.rows_scanned, result.chunks_scanned,
                 result.chunks_skipped, result.rows_matched))
        if plan is not None:
            print("-- plan: %s" % (plan.summary(),))
        return 0

    if args.engine_command == "index":
        import json as json_module

        from .engine import build_indexes, drop_indexes, load_indexes

        store = ChunkedTraceStore(args.store)
        if args.action == "build":
            indexes = build_indexes(store, columns=args.columns or None)
            indexes.save()
            sizes = indexes.sizes()
            print("indexed %d columns over %d chunks / %d rows (%d sidecar "
                  "bytes, manifest_sequence=%d)"
                  % (len(indexes.columns), indexes.n_chunks, indexes.n_rows,
                     sum(sizes.values()), indexes.manifest_sequence))
            for column in indexes.columns:
                meta = indexes.column_meta[column]
                print("  %-20s %-9s %12d bytes" % (column, meta["kind"],
                                                   sizes.get(column, 0)))
            return 0
        if args.action == "drop":
            removed = drop_indexes(store)
            print("removed %d index sidecar file(s) from %s"
                  % (removed, args.store))
            return 0
        indexes = load_indexes(store)
        if indexes is None:
            print("no index sidecar in %s (build one with 'repro engine "
                  "index build')" % (args.store,))
            return 1
        info = indexes.info(store)
        if args.json:
            print(json_module.dumps(info, indent=2, sort_keys=True))
            return 0
        state = "fresh" if info["fresh"] else "STALE (%s)" % info["stale_reason"]
        print("index sidecar: %s" % (state,))
        print("covers %d chunks / %d rows at manifest_sequence=%d "
              "(store is at %d); %d bytes on disk"
              % (info["n_chunks"], info["n_rows"], info["manifest_sequence"],
                 store.manifest_sequence, info["on_disk_bytes"]))
        sizes = indexes.sizes()
        for column in indexes.columns:
            meta = info["columns"][column]
            stats = ", ".join("%s=%s" % (key, meta[key])
                              for key in sorted(meta)
                              if key not in ("kind", "file"))
            print("  %-20s %-9s %12d bytes  %s"
                  % (column, meta["kind"], sizes.get(column, 0), stats))
        return int(not info["fresh"])

    if args.engine_command == "compare":
        import json as json_module

        from .core.federation import compare_catalog
        from .units import GB

        pairs = None
        if args.pairs:
            pairs = []
            for item in args.pairs:
                a, separator, b = item.partition(",")
                if not separator or not a or not b:
                    parser.error("--pairs must look like A,B, got %r" % (item,))
                pairs.append((a, b))
        executor = (ParallelExecutor(processes=args.processes)
                    if args.processes else None)
        report = compare_catalog(
            args.catalog, members=args.members, pairs=pairs,
            suite_size=args.suite_size,
            small_job_threshold_bytes=args.threshold_gb * GB,
            executor=executor, checkpoint_dir=args.checkpoints)
        if args.json:
            print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        return 0

    parser.error("unknown engine command %r" % (args.engine_command,))
    return 2


# ---------------------------------------------------------------------------
# serve subcommand
# ---------------------------------------------------------------------------
def _run_serve(parser, args) -> int:
    import asyncio
    import signal

    from .service.server import TraceAnalyticsService

    feeds = {}
    for item in args.feed:
        store_name, separator, feed_path = item.partition("=")
        if not separator or not store_name or not feed_path:
            parser.error("--feed must look like STORE=PATH, got %r" % (item,))
        feeds[store_name] = feed_path

    async def amain() -> int:
        service = TraceAnalyticsService(
            args.catalog, host=args.host, port=args.port, workers=args.workers,
            batch_window_s=args.batch_window_ms / 1000.0,
            cache_entries=args.cache_entries, feeds=feeds,
            poll_interval_s=args.poll_interval,
            checkpoints=not args.no_checkpoints)
        await service.start(ready_file=args.ready_file)
        print("serving catalog %s at %s (%d stores%s)"
              % (service.catalog.directory, service.address,
                 len(service.catalog),
                 ", %d feeds" % len(service.tailers) if service.tailers else ""),
              file=sys.stderr, flush=True)
        loop = asyncio.get_running_loop()
        for signal_number in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signal_number, service.request_stop)
            except (NotImplementedError, RuntimeError):
                pass  # platform without loop signal handlers
        await service.run_until_stopped()
        return 0

    try:
        return asyncio.run(amain())
    except KeyboardInterrupt:
        return 0


def _render_value(value):
    if isinstance(value, float):
        return "%.6g" % value
    if isinstance(value, list):  # CDF points
        return "[%d cdf points]" % len(value)
    return str(value)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
