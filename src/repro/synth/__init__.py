"""Workload synthesis: distributions, arrival processes, file popularity,
scaling and the SWIM-style synthesizer.
"""

from .distributions import (
    Constant,
    Distribution,
    Empirical,
    Exponential,
    LogNormal,
    LogUniform,
    Mixture,
    Pareto,
    ZipfRank,
)
from .arrival import (
    ArrivalProcess,
    DiurnalBurstyArrivals,
    PoissonArrivals,
    diurnal_rate_profile,
    sine_reference_series,
)
from .filepop import FileCatalog, FilePopularityModel, PathAssignment
from .mixing import PAPER_MIXES, FrameworkMix, FrameworkMixModel, mix_from_trace
from .replay_plan import ReplayCommand, ReplayPlan, build_replay_plan, parse_replay_plan
from .sampler import TraceSampler, stratified_sample
from .scaling import ScalePlan, scale_cluster, scale_load, scale_time_window
from .swim import SwimSynthesizer, SyntheticWorkloadPlan, DataLayoutPlan

__all__ = [
    "Distribution",
    "Constant",
    "LogNormal",
    "LogUniform",
    "Exponential",
    "Pareto",
    "ZipfRank",
    "Empirical",
    "Mixture",
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalBurstyArrivals",
    "diurnal_rate_profile",
    "sine_reference_series",
    "FileCatalog",
    "FilePopularityModel",
    "PathAssignment",
    "TraceSampler",
    "stratified_sample",
    "ScalePlan",
    "scale_time_window",
    "scale_load",
    "scale_cluster",
    "SwimSynthesizer",
    "SyntheticWorkloadPlan",
    "DataLayoutPlan",
    "FrameworkMix",
    "FrameworkMixModel",
    "PAPER_MIXES",
    "mix_from_trace",
    "ReplayCommand",
    "ReplayPlan",
    "build_replay_plan",
    "parse_replay_plan",
]
