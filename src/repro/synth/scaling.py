"""Workload scale-down.

Section 7 of the paper ("Scaled-down workloads") observes that reproducing
production behaviour at full scale is economically unrealistic, and that there
are several legitimate ways to shrink a workload: against wall-clock time,
against the number of jobs / load, or against cluster size.  This module
implements the three and records what was done in a :class:`ScalePlan` so the
benchmark harness can report the applied scaling next to every result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ScalingError
from ..traces.schema import Job
from ..traces.trace import Trace

__all__ = ["ScalePlan", "scale_time_window", "scale_load", "scale_cluster"]


@dataclass
class ScalePlan:
    """Record of how a trace was scaled down.

    Attributes:
        source_name: name of the source trace.
        method: one of ``"time_window"``, ``"load"`` or ``"cluster"``.
        factor: the scale factor applied (semantics depend on the method).
        source_jobs: job count before scaling.
        result_jobs: job count after scaling.
        notes: human-readable description for reports.
    """

    source_name: str
    method: str
    factor: float
    source_jobs: int
    result_jobs: int
    notes: str = ""

    def describe(self) -> str:
        return "%s scaled by %s (factor %.4g): %d -> %d jobs. %s" % (
            self.source_name, self.method, self.factor, self.source_jobs,
            self.result_jobs, self.notes,
        )


def scale_time_window(trace: Trace, window_s: float, start_s: Optional[float] = None,
                      seed: int = 0) -> "tuple[Trace, ScalePlan]":
    """Scale down by keeping only one contiguous time window of the trace.

    Args:
        trace: source trace.
        window_s: window length in seconds.
        start_s: window start; when ``None`` a start is drawn uniformly at
            random from the feasible range (seeded by ``seed``).

    Returns:
        The windowed trace (submit times re-based to zero) and the plan.

    Raises:
        ScalingError: if the window is not positive or exceeds the trace span.
    """
    if window_s <= 0:
        raise ScalingError("window_s must be positive, got %r" % (window_s,))
    if trace.is_empty():
        raise ScalingError("cannot window an empty trace")
    span = trace.duration_s()
    if window_s > span:
        raise ScalingError("window %.0fs exceeds trace span %.0fs" % (window_s, span))
    origin = trace.jobs[0].submit_time_s
    if start_s is None:
        rng = np.random.default_rng(seed)
        start_s = origin + rng.uniform(0.0, span - window_s)
    windowed = trace.time_window(start_s, start_s + window_s).shifted(-start_s,
                                                                      name="%s-window" % trace.name)
    plan = ScalePlan(
        source_name=trace.name,
        method="time_window",
        factor=window_s / span,
        source_jobs=len(trace),
        result_jobs=len(windowed),
        notes="window of %.0f s starting at %.0f s" % (window_s, start_s),
    )
    return windowed, plan


def scale_load(trace: Trace, fraction: float, seed: int = 0,
               preserve_classes: bool = True) -> "tuple[Trace, ScalePlan]":
    """Scale down by keeping a random ``fraction`` of jobs (thinning).

    Thinning preserves the arrival process shape (a thinned Poisson-like
    process keeps its modulation) and, when ``preserve_classes`` is true,
    keeps at least one job per ``cluster_label`` so byte-dominant rare classes
    survive.

    Raises:
        ScalingError: if ``fraction`` is outside ``(0, 1]``.
    """
    if not 0.0 < fraction <= 1.0:
        raise ScalingError("fraction must be in (0, 1], got %r" % (fraction,))
    if trace.is_empty():
        raise ScalingError("cannot scale an empty trace")
    rng = np.random.default_rng(seed)
    keep_mask = rng.uniform(0.0, 1.0, len(trace)) < fraction
    if preserve_classes:
        seen = set()
        for index, job in enumerate(trace):
            label = job.cluster_label
            if label is not None and label not in seen:
                seen.add(label)
                keep_mask[index] = True
    kept = [job for job, keep in zip(trace.jobs, keep_mask) if keep]
    if not kept:
        kept = [trace.jobs[0]]
    scaled = Trace(kept, name="%s-load%.3g" % (trace.name, fraction), machines=trace.machines)
    plan = ScalePlan(
        source_name=trace.name,
        method="load",
        factor=fraction,
        source_jobs=len(trace),
        result_jobs=len(scaled),
        notes="random thinning, classes preserved=%s" % preserve_classes,
    )
    return scaled, plan


def scale_cluster(trace: Trace, source_machines: int, target_machines: int) -> "tuple[Trace, ScalePlan]":
    """Scale a workload to a smaller (or larger) cluster.

    Following the SWIM approach, per-job data sizes and task times are scaled
    by ``target_machines / source_machines`` so per-node load is preserved:
    replaying the scaled workload on the target cluster exercises each node as
    the original did.  Durations and submit times are left unchanged — the
    arrival pattern is a property of the users, not the cluster.

    Raises:
        ScalingError: if either machine count is not positive.
    """
    if source_machines <= 0 or target_machines <= 0:
        raise ScalingError("machine counts must be positive")
    ratio = target_machines / float(source_machines)
    scaled_jobs = []
    for job in trace:
        data = job.to_dict()
        for dimension in ("input_bytes", "shuffle_bytes", "output_bytes",
                          "map_task_seconds", "reduce_task_seconds"):
            if data.get(dimension) is not None:
                data[dimension] = data[dimension] * ratio
        if data.get("map_tasks") is not None:
            data["map_tasks"] = max(1, int(round(data["map_tasks"] * ratio)))
        if data.get("reduce_tasks") is not None:
            data["reduce_tasks"] = int(round(data["reduce_tasks"] * ratio))
        scaled_jobs.append(Job.from_dict(data))
    scaled = Trace(scaled_jobs, name="%s-x%dnodes" % (trace.name, target_machines),
                   machines=target_machines)
    plan = ScalePlan(
        source_name=trace.name,
        method="cluster",
        factor=ratio,
        source_jobs=len(trace),
        result_jobs=len(scaled),
        notes="per-job data and task time scaled from %d to %d machines" % (
            source_machines, target_machines),
    )
    return scaled, plan
