"""SWIM-style workload synthesizer.

The paper's stop-gap benchmarking tool (§7, "A stopgap tool") is SWIM — the
Statistical Workload Injector for MapReduce.  SWIM does two things: it
pre-populates the filesystem with synthetic data scaled to the target cluster,
and it replays the workload as a stream of synthetic MapReduce jobs whose
data sizes and arrival times follow an observed trace.

:class:`SwimSynthesizer` reproduces that pipeline against this library's
simulator substrate:

1. take a source trace (observed or generated from a paper spec);
2. scale it — in time, load, and cluster size — to the target configuration;
3. emit a :class:`SyntheticWorkloadPlan` containing the replayable trace plus
   a :class:`DataLayoutPlan` describing the files to pre-populate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import SynthesisError
from ..traces.trace import Trace
from ..units import GB
from .arrival import ArrivalProcess, PoissonArrivals
from .sampler import TraceSampler
from .scaling import ScalePlan, scale_cluster

__all__ = ["DataLayoutPlan", "SyntheticWorkloadPlan", "SwimSynthesizer"]


@dataclass
class DataLayoutPlan:
    """Files to pre-populate before replay.

    Attributes:
        files: mapping of path -> size in bytes.
        total_bytes: sum of all file sizes.
        block_size: block size the layout assumes, in bytes.
    """

    files: Dict[str, float]
    block_size: float = 128 * 1024 * 1024

    @property
    def total_bytes(self) -> float:
        return float(sum(self.files.values()))

    @property
    def n_files(self) -> int:
        return len(self.files)

    def blocks_for(self, path: str) -> int:
        """Number of blocks the file at ``path`` occupies."""
        size = self.files[path]
        return max(1, int(np.ceil(size / self.block_size)))


@dataclass
class SyntheticWorkloadPlan:
    """The output of the synthesizer: a replayable workload plus its data layout.

    Attributes:
        trace: the synthetic job stream (submit times start at zero).
        layout: the data layout to pre-populate.
        scale_plans: the scaling steps that were applied, in order.
        target_machines: number of machines the plan targets.
    """

    trace: Trace
    layout: DataLayoutPlan
    scale_plans: List[ScalePlan] = field(default_factory=list)
    target_machines: Optional[int] = None

    def describe(self) -> str:
        lines = [
            "Synthetic workload %r: %d jobs over %.0f s targeting %s machines"
            % (self.trace.name, len(self.trace), self.trace.duration_s(),
               self.target_machines if self.target_machines else "?"),
            "Data layout: %d files, %.1f GB total" % (self.layout.n_files,
                                                      self.layout.total_bytes / GB),
        ]
        lines.extend("  - " + plan.describe() for plan in self.scale_plans)
        return "\n".join(lines)


class SwimSynthesizer:
    """Builds scaled, replayable synthetic workloads from a source trace.

    Args:
        source: the observed (or spec-generated) trace to model.
        source_machines: machine count of the source cluster; defaults to the
            trace's ``machines`` attribute.
        seed: RNG seed used for sampling and arrival re-timing.
    """

    def __init__(self, source: Trace, source_machines: Optional[int] = None, seed: int = 0):
        if source.is_empty():
            raise SynthesisError("SwimSynthesizer needs a non-empty source trace")
        self.source = source
        self.source_machines = source_machines or source.machines
        if not self.source_machines:
            raise SynthesisError(
                "source cluster size unknown; pass source_machines explicitly"
            )
        self.seed = int(seed)

    def synthesize(self, n_jobs: int, horizon_s: float, target_machines: Optional[int] = None,
                   arrival: Optional[ArrivalProcess] = None,
                   name: Optional[str] = None) -> SyntheticWorkloadPlan:
        """Produce a synthetic workload plan.

        Args:
            n_jobs: number of synthetic jobs to emit.
            horizon_s: length of the replay window in seconds.
            target_machines: cluster size to scale data/compute to; when
                ``None`` the source cluster size is kept.
            arrival: arrival process used to re-time jobs (Poisson default).
            name: name of the synthetic trace.

        Returns:
            A :class:`SyntheticWorkloadPlan` with the re-timed trace, the data
            layout to pre-populate, and the scaling steps applied.
        """
        if n_jobs <= 0:
            raise SynthesisError("n_jobs must be positive, got %r" % (n_jobs,))
        if horizon_s <= 0:
            raise SynthesisError("horizon_s must be positive, got %r" % (horizon_s,))

        plans: List[ScalePlan] = []
        sampler = TraceSampler(self.source, seed=self.seed, stratified=True)
        sampled = sampler.sample(n_jobs, horizon_s, arrival=arrival or PoissonArrivals(),
                                 name=name or ("%s-swim" % self.source.name))
        plans.append(ScalePlan(
            source_name=self.source.name,
            method="load",
            factor=n_jobs / float(len(self.source)),
            source_jobs=len(self.source),
            result_jobs=len(sampled),
            notes="stratified resampling onto a %.0f s replay window" % horizon_s,
        ))

        target = target_machines or self.source_machines
        if target != self.source_machines:
            sampled, cluster_plan = scale_cluster(sampled, self.source_machines, target)
            plans.append(cluster_plan)

        layout = self._build_layout(sampled)
        return SyntheticWorkloadPlan(
            trace=sampled, layout=layout, scale_plans=plans, target_machines=target,
        )

    def _build_layout(self, trace: Trace) -> DataLayoutPlan:
        """Derive the data layout: one file per distinct input path.

        Jobs without a recorded path get a synthetic per-job path so the replay
        still reads the right volume of data.  A file referenced by several
        jobs is sized to the largest input those jobs read, which mirrors
        SWIM's uniform pre-population while keeping per-job input volumes.
        """
        files: Dict[str, float] = {}
        for index, job in enumerate(trace):
            path = job.input_path or ("/swim/input/%06d" % index)
            size = float(job.input_bytes or 0.0)
            files[path] = max(files.get(path, 0.0), size)
        return DataLayoutPlan(files=files)
