"""Job arrival processes.

Figures 7 and 8 of the paper show that MapReduce submission streams mix a weak
(sometimes visible) daily diurnal signal with a very large amount of hour-scale
burstiness: the peak-to-median ratio of hourly load ranges from 9:1 to 260:1.
The arrival processes here model exactly that structure: a base rate modulated
by a deterministic diurnal/weekly profile, multiplied by a random per-hour
burst factor, realized as a non-homogeneous Poisson process.

The module also provides the two reference sine signals the paper plots in
Figure 8 for comparison ("sine + 2" and "sine + 20").
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import SynthesisError
from ..units import DAY, HOUR

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalBurstyArrivals",
    "diurnal_rate_profile",
    "sine_reference_series",
]


class ArrivalProcess:
    """Base class for arrival processes: generates submit times in ``[0, horizon)``."""

    def generate(self, rng: np.random.Generator, n_arrivals: int, horizon_s: float) -> np.ndarray:
        """Generate exactly ``n_arrivals`` submit times within ``[0, horizon_s)``.

        Returns a sorted float array of length ``n_arrivals``.
        """
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals: uniform-in-time submissions.

    This is the "no structure" baseline; with a fixed number of arrivals over a
    fixed horizon, a homogeneous Poisson process is equivalent to sorting
    uniform draws.
    """

    def generate(self, rng, n_arrivals, horizon_s):
        _check_args(n_arrivals, horizon_s)
        times = rng.uniform(0.0, horizon_s, n_arrivals)
        times.sort()
        return times


def diurnal_rate_profile(hour_of_week: np.ndarray, diurnal_amplitude: float = 0.3,
                         weekend_factor: float = 0.8, peak_hour: float = 15.0) -> np.ndarray:
    """Deterministic relative rate for each hour-of-week value.

    The daily component is a raised cosine peaking at ``peak_hour`` local time;
    weekends (hour-of-week ≥ 120, i.e. Saturday and Sunday with the trace
    origin on Monday 00:00) are scaled by ``weekend_factor``.

    Returns strictly positive relative rates (mean ≈ 1 for amplitude 0).
    """
    hour_of_week = np.asarray(hour_of_week, dtype=float)
    hour_of_day = np.mod(hour_of_week, 24.0)
    daily = 1.0 + diurnal_amplitude * np.cos(2.0 * math.pi * (hour_of_day - peak_hour) / 24.0)
    weekend = np.where(np.mod(hour_of_week, 168.0) >= 120.0, weekend_factor, 1.0)
    return np.maximum(daily * weekend, 1e-6)


class DiurnalBurstyArrivals(ArrivalProcess):
    """Non-homogeneous Poisson arrivals with diurnal modulation and hourly bursts.

    The instantaneous rate over hour ``h`` is::

        rate(h) ∝ diurnal_profile(h) * B_h,     B_h ~ LogNormal(0, burstiness)

    where ``B_h`` is an i.i.d. per-hour burst multiplier.  Larger ``burstiness``
    values produce heavier-tailed hourly load and hence larger
    peak-to-median ratios (Figure 8).

    Args:
        diurnal_amplitude: relative amplitude of the daily cosine (0..1).
        weekend_factor: rate multiplier applied on weekends.
        burstiness: sigma of the log-normal per-hour burst multiplier.
        peak_hour: local hour of day at which the diurnal profile peaks.
    """

    def __init__(self, diurnal_amplitude: float = 0.3, weekend_factor: float = 0.8,
                 burstiness: float = 1.0, peak_hour: float = 15.0):
        if not 0.0 <= diurnal_amplitude <= 1.0:
            raise SynthesisError("diurnal_amplitude must be in [0, 1]")
        if weekend_factor <= 0:
            raise SynthesisError("weekend_factor must be positive")
        if burstiness < 0:
            raise SynthesisError("burstiness must be non-negative")
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.weekend_factor = float(weekend_factor)
        self.burstiness = float(burstiness)
        self.peak_hour = float(peak_hour)

    def hourly_weights(self, rng: np.random.Generator, n_hours: int) -> np.ndarray:
        """Relative probability mass of each hour in a horizon of ``n_hours``."""
        if n_hours <= 0:
            raise SynthesisError("n_hours must be positive")
        hours = np.arange(n_hours, dtype=float)
        profile = diurnal_rate_profile(
            hours, self.diurnal_amplitude, self.weekend_factor, self.peak_hour
        )
        if self.burstiness > 0:
            bursts = np.exp(rng.normal(0.0, self.burstiness, n_hours))
        else:
            bursts = np.ones(n_hours)
        weights = profile * bursts
        return weights / weights.sum()

    def generate(self, rng, n_arrivals, horizon_s):
        _check_args(n_arrivals, horizon_s)
        n_hours = max(1, int(math.ceil(horizon_s / HOUR)))
        weights = self.hourly_weights(rng, n_hours)
        # Assign each arrival to an hour bucket, then spread uniformly inside it.
        buckets = rng.choice(n_hours, size=n_arrivals, p=weights)
        offsets = rng.uniform(0.0, HOUR, n_arrivals)
        times = buckets * float(HOUR) + offsets
        # Clamp the final partial hour so every arrival stays inside the horizon.
        times = np.minimum(times, np.nextafter(horizon_s, 0.0))
        times.sort()
        return times


def sine_reference_series(n_hours: int, offset: float, amplitude: float = 1.0) -> np.ndarray:
    """Reference sinusoidal hourly series used in Figure 8.

    The paper compares workload burstiness against two artificial sine submit
    patterns: one whose min-max range equals its mean ("sine + 2") and one
    whose range is 10% of its mean ("sine + 20").  Those are sine waves with
    vertical offsets 2 and 20 respectively, which this helper generalizes:
    ``series[h] = offset + amplitude * sin(2π h / 24)``.

    Returns an array of strictly positive hourly values.
    """
    if n_hours <= 0:
        raise SynthesisError("n_hours must be positive")
    if offset <= amplitude:
        raise SynthesisError("offset must exceed amplitude so the series stays positive")
    hours = np.arange(n_hours, dtype=float)
    return offset + amplitude * np.sin(2.0 * math.pi * hours / 24.0)


def _check_args(n_arrivals: int, horizon_s: float) -> None:
    if n_arrivals < 0:
        raise SynthesisError("n_arrivals must be non-negative, got %r" % (n_arrivals,))
    if horizon_s <= 0:
        raise SynthesisError("horizon_s must be positive, got %r" % (horizon_s,))
