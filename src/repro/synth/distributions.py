"""Probability distributions used by the workload synthesizer.

The paper notes (§7, "Empirical models") that most workload dimensions do not
fit well-known statistical distributions — the single exception being the
Zipf-like distribution of file-access frequencies — and that a benchmark must
therefore rely on empirical models ("the traces are the model").  This module
provides both: a small set of parametric distributions (log-normal, log-uniform,
Zipf, constant) used when synthesizing jobs around published Table-2 centroids,
and an :class:`Empirical` distribution that resamples observed values directly.

All distributions share one tiny interface: ``sample(rng, size)`` returning a
numpy array, plus ``mean()`` where it is analytically cheap.  They take a
``numpy.random.Generator`` explicitly so determinism is the caller's choice.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..errors import SynthesisError

__all__ = [
    "Distribution",
    "Constant",
    "LogNormal",
    "LogUniform",
    "Exponential",
    "Pareto",
    "ZipfRank",
    "Empirical",
    "Mixture",
]


class Distribution:
    """Base class: a non-negative scalar distribution with a ``sample`` method."""

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` samples using ``rng``; returns a float array."""
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean, when available; otherwise an estimate from sampling."""
        rng = np.random.default_rng(0)
        return float(np.mean(self.sample(rng, 4096)))


class Constant(Distribution):
    """A degenerate distribution that always returns the same value."""

    def __init__(self, value: float):
        if value < 0:
            raise SynthesisError("Constant value must be non-negative, got %r" % (value,))
        self.value = float(value)

    def sample(self, rng, size=1):
        return np.full(size, self.value, dtype=float)

    def mean(self):
        return self.value

    def __repr__(self):
        return "Constant(%g)" % self.value


class LogNormal(Distribution):
    """Log-normal distribution parameterized by its *median* and log-space sigma.

    The Table-2 centroids act as medians of each job class; ``sigma`` is the
    class "dispersion".  A median of zero produces a constant zero (used for
    the shuffle size of map-only job classes).
    """

    def __init__(self, median: float, sigma: float):
        if median < 0:
            raise SynthesisError("LogNormal median must be non-negative, got %r" % (median,))
        if sigma < 0:
            raise SynthesisError("LogNormal sigma must be non-negative, got %r" % (sigma,))
        self.median = float(median)
        self.sigma = float(sigma)

    def sample(self, rng, size=1):
        if self.median == 0.0:
            return np.zeros(size, dtype=float)
        return self.median * np.exp(rng.normal(0.0, self.sigma, size))

    def mean(self):
        if self.median == 0.0:
            return 0.0
        return self.median * math.exp(self.sigma ** 2 / 2.0)

    def __repr__(self):
        return "LogNormal(median=%g, sigma=%g)" % (self.median, self.sigma)


class LogUniform(Distribution):
    """Uniform distribution in log space between ``low`` and ``high`` (both > 0)."""

    def __init__(self, low: float, high: float):
        if low <= 0 or high <= 0:
            raise SynthesisError("LogUniform bounds must be positive")
        if high < low:
            raise SynthesisError("LogUniform high < low")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng, size=1):
        return np.exp(rng.uniform(math.log(self.low), math.log(self.high), size))

    def mean(self):
        if self.high == self.low:
            return self.low
        return (self.high - self.low) / (math.log(self.high) - math.log(self.low))

    def __repr__(self):
        return "LogUniform(%g, %g)" % (self.low, self.high)


class Exponential(Distribution):
    """Exponential distribution with the given mean (inter-arrival times)."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise SynthesisError("Exponential mean must be positive, got %r" % (mean,))
        self._mean = float(mean)

    def sample(self, rng, size=1):
        return rng.exponential(self._mean, size)

    def mean(self):
        return self._mean

    def __repr__(self):
        return "Exponential(mean=%g)" % self._mean


class Pareto(Distribution):
    """Pareto (power-law tail) distribution with scale ``xm`` and shape ``alpha``."""

    def __init__(self, xm: float, alpha: float):
        if xm <= 0 or alpha <= 0:
            raise SynthesisError("Pareto xm and alpha must be positive")
        self.xm = float(xm)
        self.alpha = float(alpha)

    def sample(self, rng, size=1):
        # Inverse-CDF sampling: X = xm / U^{1/alpha}.
        uniforms = rng.uniform(0.0, 1.0, size)
        uniforms = np.clip(uniforms, 1e-12, 1.0)
        return self.xm / uniforms ** (1.0 / self.alpha)

    def mean(self):
        if self.alpha <= 1.0:
            return float("inf")
        return self.alpha * self.xm / (self.alpha - 1.0)

    def __repr__(self):
        return "Pareto(xm=%g, alpha=%g)" % (self.xm, self.alpha)


class ZipfRank(Distribution):
    """Zipf rank distribution over ``{1..n}`` with rank-frequency slope ``s``.

    ``P(rank = k) ∝ k^{-s}``.  This is the distribution behind Figure 2: when
    many accesses are drawn from it, the log-log plot of access frequency
    versus rank is a straight line of slope ``-s``.
    """

    def __init__(self, n: int, s: float):
        if n <= 0:
            raise SynthesisError("ZipfRank n must be positive, got %r" % (n,))
        if s <= 0:
            raise SynthesisError("ZipfRank s must be positive, got %r" % (s,))
        self.n = int(n)
        self.s = float(s)
        weights = np.arange(1, self.n + 1, dtype=float) ** (-self.s)
        self._probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self._probabilities)

    def sample(self, rng, size=1):
        """Return ranks in ``{1..n}`` (as floats for interface consistency)."""
        uniforms = rng.uniform(0.0, 1.0, size)
        ranks = np.searchsorted(self._cdf, uniforms, side="left") + 1
        return ranks.astype(float)

    def probabilities(self) -> np.ndarray:
        """Probability of each rank, in rank order (length ``n``)."""
        return self._probabilities.copy()

    def mean(self):
        return float(np.dot(np.arange(1, self.n + 1), self._probabilities))

    def __repr__(self):
        return "ZipfRank(n=%d, s=%g)" % (self.n, self.s)


class Empirical(Distribution):
    """Resample observed values, the "traces are the model" approach of §7.

    With ``smooth=True`` a small log-normal jitter is applied to every resampled
    value so the synthetic workload does not repeat the exact observed values
    (useful when the source sample is small).
    """

    def __init__(self, values: Sequence[float], smooth: bool = False, smooth_sigma: float = 0.1):
        array = np.asarray(list(values), dtype=float)
        if array.size == 0:
            raise SynthesisError("Empirical distribution needs at least one value")
        if np.any(array < 0):
            raise SynthesisError("Empirical distribution values must be non-negative")
        self.values = array
        self.smooth = bool(smooth)
        self.smooth_sigma = float(smooth_sigma)

    def sample(self, rng, size=1):
        picks = rng.choice(self.values, size=size, replace=True)
        if self.smooth:
            jitter = np.exp(rng.normal(0.0, self.smooth_sigma, size))
            picks = picks * jitter
        return picks

    def mean(self):
        return float(self.values.mean())

    def quantile(self, q: float) -> float:
        """Empirical quantile of the observed values."""
        return float(np.quantile(self.values, q))

    def __repr__(self):
        return "Empirical(n=%d, smooth=%s)" % (self.values.size, self.smooth)


class Mixture(Distribution):
    """A weighted mixture of component distributions."""

    def __init__(self, components: Sequence[Distribution], weights: Optional[Sequence[float]] = None):
        if not components:
            raise SynthesisError("Mixture needs at least one component")
        self.components = list(components)
        if weights is None:
            weights = [1.0] * len(self.components)
        weights = np.asarray(list(weights), dtype=float)
        if weights.size != len(self.components):
            raise SynthesisError("Mixture weights length does not match components")
        if np.any(weights < 0) or weights.sum() <= 0:
            raise SynthesisError("Mixture weights must be non-negative and sum to > 0")
        self.weights = weights / weights.sum()

    def sample(self, rng, size=1):
        choices = rng.choice(len(self.components), size=size, p=self.weights)
        output = np.empty(size, dtype=float)
        for index, component in enumerate(self.components):
            mask = choices == index
            count = int(mask.sum())
            if count:
                output[mask] = component.sample(rng, count)
        return output

    def mean(self):
        return float(sum(w * c.mean() for w, c in zip(self.weights, self.components)))

    def __repr__(self):
        return "Mixture(%d components)" % len(self.components)
