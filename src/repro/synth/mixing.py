"""Framework-mix modelling and synthesis (§6.1, §7 of the paper).

Figure 10 shows each workload is dominated by jobs submitted through a small
number of frameworks layered on top of MapReduce (Hive, Pig, Oozie) plus
native MapReduce jobs, and §7 argues a representative benchmark "needs to
include both types of processing, and multiplex them in realistic mixes".

This module provides:

* :class:`FrameworkMix` — a distribution over (framework, first word) pairs;
* :func:`mix_from_trace` — estimate the mix of an existing named trace;
* :class:`FrameworkMixModel` — assign realistic job names and framework tags
  to a synthetic (unnamed) trace so naming analyses and framework-aware
  schedulers can be exercised on synthesized workloads;
* :data:`PAPER_MIXES` — the Figure-10 job-count mixes for the workloads the
  paper reports them for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SynthesisError
from ..traces.schema import Job
from ..traces.trace import Trace
from ..core.naming import classify_framework

__all__ = [
    "FrameworkMix",
    "mix_from_trace",
    "FrameworkMixModel",
    "PAPER_MIXES",
]


@dataclass
class FrameworkMix:
    """A distribution over job-name first words (and hence frameworks).

    Attributes:
        shares: mapping of first word -> fraction of jobs; fractions are
            normalized on construction.
    """

    shares: Dict[str, float]

    def __post_init__(self):
        if not self.shares:
            raise SynthesisError("a framework mix needs at least one word share")
        total = float(sum(self.shares.values()))
        if total <= 0:
            raise SynthesisError("framework mix shares must sum to a positive value")
        if any(value < 0 for value in self.shares.values()):
            raise SynthesisError("framework mix shares must be non-negative")
        self.shares = {word: value / total for word, value in self.shares.items()}

    def words(self) -> List[str]:
        return list(self.shares.keys())

    def probabilities(self) -> np.ndarray:
        return np.array(list(self.shares.values()), dtype=float)

    def framework_shares(self) -> Dict[str, float]:
        """Aggregate the first-word shares into per-framework shares."""
        totals: Dict[str, float] = {}
        for word, share in self.shares.items():
            framework = classify_framework(word)
            totals[framework] = totals.get(framework, 0.0) + share
        return totals

    def dominant_frameworks(self, count: int = 2) -> List[str]:
        """The ``count`` frameworks with the largest job share."""
        shares = self.framework_shares()
        return sorted(shares, key=lambda name: shares[name], reverse=True)[:count]


#: Job-count first-word mixes read off Figure 10 for the workloads that record
#: names.  Shares are approximate (the figure is a stacked bar chart) but they
#: preserve what matters: which two frameworks dominate each workload and the
#: roughly how much of the job stream each top word contributes.
PAPER_MIXES: Dict[str, FrameworkMix] = {
    "FB-2009": FrameworkMix({
        "ad": 0.44, "insert": 0.12, "from": 0.08, "select": 0.06,
        "edw": 0.04, "etl": 0.03, "queryresult": 0.03, "ajax": 0.02, "[others]": 0.18,
    }),
    "CC-a": FrameworkMix({
        "piglatin": 0.40, "oozie": 0.25, "insert": 0.10, "select": 0.07,
        "flow": 0.05, "snapshot": 0.04, "[others]": 0.09,
    }),
    "CC-b": FrameworkMix({
        "oozie": 0.30, "piglatin": 0.25, "insert": 0.15, "select": 0.10,
        "flow": 0.06, "twitch": 0.04, "[others]": 0.10,
    }),
    "CC-c": FrameworkMix({
        "piglatin": 0.35, "insert": 0.20, "select": 0.12, "sywr": 0.08,
        "edwsequence": 0.06, "importjob": 0.04, "[others]": 0.15,
    }),
    "CC-d": FrameworkMix({
        "insert": 0.30, "select": 0.20, "edwsequence": 0.10, "snapshot": 0.08,
        "si": 0.06, "tr": 0.05, "iteminquiry": 0.04, "[others]": 0.17,
    }),
    "CC-e": FrameworkMix({
        "insert": 0.35, "select": 0.20, "edw": 0.10, "search": 0.08,
        "item": 0.06, "esb": 0.04, "[others]": 0.17,
    }),
}


def mix_from_trace(trace: Trace, top_n: int = 12) -> FrameworkMix:
    """Estimate the first-word mix of a trace that records job names.

    Words beyond the ``top_n`` most frequent are folded into ``"[others]"``.

    Raises:
        SynthesisError: when the trace records no job names.
    """
    named = trace.with_names()
    if named.is_empty():
        raise SynthesisError("trace %r records no job names" % (trace.name,))
    counts: Dict[str, int] = {}
    for job in named:
        word = job.first_word or "[unnamed]"
        counts[word] = counts.get(word, 0) + 1
    ranked = sorted(counts.items(), key=lambda pair: pair[1], reverse=True)
    shares: Dict[str, float] = {}
    others = 0
    for index, (word, count) in enumerate(ranked):
        if index < top_n:
            shares[word] = float(count)
        else:
            others += count
    if others:
        shares["[others]"] = shares.get("[others]", 0.0) + float(others)
    return FrameworkMix(shares)


#: How job names are spelled for each first word.  Hive operators become query
#: fragments, Pig scripts get the "PigLatin" prefix the framework generates,
#: Oozie launchers get workflow ids, everything else looks like a hand-named
#: native MapReduce job.  The first whitespace-separated token of each template
#: reduces to the intended first word under :attr:`Job.first_word` (which keeps
#: only the alphabetic characters), so naming analyses see the right mix.
_NAME_TEMPLATES: Dict[str, str] = {
    "insert": "INSERT OVERWRITE TABLE tbl_{index:05d}",
    "select": "SELECT col FROM tbl_{index:05d}",
    "from": "FROM tbl_{index:05d} INSERT OVERWRITE",
    "create": "CREATE TABLE tbl_{index:05d} AS SELECT",
    "piglatin": "PigLatin pigscript_{index:05d}.pig",
    "oozie": "oozie launcher T=map-reduce W=workflow-{index:05d}",
    "distcp": "distcp src=/raw/{index:05d} dst=/warehouse/{index:05d}",
}


class FrameworkMixModel:
    """Assign framework-realistic job names to a synthetic trace.

    Args:
        mix: the first-word mix to draw from.
        seed: RNG seed; assignment is deterministic given the seed and the
            trace's job order.
    """

    def __init__(self, mix: FrameworkMix, seed: int = 0):
        self.mix = mix
        self.seed = int(seed)

    def _render_name(self, word: str, index: int) -> str:
        if word in ("[others]", "[unnamed]"):
            return "job_%05d" % index
        template = _NAME_TEMPLATES.get(word)
        if template is not None:
            return template.format(index=index)
        return "%s_%05d" % (word, index)

    def assign_names(self, trace: Trace, name: Optional[str] = None) -> Trace:
        """Return a copy of the trace with names and framework tags assigned.

        Jobs that already carry a name keep it; only unnamed jobs are filled
        in, so the model can be used both to decorate fully synthetic traces
        and to complete partially named ones.

        Raises:
            SynthesisError: when the trace is empty.
        """
        if trace.is_empty():
            raise SynthesisError("cannot assign names to an empty trace")
        rng = np.random.default_rng(self.seed)
        words = self.mix.words()
        probabilities = self.mix.probabilities()
        jobs: List[Job] = []
        for index, job in enumerate(trace):
            if job.name is not None:
                jobs.append(job)
                continue
            word = words[int(rng.choice(len(words), p=probabilities))]
            data = job.to_dict()
            data["name"] = self._render_name(word, index)
            data["framework"] = classify_framework(word)
            jobs.append(Job.from_dict(data))
        return Trace(jobs, name=name or trace.name, machines=trace.machines)

    def expected_framework_shares(self) -> Dict[str, float]:
        """The framework shares the assignment converges to for large traces."""
        return self.mix.framework_shares()
