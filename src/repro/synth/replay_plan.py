"""Replay-plan rendering: SWIM-style executable workload scripts.

The SWIM tools the paper releases (§7, "A stopgap tool") turn a synthesized
workload into two artifacts an operator can run against a real cluster: a
data pre-population step that writes synthetic input files into HDFS, and a
replay script that sleeps between submissions and launches one synthetic
MapReduce job per trace entry with the right input/shuffle/output volumes.

:class:`ReplayPlan` is the in-library equivalent.  It is produced from a
:class:`~repro.synth.swim.SyntheticWorkloadPlan` (or any trace) and can be

* rendered to a human-readable, shell-like script (:meth:`ReplayPlan.render`),
* serialized to and parsed back from that text form (round-trip tested), and
* fed straight back into the simulator through the plan's trace.

The text format is deliberately simple — one directive per line — so the plan
doubles as documentation of exactly what a replay would do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import SynthesisError
from ..traces.schema import Job
from ..traces.trace import Trace
from ..units import format_bytes
from .swim import DataLayoutPlan, SyntheticWorkloadPlan

__all__ = ["ReplayCommand", "ReplayPlan", "build_replay_plan", "parse_replay_plan"]


@dataclass
class ReplayCommand:
    """One job submission in the replay script.

    Attributes:
        at_s: submission time relative to the start of the replay.
        job_id: identifier of the synthetic job.
        input_path: file the synthetic job reads.
        input_bytes / shuffle_bytes / output_bytes: data volumes the synthetic
            job must move (SWIM jobs reproduce volumes, not user code).
    """

    at_s: float
    job_id: str
    input_path: str
    input_bytes: float
    shuffle_bytes: float
    output_bytes: float

    def render(self) -> str:
        return ("submit at=%.3f id=%s input=%s input_bytes=%.0f "
                "shuffle_bytes=%.0f output_bytes=%.0f"
                % (self.at_s, self.job_id, self.input_path,
                   self.input_bytes, self.shuffle_bytes, self.output_bytes))


@dataclass
class ReplayPlan:
    """A complete, renderable replay plan.

    Attributes:
        name: workload name the plan was built from.
        layout: files to pre-populate before the first submission.
        commands: job submissions sorted by time.
        target_machines: cluster size the plan targets (informational).
    """

    name: str
    layout: DataLayoutPlan
    commands: List[ReplayCommand]
    target_machines: Optional[int] = None

    @property
    def n_jobs(self) -> int:
        return len(self.commands)

    @property
    def horizon_s(self) -> float:
        """Time of the last submission (0 for an empty plan)."""
        return self.commands[-1].at_s if self.commands else 0.0

    def render(self) -> str:
        """Render the plan as a shell-like script, one directive per line."""
        lines = [
            "# SWIM-style replay plan for %s" % self.name,
            "# %d jobs over %.0f s, %d files / %s to pre-populate"
            % (self.n_jobs, self.horizon_s, self.layout.n_files,
               format_bytes(self.layout.total_bytes)),
            "plan name=%s machines=%s jobs=%d"
            % (self.name, self.target_machines if self.target_machines else "-", self.n_jobs),
        ]
        for path in sorted(self.layout.files):
            lines.append("populate path=%s bytes=%.0f" % (path, self.layout.files[path]))
        previous = 0.0
        for command in self.commands:
            gap = command.at_s - previous
            if gap > 0:
                lines.append("sleep %.3f" % gap)
            lines.append(command.render())
            previous = command.at_s
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        """Write the rendered plan to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())

    def to_trace(self) -> Trace:
        """Rebuild a replayable :class:`Trace` from the plan's commands.

        Durations and task times are not part of the plan (a real replay
        measures them); the rebuilt jobs carry the data volumes and submit
        times, with nominal one-task timing derived from the data volume so
        the simulator can still run the stream.
        """
        jobs = []
        for command in self.commands:
            approx_seconds = max(1.0, command.input_bytes / 64e6)
            jobs.append(Job(
                job_id=command.job_id,
                submit_time_s=command.at_s,
                duration_s=approx_seconds,
                input_bytes=command.input_bytes,
                shuffle_bytes=command.shuffle_bytes,
                output_bytes=command.output_bytes,
                map_task_seconds=approx_seconds,
                reduce_task_seconds=0.0 if command.shuffle_bytes == 0 else approx_seconds / 2,
                input_path=command.input_path,
                workload=self.name,
            ))
        return Trace(jobs, name=self.name)


def build_replay_plan(source, name: Optional[str] = None) -> ReplayPlan:
    """Build a :class:`ReplayPlan` from a synthesizer plan or a plain trace.

    Args:
        source: either a :class:`~repro.synth.swim.SyntheticWorkloadPlan` or a
            :class:`~repro.traces.trace.Trace`.
        name: plan name override.

    Raises:
        SynthesisError: when the source trace is empty.
    """
    if isinstance(source, SyntheticWorkloadPlan):
        trace = source.trace
        layout = source.layout
        machines = source.target_machines
    elif isinstance(source, Trace):
        trace = source
        files: Dict[str, float] = {}
        for index, job in enumerate(trace):
            path = job.input_path or ("/swim/input/%06d" % index)
            files[path] = max(files.get(path, 0.0), float(job.input_bytes or 0.0))
        layout = DataLayoutPlan(files=files)
        machines = trace.machines
    else:
        raise SynthesisError("cannot build a replay plan from %r" % type(source).__name__)

    if trace.is_empty():
        raise SynthesisError("cannot build a replay plan from an empty trace")

    origin = trace.jobs[0].submit_time_s
    commands = []
    for index, job in enumerate(trace):
        commands.append(ReplayCommand(
            at_s=job.submit_time_s - origin,
            job_id=job.job_id,
            input_path=job.input_path or ("/swim/input/%06d" % index),
            input_bytes=float(job.input_bytes or 0.0),
            shuffle_bytes=float(job.shuffle_bytes or 0.0),
            output_bytes=float(job.output_bytes or 0.0),
        ))
    return ReplayPlan(name=name or trace.name, layout=layout, commands=commands,
                      target_machines=machines)


def _parse_fields(parts: Sequence[str]) -> Dict[str, str]:
    fields = {}
    for part in parts:
        if "=" not in part:
            raise SynthesisError("malformed replay plan field %r" % (part,))
        key, value = part.split("=", 1)
        fields[key] = value
    return fields


def parse_replay_plan(text: str) -> ReplayPlan:
    """Parse a rendered replay plan back into a :class:`ReplayPlan`.

    Raises:
        SynthesisError: for malformed directives or a missing ``plan`` header.
    """
    name: Optional[str] = None
    machines: Optional[int] = None
    files: Dict[str, float] = {}
    commands: List[ReplayCommand] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        directive = parts[0]
        if directive == "plan":
            fields = _parse_fields(parts[1:])
            name = fields.get("name")
            machines_text = fields.get("machines", "-")
            machines = int(machines_text) if machines_text not in ("-", "", None) else None
        elif directive == "populate":
            fields = _parse_fields(parts[1:])
            files[fields["path"]] = float(fields["bytes"])
        elif directive == "sleep":
            continue  # gaps are implied by the absolute submit times
        elif directive == "submit":
            fields = _parse_fields(parts[1:])
            missing = {"at", "id", "input", "input_bytes", "shuffle_bytes",
                       "output_bytes"} - set(fields)
            if missing:
                raise SynthesisError(
                    "submit directive missing fields %s in %r" % (sorted(missing), line))
            commands.append(ReplayCommand(
                at_s=float(fields["at"]),
                job_id=fields["id"],
                input_path=fields["input"],
                input_bytes=float(fields["input_bytes"]),
                shuffle_bytes=float(fields["shuffle_bytes"]),
                output_bytes=float(fields["output_bytes"]),
            ))
        else:
            raise SynthesisError("unknown replay plan directive %r" % (directive,))
    if name is None:
        raise SynthesisError("replay plan text lacks a 'plan' header line")
    commands.sort(key=lambda command: command.at_s)
    return ReplayPlan(name=name, layout=DataLayoutPlan(files=files), commands=commands,
                      target_machines=machines)
