"""Empirical sampling from traces.

The SWIM methodology (§7 of the paper, and reference [18]) builds synthetic
workloads by sampling jobs from an observed trace: the trace *is* the model.
:class:`TraceSampler` draws jobs (optionally stratified by job class so rare
but byte-dominant classes are not lost), re-times them with a new arrival
process, and returns a fresh :class:`~repro.traces.trace.Trace`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SynthesisError
from ..traces.schema import Job
from ..traces.trace import Trace
from .arrival import ArrivalProcess, PoissonArrivals

__all__ = ["TraceSampler", "stratified_sample"]


def stratified_sample(trace: Trace, n_jobs: int, rng: np.random.Generator,
                      strata_key=lambda job: job.cluster_label) -> List[Job]:
    """Sample ``n_jobs`` jobs keeping each stratum's share of the original trace.

    Strata are defined by ``strata_key`` (the Table-2 cluster label by default;
    jobs with a ``None`` key form their own stratum).  Every non-empty stratum
    receives at least one sample so that rare classes — which often dominate
    bytes moved — survive aggressive down-sampling.

    Raises:
        SynthesisError: when the trace is empty or ``n_jobs`` is not positive.
    """
    if trace.is_empty():
        raise SynthesisError("cannot sample from an empty trace")
    if n_jobs <= 0:
        raise SynthesisError("n_jobs must be positive, got %r" % (n_jobs,))

    strata: Dict[object, List[Job]] = defaultdict(list)
    for job in trace:
        strata[strata_key(job)].append(job)

    total = len(trace)
    sampled: List[Job] = []
    # Largest-remainder allocation of n_jobs across strata.
    shares = {key: len(jobs) / total * n_jobs for key, jobs in strata.items()}
    allocation = {key: max(1, int(share)) for key, share in shares.items()}
    # Adjust to hit n_jobs exactly (never dropping a stratum below 1).
    while sum(allocation.values()) > n_jobs and len(allocation) < sum(allocation.values()):
        key = max(allocation, key=lambda k: allocation[k])
        if allocation[key] > 1:
            allocation[key] -= 1
        else:
            break
    remainders = sorted(shares, key=lambda k: shares[k] - int(shares[k]), reverse=True)
    index = 0
    while sum(allocation.values()) < n_jobs:
        allocation[remainders[index % len(remainders)]] += 1
        index += 1

    for key, count in allocation.items():
        jobs = strata[key]
        picks = rng.choice(len(jobs), size=count, replace=True)
        sampled.extend(jobs[pick] for pick in picks)
    return sampled


class TraceSampler:
    """Samples synthetic workloads out of an observed trace.

    Args:
        trace: source trace (the empirical model).
        seed: RNG seed.
        stratified: when true (default) sampling preserves the mix of
            ``cluster_label`` strata; when false jobs are drawn uniformly.
    """

    def __init__(self, trace: Trace, seed: int = 0, stratified: bool = True):
        if trace.is_empty():
            raise SynthesisError("TraceSampler needs a non-empty source trace")
        self.trace = trace
        self.seed = int(seed)
        self.stratified = bool(stratified)

    def sample(self, n_jobs: int, horizon_s: float,
               arrival: Optional[ArrivalProcess] = None,
               name: Optional[str] = None) -> Trace:
        """Draw ``n_jobs`` jobs and re-time them over ``[0, horizon_s)``.

        The sampled jobs keep every dimension except their submit time, which
        is re-drawn from ``arrival`` (homogeneous Poisson by default) — this is
        how SWIM compresses a multi-month trace into a replayable run of
        manageable length.
        """
        if horizon_s <= 0:
            raise SynthesisError("horizon_s must be positive, got %r" % (horizon_s,))
        rng = np.random.default_rng(self.seed)
        if self.stratified:
            source_jobs = stratified_sample(self.trace, n_jobs, rng)
        else:
            picks = rng.choice(len(self.trace), size=n_jobs, replace=True)
            source_jobs = [self.trace.jobs[pick] for pick in picks]

        arrival = arrival or PoissonArrivals()
        submit_times = arrival.generate(rng, n_jobs, horizon_s)
        rng.shuffle(source_jobs)

        synthetic_jobs = []
        for index, (job, submit_time) in enumerate(zip(source_jobs, submit_times)):
            data = job.to_dict()
            data["job_id"] = "synth_%06d" % index
            data["submit_time_s"] = float(submit_time)
            synthetic_jobs.append(Job.from_dict(data))
        return Trace(
            synthetic_jobs,
            name=name or ("%s-synth" % self.trace.name),
            machines=self.trace.machines,
        )
