"""File popularity and path assignment.

Section 4 of the paper characterizes data-access behaviour through hashed HDFS
path names: access frequencies follow a Zipf-like distribution with a log-log
slope of about 5/6 for every workload (Figure 2), most jobs read files smaller
than a few GB which hold a small fraction of stored bytes (Figures 3-4),
re-accesses cluster within minutes to hours (Figure 5), and a large fraction
of jobs read pre-existing inputs or outputs (Figure 6).

:class:`FilePopularityModel` assigns input/output paths to a time-ordered job
stream with a dynamic popularity process that reproduces those behaviours
directly:

* with probability ``output_reaccess_fraction`` a job reads a path some
  earlier job *wrote* (Figure 6, "re-access pre-existing output");
* with probability ``input_reaccess_fraction`` it re-reads a path some
  earlier job *read* (Figure 6, "re-access pre-existing input");
* otherwise it reads a brand-new path.

Re-access targets are drawn with weight ``access_count x recency`` — a
preferential-attachment process whose rank-frequency curve is Zipf-like
(Figure 2), with the recency half-life controlling the Figure-5 re-access
interval distribution.  When per-job input sizes are supplied, re-access
candidates are restricted to files of similar size (same log10-decade), so
file size stays consistent with the reading job's input size and — because
small jobs dominate — the most-accessed files are small ones, giving the
"80% of accesses hit <10% of stored bytes" behaviour of Figures 3-4.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SynthesisError
from .distributions import ZipfRank

__all__ = ["FileCatalog", "FilePopularityModel", "PathAssignment"]


class FileCatalog:
    """A static catalog of distinct file paths with sizes.

    Used by callers that need a fixed file population (for example HDFS
    pre-population in the simulator); the dynamic path-assignment process in
    :class:`FilePopularityModel` grows its own file population instead.
    """

    def __init__(self, n_files: int, prefix: str, rng: np.random.Generator,
                 median_bytes: float = 256 * 1024 * 1024, sigma: float = 2.5):
        if n_files <= 0:
            raise SynthesisError("FileCatalog needs a positive number of files")
        self.n_files = int(n_files)
        self.prefix = prefix
        # Log-normal file sizes spread over many orders of magnitude, shuffled
        # independently of rank so size and popularity are uncorrelated.
        self.sizes = median_bytes * np.exp(rng.normal(0.0, sigma, self.n_files))

    def path(self, rank: int) -> str:
        """Path of the file at popularity ``rank`` (1-based)."""
        if not 1 <= rank <= self.n_files:
            raise SynthesisError("rank %d out of range 1..%d" % (rank, self.n_files))
        return "%s/%08d" % (self.prefix, rank)

    def size(self, rank: int) -> float:
        """Size in bytes of the file at popularity ``rank`` (1-based)."""
        if not 1 <= rank <= self.n_files:
            raise SynthesisError("rank %d out of range 1..%d" % (rank, self.n_files))
        return float(self.sizes[rank - 1])

    def total_bytes(self) -> float:
        """Total bytes stored across the catalog."""
        return float(self.sizes.sum())


class PathAssignment:
    """The result of assigning paths to a job stream.

    Attributes:
        input_paths: one input path per job (or ``None`` where unrecorded).
        output_paths: one output path per job (or ``None`` where unrecorded).
        input_file_sizes: size in bytes of each job's input file (matches the
            job's input size when per-job sizes were supplied).
    """

    def __init__(self, input_paths: List[Optional[str]], output_paths: List[Optional[str]],
                 input_file_sizes: List[float]):
        self.input_paths = input_paths
        self.output_paths = output_paths
        self.input_file_sizes = input_file_sizes


class _RecencyPopularityPool:
    """A pool of paths re-drawn with weight = access_count x exp(-age / halflife).

    Pools are keyed by size bin (log10 decade of the file size); bin ``None``
    pools everything together, which is the behaviour used when per-job sizes
    are not supplied.
    """

    def __init__(self, halflife_s: float, max_entries: int = 4000,
                 count_exponent: float = 1.15, recency_floor: float = 0.2):
        self.halflife_s = float(halflife_s)
        self.max_entries = int(max_entries)
        # Superlinear popularity weighting steepens the head of the resulting
        # rank-frequency curve (towards the paper's ~5/6 slope); the recency
        # floor keeps genuinely popular files re-accessible for the whole
        # trace so some re-accesses span hours-to-days (Figure 5: only ~75%
        # of re-accesses fall within 6 hours).
        self.count_exponent = float(count_exponent)
        self.recency_floor = float(recency_floor)
        self._paths: Dict[Optional[int], List[str]] = defaultdict(list)
        self._times: Dict[Optional[int], List[float]] = defaultdict(list)
        self._counts: Dict[Optional[int], List[float]] = defaultdict(list)
        self._index: Dict[Optional[int], Dict[str, int]] = defaultdict(dict)
        self._sizes: Dict[Optional[int], List[float]] = defaultdict(list)

    def record(self, bin_id: Optional[int], path: str, time_s: float, size: float) -> None:
        """Record an access (read or write) of ``path`` at ``time_s``."""
        index = self._index[bin_id]
        if path in index:
            position = index[path]
            self._times[bin_id][position] = time_s
            self._counts[bin_id][position] += 1.0
            return
        if len(self._paths[bin_id]) >= self.max_entries:
            # Evict the oldest entry to bound memory and work per draw.
            oldest = int(np.argmin(self._times[bin_id]))
            evicted = self._paths[bin_id][oldest]
            del self._index[bin_id][evicted]
            self._paths[bin_id].pop(oldest)
            self._times[bin_id].pop(oldest)
            self._counts[bin_id].pop(oldest)
            self._sizes[bin_id].pop(oldest)
            self._index[bin_id] = {p: i for i, p in enumerate(self._paths[bin_id])}
        index = self._index[bin_id]
        index[path] = len(self._paths[bin_id])
        self._paths[bin_id].append(path)
        self._times[bin_id].append(time_s)
        self._counts[bin_id].append(1.0)
        self._sizes[bin_id].append(size)

    def has(self, bin_id: Optional[int]) -> bool:
        return bool(self._paths[bin_id])

    def draw(self, bin_id: Optional[int], now: float, rng: np.random.Generator) -> "tuple[str, float]":
        """Draw a (path, size) pair with popularity x recency weighting."""
        times = np.asarray(self._times[bin_id], dtype=float)
        counts = np.asarray(self._counts[bin_id], dtype=float)
        ages = np.maximum(now - times, 0.0)
        recency = self.recency_floor + (1.0 - self.recency_floor) * np.exp(
            -math.log(2.0) * ages / self.halflife_s
        )
        weights = counts ** self.count_exponent * recency
        total = weights.sum()
        if not np.isfinite(total) or total <= 0:
            pick = len(times) - 1
        else:
            pick = int(rng.choice(times.size, p=weights / total))
        return self._paths[bin_id][pick], self._sizes[bin_id][pick]


class FilePopularityModel:
    """Assigns input/output paths to a time-ordered job stream.

    Args:
        n_input_files: approximate target for the number of distinct input
            paths (used to scale path namespaces; the dynamic process may
            create more or fewer).
        n_output_files: same for output paths.
        zipf_slope: retained for API compatibility and used for the static
            output-path popularity when sizes are not supplied.
        input_reaccess_fraction: fraction of jobs that re-read a previously
            read input path.
        output_reaccess_fraction: fraction of jobs whose input is the output
            path of an earlier job.
        reaccess_halflife_s: recency half-life of re-access target selection;
            controls the Figure-5 re-access interval distribution.
    """

    def __init__(self, n_input_files: int, n_output_files: int, zipf_slope: float = 5.0 / 6.0,
                 input_reaccess_fraction: float = 0.4, output_reaccess_fraction: float = 0.2,
                 reaccess_halflife_s: float = 3 * 3600.0):
        if n_input_files <= 0 or n_output_files <= 0:
            raise SynthesisError("file counts must be positive")
        if not 0.0 <= input_reaccess_fraction <= 1.0:
            raise SynthesisError("input_reaccess_fraction must be in [0, 1]")
        if not 0.0 <= output_reaccess_fraction <= 1.0:
            raise SynthesisError("output_reaccess_fraction must be in [0, 1]")
        if input_reaccess_fraction + output_reaccess_fraction > 1.0:
            raise SynthesisError("re-access fractions must sum to at most 1")
        if reaccess_halflife_s <= 0:
            raise SynthesisError("reaccess_halflife_s must be positive")
        if zipf_slope <= 0:
            raise SynthesisError("zipf_slope must be positive")
        self.n_input_files = int(n_input_files)
        self.n_output_files = int(n_output_files)
        self.zipf_slope = float(zipf_slope)
        self.input_reaccess_fraction = float(input_reaccess_fraction)
        self.output_reaccess_fraction = float(output_reaccess_fraction)
        self.reaccess_halflife_s = float(reaccess_halflife_s)

    # ------------------------------------------------------------------
    def assign(self, submit_times: Sequence[float], rng: np.random.Generator,
               record_inputs: bool = True, record_outputs: bool = True,
               input_prefix: str = "/data/in", output_prefix: str = "/data/out",
               input_bytes: Optional[Sequence[float]] = None,
               output_bytes: Optional[Sequence[float]] = None) -> PathAssignment:
        """Assign paths to jobs submitted at ``submit_times`` (must be sorted).

        When ``input_bytes`` is provided (one value per job), re-access
        candidates are restricted to files whose size falls in the same log10
        decade as the job's input, keeping file size consistent with the
        job's recorded input volume.

        Returns a :class:`PathAssignment`; when ``record_inputs`` or
        ``record_outputs`` is false the corresponding path lists are all
        ``None`` (modelling traces that do not record those dimensions).
        """
        submit_times = np.asarray(list(submit_times), dtype=float)
        n_jobs = submit_times.size

        size_bins = self._size_bins(input_bytes, n_jobs)
        output_sizes = self._as_array(output_bytes, n_jobs, default=0.0)
        input_sizes_in = self._as_array(input_bytes, n_jobs, default=float("nan"))

        read_pool = _RecencyPopularityPool(self.reaccess_halflife_s)
        write_pool = _RecencyPopularityPool(self.reaccess_halflife_s)

        input_paths: List[Optional[str]] = []
        output_paths: List[Optional[str]] = []
        assigned_sizes: List[float] = []

        mode_draws = rng.uniform(0.0, 1.0, max(n_jobs, 1))
        rewrite_draws = rng.uniform(0.0, 1.0, max(n_jobs, 1))
        fresh_counter = 0
        out_counter = 0

        # Static output popularity (repeated writes of the same output path,
        # e.g. a daily job overwriting its result) — Zipf over a fixed space.
        output_zipf = ZipfRank(self.n_output_files, self.zipf_slope)
        out_ranks = output_zipf.sample(rng, max(n_jobs, 1)).astype(int)

        for index in range(n_jobs):
            now = float(submit_times[index])
            bin_id = size_bins[index]
            mode = mode_draws[index]

            if mode < self.output_reaccess_fraction and write_pool.has(bin_id):
                path, size = write_pool.draw(bin_id, now, rng)
            elif (mode < self.output_reaccess_fraction + self.input_reaccess_fraction
                  and read_pool.has(bin_id)):
                path, size = read_pool.draw(bin_id, now, rng)
            else:
                fresh_counter += 1
                path = "%s/%s%08d" % (input_prefix,
                                      ("b%02d/" % bin_id) if bin_id is not None else "",
                                      fresh_counter)
                size = input_sizes_in[index]
                if not np.isfinite(size):
                    size = float(256 * 1024 * 1024)
            read_pool.record(bin_id, path, now, size)

            # Output path: mostly fresh, sometimes a repeat of a popular slot.
            if rewrite_draws[index] < 0.5:
                out_path = "%s/%08d" % (output_prefix, int(out_ranks[index]))
            else:
                out_counter += 1
                out_path = "%s/u%08d" % (output_prefix, out_counter)
            out_size = float(output_sizes[index])
            # Written data becomes a re-access candidate in the size bin of the
            # *output* volume — a later job reading it will have an input of
            # roughly that size.
            write_bin = self._bin_of(out_size) if size_bins is not _UNBINNED else None
            write_pool.record(write_bin, out_path, now, out_size)

            input_paths.append(path if record_inputs else None)
            output_paths.append(out_path if record_outputs else None)
            assigned_sizes.append(float(size))

        return PathAssignment(input_paths, output_paths, assigned_sizes)

    # ------------------------------------------------------------------
    @staticmethod
    def _as_array(values: Optional[Sequence[float]], n_jobs: int, default: float) -> np.ndarray:
        if values is None:
            return np.full(n_jobs, default, dtype=float)
        array = np.asarray(list(values), dtype=float)
        if array.size != n_jobs:
            raise SynthesisError("per-job size arrays must have one entry per job")
        return array

    @staticmethod
    def _bin_of(size: float) -> int:
        return int(math.floor(math.log10(max(size, 1.0))))

    def _size_bins(self, input_bytes: Optional[Sequence[float]], n_jobs: int):
        """Per-job size-bin keys, or the sentinel for unbinned operation."""
        if input_bytes is None:
            return _UNBINNED
        array = np.asarray(list(input_bytes), dtype=float)
        if array.size != n_jobs:
            raise SynthesisError("input_bytes must have one entry per job")
        return [self._bin_of(value) for value in array]


class _UnbinnedSizeKeys:
    """Sentinel sequence: every job maps to the single bin ``None``."""

    def __getitem__(self, index):
        return None


_UNBINNED = _UnbinnedSizeKeys()
