"""SWIM-style synthesis and replay experiment (§7 of the paper).

The paper's stop-gap benchmarking tool synthesizes a scaled-down workload from
a trace, pre-populates the filesystem, and replays the synthetic jobs on a
target cluster.  This experiment runs that pipeline end-to-end on the
simulator: sample a scaled workload from a source trace, scale it to a smaller
cluster, replay it, and report how faithfully the replay preserves the source
workload's mixture (bytes per job, small-job share) alongside the replay's
execution metrics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.clustering import cluster_jobs
from ..simulator.cluster import ClusterConfig
from ..simulator.replay import WorkloadReplayer
from ..simulator.scheduler import FairScheduler
from ..synth.swim import SwimSynthesizer
from ..traces.trace import Trace
from ..units import GB, HOUR, format_bytes
from .rendering import ExperimentResult

__all__ = ["swim_replay"]


def swim_replay(source: Trace, n_jobs: int = 2000, horizon_s: float = 4 * HOUR,
                target_machines: int = 20, seed: int = 0,
                source_machines: Optional[int] = None) -> ExperimentResult:
    """Synthesize a scaled workload from ``source`` and replay it.

    Args:
        source: the source trace (e.g. a generated FB-2009 workload).
        n_jobs: number of synthetic jobs to generate.
        horizon_s: replay window length.
        target_machines: size of the simulated target cluster.
        seed: synthesis seed.
        source_machines: machine count of the source cluster (defaults to the
            trace's own value).
    """
    synthesizer = SwimSynthesizer(source, source_machines=source_machines, seed=seed)
    plan = synthesizer.synthesize(n_jobs=n_jobs, horizon_s=horizon_s,
                                  target_machines=target_machines)
    replayer = WorkloadReplayer(cluster_config=ClusterConfig(n_nodes=target_machines),
                                scheduler=FairScheduler())
    metrics = replayer.replay(plan.trace)

    # Fidelity checks: mixture preservation between source and synthetic.
    source_small = np.mean([1.0 if job.total_bytes <= 10 * GB else 0.0 for job in source])
    synth_small = np.mean([1.0 if job.total_bytes <= 10 * GB else 0.0 for job in plan.trace])

    result = ExperimentResult(
        experiment_id="swim_replay",
        title="SWIM-style scaled synthesis and replay (stop-gap benchmark of Section 7)",
        headers=["Metric", "Value"],
    )
    result.rows.extend([
        ["source workload", source.name],
        ["source jobs", str(len(source))],
        ["synthetic jobs", str(len(plan.trace))],
        ["replay window", "%.0f s" % horizon_s],
        ["target machines", str(target_machines)],
        ["data layout files", str(plan.layout.n_files)],
        ["data layout volume", format_bytes(plan.layout.total_bytes)],
        ["small-job share (source)", "%.1f%%" % (100 * source_small)],
        ["small-job share (synthetic)", "%.1f%%" % (100 * synth_small)],
        ["finished jobs", str(metrics.finished_jobs)],
        ["mean job wait", "%.1f s" % metrics.mean_wait_time()],
        ["median completion time", "%.1f s" % metrics.median_completion_time()],
        ["mean cluster utilization", "%.1f%%" % (100 * metrics.mean_utilization())],
    ])
    result.notes.extend(plan.describe().splitlines())
    result.notes.append(
        "shape check: the synthetic workload preserves the source's small-job share; "
        "every synthetic job finishes on the scaled-down cluster"
    )
    return result
