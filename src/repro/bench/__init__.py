"""Benchmark harness: regenerates every table and figure of the paper."""

from .rendering import ExperimentResult, series_preview
from .table1 import table1
from .table2 import table2
from .figures_data import figure1, figure2, figure3, figure4, figure5, figure6
from .figures_temporal import figure7, figure8, figure9
from .figure10 import figure10
from .swim_replay import swim_replay
from .ablations import burstiness_metric_ablation, cache_policy_ablation, k_selection_ablation
from .extensions import (
    consolidation_ablation,
    energy_ablation,
    evolution_experiment,
    straggler_ablation,
    tiered_cluster_ablation,
    workload_suite_experiment,
)
from .suite import CHARACTERIZATION_EXPERIMENT_IDS, EXPERIMENT_IDS, render_suite, run_suite

__all__ = [
    "ExperimentResult",
    "series_preview",
    "table1",
    "table2",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "swim_replay",
    "cache_policy_ablation",
    "burstiness_metric_ablation",
    "k_selection_ablation",
    "tiered_cluster_ablation",
    "straggler_ablation",
    "energy_ablation",
    "consolidation_ablation",
    "evolution_experiment",
    "workload_suite_experiment",
    "EXPERIMENT_IDS",
    "CHARACTERIZATION_EXPERIMENT_IDS",
    "run_suite",
    "render_suite",
]
