"""Table 2: job types identified by k-means clustering.

Regenerates the paper's Table 2 for each workload: cluster sizes, 6-D cluster
centers (input, shuffle, output bytes; duration; map and reduce task time) and
human labels, using the automatic k selection rule of §6.2.  The headline
shape criterion is that small jobs form more than 90% of every workload.

Traces may be given in any :class:`~repro.engine.source.TraceSource`-wrappable
representation.  The seeded sub-sample is gathered by global row index through
chunked scans, so the same rows — and therefore the identical clustering —
are selected whether the workload arrives as a job list, a columnar trace, or
an out-of-core store.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.clustering import cluster_jobs
from ..core.sharedscan import (
    DEFAULT_CLUSTER_SAMPLE_CAP,
    CharacterizationAnalyses,
    cluster_sample_indices,
)
from ..engine.source import TraceSource
from .rendering import ExperimentResult

__all__ = ["table2"]


def table2(traces: Dict[str, object], max_k: int = 10, seed: int = 0,
           max_jobs_per_workload: Optional[int] = DEFAULT_CLUSTER_SAMPLE_CAP,
           analyses: Optional[Dict[str, CharacterizationAnalyses]] = None) -> ExperimentResult:
    """Cluster every workload's jobs and render the Table-2 reproduction.

    Args:
        traces: mapping of workload name -> trace (any representation).
        max_k: upper bound of the automatic k sweep.
        seed: k-means seed.
        max_jobs_per_workload: optional cap on the jobs clustered per workload
            to bound benchmark runtime.  The cap is applied as a seeded uniform
            random subsample — a submission-order prefix would bias the job-type
            mix (job classes are not spread evenly over the trace timeline).
        analyses: optional shared-scan results built with the same ``seed``
            and cap; their pre-gathered subsample replaces the dedicated
            gather scan (identical rows, hence identical clusters).
    """
    result = ExperimentResult(
        experiment_id="table2",
        title="Job types per workload via k-means clustering",
        headers=["Workload", "# Jobs", "Input", "Shuffle", "Output", "Duration",
                 "Map time", "Reduce time", "Label"],
    )
    for name, trace in traces.items():
        source = TraceSource.wrap(trace)
        clustered = source
        if (analyses is not None and name in analyses
                and analyses[name].has("cluster_sample")
                and max_jobs_per_workload == DEFAULT_CLUSTER_SAMPLE_CAP):
            sample = analyses[name].value("cluster_sample")
            if sample is not None:
                clustered = sample
        else:
            picked = cluster_sample_indices(len(source), max_jobs_per_workload, seed)
            if picked is not None:
                clustered = source.gather(picked)
        clustering = cluster_jobs(clustered, max_k=max_k, seed=seed)
        for cluster in clustering.clusters:
            result.rows.append([name] + cluster.as_row())
        result.notes.append(
            "%s: k=%d, small-job fraction %.1f%% (paper: small jobs >92%% of all jobs)"
            % (name, clustering.k, 100 * clustering.small_job_fraction)
        )
    return result
