"""Extension experiments: ablations for the paper's design recommendations.

Beyond the tables and figures, the paper makes several qualitative arguments
that the extension modules of this library turn into measurable experiments:

* ``tiered_cluster_ablation`` (§6.2) — physically splitting the cluster into a
  performance tier and a capacity tier versus a unified FIFO cluster.
* ``straggler_ablation`` (§6.2) — random straggler injection with and without
  speculative execution, split by small/large jobs.
* ``energy_ablation`` (§5.2) — energy consumption with and without a
  power-down policy during the low-utilization troughs of a bursty workload.
* ``consolidation_ablation`` (§5.2) — burstiness before and after multiplexing
  several workloads on one cluster (the FB 31:1 → 9:1 observation).
* ``evolution_experiment`` (§4.1/§5.2) — FB-2009 versus FB-2010 median shifts.
* ``workload_suite_experiment`` (§7) — greedy selection of a representative
  workload suite across all seven paper workloads.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.comparison import select_workload_suite, workload_features
from ..core.evolution import compare_evolution
from ..core.multiplexing import consolidation_study
from ..simulator.cluster import ClusterConfig
from ..simulator.energy import PowerDownPolicy, PowerModel, energy_from_metrics, evaluate_power_down
from ..simulator.replay import WorkloadReplayer
from ..simulator.stragglers import (
    SpeculativeExecutionModel,
    StragglerInjectionStats,
    StragglerModel,
    straggler_impact,
    straggler_task_transform,
)
from ..simulator.tiered import TieredClusterConfig, compare_tiered_vs_unified
from ..traces.trace import Trace
from ..units import GB, format_bytes
from .rendering import ExperimentResult

__all__ = [
    "tiered_cluster_ablation",
    "straggler_ablation",
    "energy_ablation",
    "consolidation_ablation",
    "evolution_experiment",
    "workload_suite_experiment",
]


def tiered_cluster_ablation(trace: Trace, n_nodes: int = 60,
                            performance_fraction: float = 0.4,
                            threshold_bytes: float = 10 * GB,
                            max_simulated_jobs: Optional[int] = 1500) -> ExperimentResult:
    """Compare a performance/capacity split against a unified FIFO cluster."""
    performance_nodes = max(1, int(round(n_nodes * performance_fraction)))
    config = TieredClusterConfig(
        performance=ClusterConfig(n_nodes=performance_nodes),
        capacity=ClusterConfig(n_nodes=max(1, n_nodes - performance_nodes)),
        small_job_threshold_bytes=threshold_bytes,
    )
    comparison = compare_tiered_vs_unified(trace, config, max_simulated_jobs=max_simulated_jobs)
    result = ExperimentResult(
        experiment_id="ablation_tiered",
        title="Performance/capacity tier split vs unified cluster (%s)" % trace.name,
        headers=["Setup", "Small-job mean wait (s)", "Small jobs", "Large jobs"],
    )
    result.rows.append(["unified FIFO, %d nodes" % n_nodes,
                        "%.1f" % comparison.small_job_wait_unified,
                        str(comparison.tiered.n_small_jobs),
                        str(comparison.tiered.n_large_jobs)])
    result.rows.append(["tiered %d+%d nodes" % (performance_nodes, n_nodes - performance_nodes),
                        "%.1f" % comparison.small_job_wait_tiered,
                        str(comparison.tiered.n_small_jobs),
                        str(comparison.tiered.n_large_jobs)])
    result.notes.append(
        "small-job wait improvement %.1fx with the physical split (threshold %s); "
        "paper §6.2 argues for exactly this performance/capacity separation"
        % (comparison.small_job_wait_improvement, format_bytes(comparison.threshold_bytes)))
    return result


def straggler_ablation(trace: Trace, probability: float = 0.05, slowdown: float = 5.0,
                       n_nodes: int = 60, max_simulated_jobs: Optional[int] = 1200,
                       seed: int = 0) -> ExperimentResult:
    """Straggler injection with and without speculative execution."""
    config = ClusterConfig(n_nodes=n_nodes)
    baseline = WorkloadReplayer(cluster_config=config,
                                max_simulated_jobs=max_simulated_jobs).replay(trace)

    result = ExperimentResult(
        experiment_id="ablation_stragglers",
        title="Straggler injection on %s (p=%.2f, slowdown %.0fx)" % (trace.name, probability, slowdown),
        headers=["Mitigation", "Mean slowdown (small jobs)", "Mean slowdown (large jobs)",
                 "Stragglers rescued", "Undetectable stragglers"],
    )
    for label, speculation in (("none", None), ("speculative execution", SpeculativeExecutionModel())):
        stats = StragglerInjectionStats()
        transform = straggler_task_transform(
            StragglerModel(probability=probability, slowdown_factor=slowdown, seed=seed),
            speculation, stats)
        perturbed = WorkloadReplayer(cluster_config=config, max_simulated_jobs=max_simulated_jobs,
                                     task_transform=transform).replay(trace)
        impact = straggler_impact(baseline, perturbed)
        result.rows.append([
            label,
            "%.2fx" % impact.mean_slowdown_small,
            "%.2fx" % impact.mean_slowdown_large,
            str(stats.stragglers_rescued),
            str(stats.stragglers_undetectable),
        ])
    result.notes.append(
        "paper §6.2: small jobs have too few tasks for stragglers to be detected, so "
        "speculative execution cannot protect them the way it protects large jobs")
    return result


def energy_ablation(trace: Trace, n_nodes: int = 60,
                    max_simulated_jobs: Optional[int] = 3000) -> ExperimentResult:
    """Energy with all nodes on versus a power-down policy on a bursty workload."""
    config = ClusterConfig(n_nodes=n_nodes)
    metrics = WorkloadReplayer(cluster_config=config,
                               max_simulated_jobs=max_simulated_jobs).replay(trace)
    power = PowerModel()
    report = energy_from_metrics(metrics, config, power)
    evaluation = evaluate_power_down(metrics, config, power, PowerDownPolicy())
    result = ExperimentResult(
        experiment_id="ablation_energy",
        title="Energy: always-on vs power-down policy (%s)" % trace.name,
        headers=["Policy", "Energy (kWh)", "Savings vs always-on", "Mean nodes on"],
    )
    result.rows.append(["always on", "%.1f" % report.energy_kwh, "-", str(n_nodes)])
    result.rows.append([
        "power-down", "%.1f" % (evaluation.policy_joules / 3.6e6),
        "%.1f%%" % (100 * evaluation.savings_fraction),
        "%.1f" % evaluation.mean_nodes_on,
    ])
    result.notes.append(
        "mean utilization %.1f%%; paper §5.2: bursty load with a low median means "
        "energy-conservation mechanisms help during the long low-utilization periods"
        % (100 * report.mean_utilization))
    return result


def consolidation_ablation(traces: Dict[str, Trace]) -> ExperimentResult:
    """Burstiness of individual workloads versus their consolidation.

    Accepts traces in any :class:`~repro.engine.source.TraceSource`-wrappable
    representation (store-backed inputs consolidate streamingly).
    """
    from ..engine.source import TraceSource

    sources = [source for source in (TraceSource.wrap(trace) for trace in traces.values())
               if not source.is_empty()]
    study = consolidation_study(sources)
    result = ExperimentResult(
        experiment_id="ablation_consolidation",
        title="Workload consolidation: burstiness before and after multiplexing",
        headers=["Workload", "Peak:median", "99th:median"],
    )
    for name, burstiness in study.source_burstiness.items():
        result.rows.append([name, "%.0f:1" % burstiness.peak_to_median,
                            "%.1f" % burstiness.p99_to_median])
    result.rows.append(["consolidated",
                        "%.0f:1" % study.consolidated_burstiness.peak_to_median,
                        "%.1f" % study.consolidated_burstiness.p99_to_median])
    result.notes.append(
        "peak-to-median reduced %.1fx by multiplexing; remains bursty: %s "
        "(paper §5.2: FB peak-to-median fell 31:1 -> 9:1 with more multiplexing, "
        "but the workload remained bursty)"
        % (study.peak_to_median_reduction, study.remains_bursty))
    return result


def evolution_experiment(before: Trace, after: Trace) -> ExperimentResult:
    """FB-2009 -> FB-2010 style growth comparison (§4.1, §5.2, §6.2)."""
    report = compare_evolution(before, after)
    result = ExperimentResult(
        experiment_id="evolution",
        title="Workload evolution %s -> %s" % (before.name, after.name),
        headers=["Dimension", "Median before", "Median after", "Shift (orders of magnitude)"],
    )
    for dimension, shift in report.shifts.items():
        result.rows.append([
            dimension,
            format_bytes(shift.median_before),
            format_bytes(shift.median_after),
            "%+.1f" % shift.orders_of_magnitude,
        ])
    result.notes.append(
        "peak-to-median %.0f:1 -> %.0f:1; small-job fraction %.1f%% -> %.1f%%; "
        "paper §4.1: input and shuffle distributions shift right while output shifts left"
        % (report.peak_to_median_before, report.peak_to_median_after,
           100 * report.small_job_fraction_before, 100 * report.small_job_fraction_after))
    return result


def workload_suite_experiment(traces: Dict[str, Trace], suite_size: int = 3) -> ExperimentResult:
    """Select a representative workload suite across all workloads (§7)."""
    features = [workload_features(trace) for trace in traces.values() if not trace.is_empty()]
    suite = select_workload_suite(features, suite_size=min(suite_size, len(features)))
    result = ExperimentResult(
        experiment_id="workload_suite",
        title="Representative workload suite selection (k-center, size %d)" % suite_size,
        headers=["Workload", "Nearest representative"],
    )
    for name, representative in sorted(suite.assignment.items()):
        result.rows.append([name, representative])
    result.notes.append(
        "selected suite: %s; coverage radius %.2f (normalized feature space); "
        "paper §7: no single workload is representative, so a benchmark needs a suite "
        "covering the behavior range"
        % (", ".join(suite.selected), suite.coverage_radius))
    return result
