"""Figures 7-9: temporal behaviour experiments.

Figure 7 — weekly time series of job submissions, aggregate I/O, aggregate
task-time and cluster utilization; Figure 8 — burstiness curves with sine
reference signals; Figure 9 — pairwise correlations between the hourly
submission dimensions.

Traces may be given in any :class:`~repro.engine.source.TraceSource`-wrappable
representation.  The hourly series come from chunked group-by scans; for the
Figure-7 utilization column a store-backed source feeds the replayer through
the shared lazy event loop (one chunk of jobs at a time) instead of
materializing the trace, producing the identical metric fold.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.burstiness import burstiness_curve, hourly_task_seconds
from ..core.sharedscan import CharacterizationAnalyses
from ..core.temporal import dimension_correlations, diurnal_strength, hourly_dimensions, weekly_view
from ..engine.source import TraceSource
from ..errors import AnalysisError
from ..simulator.cluster import ClusterConfig
from ..simulator.replay import WorkloadReplayer
from ..synth.arrival import sine_reference_series
from ..units import HOUR, WEEK
from .rendering import ExperimentResult

__all__ = ["figure7", "figure8", "figure9"]


def _first_week_jobs(source: TraceSource, week_end: float):
    """Yield jobs submitted in ``[0, week_end)``, verifying submit order.

    Stopping at the first job past the window is only sound on a sorted
    stream, so disorder raises instead of silently truncating the window.
    """
    last_submit = -np.inf
    for job in source.iter_jobs():
        if job.submit_time_s < last_submit:
            raise AnalysisError(
                "source %r is not sorted by submit time; cannot window the "
                "first week for the utilization replay" % (source.name,))
        last_submit = job.submit_time_s
        if job.submit_time_s >= week_end:
            break
        if job.submit_time_s >= 0.0:
            yield job


def _first_week_utilization(source: TraceSource,
                            max_simulated_jobs: Optional[int]) -> Optional[np.ndarray]:
    """Replay the first week of a source; hourly active slots (None if empty).

    Materialized and streaming sources feed the same
    :meth:`WorkloadReplayer.replay_jobs` event loop with the same job
    sequence (submissions in ``[0, min(week, duration))``), so the hourly
    utilization column is identical for every representation; a store source
    streams jobs one chunk at a time.
    """
    week_end = float(min(WEEK, source.duration_s()))
    machines = source.machines or 100
    replayer = WorkloadReplayer(
        cluster_config=ClusterConfig(n_nodes=machines),
        max_simulated_jobs=max_simulated_jobs,
    )
    metrics = replayer.replay_jobs(_first_week_jobs(source, week_end))
    if metrics.n_jobs == 0:
        return None
    return metrics.hourly_active_slots()


def figure7(traces: Dict[str, object], simulate_utilization: bool = True,
            max_simulated_jobs: Optional[int] = 4000,
            analyses: Optional[Dict[str, CharacterizationAnalyses]] = None) -> ExperimentResult:
    """Figure 7: workload behaviour over a week in four dimensions.

    The first three columns (submissions, I/O and task-time per hour) come
    straight from the trace (via the shared scan when ``analyses`` is given);
    the fourth (cluster utilization in active slots) is obtained by replaying
    the first week of the trace on the simulator, mirroring how the paper's
    utilization column reflects the cluster's execution rather than the
    submission stream.
    """
    result = ExperimentResult(
        experiment_id="figure7",
        title="Weekly time series: submissions, I/O, task-time, utilization",
        headers=["Workload", "Hours", "Mean jobs/hr", "Peak jobs/hr", "Diurnal strength"],
    )
    for name, trace in traces.items():
        source = TraceSource.wrap(trace)
        if analyses is not None and name in analyses:
            dims = analyses[name].value("hourly")
        else:
            dims = hourly_dimensions(source)
        week = weekly_view(dims, 0)
        jobs_series = week.series["jobs"]
        diurnal = diurnal_strength(dims.jobs_per_hour)
        result.rows.append([
            name,
            str(week.n_hours),
            "%.1f" % float(np.mean(jobs_series)),
            "%.0f" % float(np.max(jobs_series)),
            "%.2f" % diurnal.diurnal_strength,
        ])
        for dimension in ("jobs", "bytes", "task_seconds"):
            series = week.series[dimension]
            result.series["%s/%s_per_hour" % (name, dimension)] = [
                (float(hour), float(value)) for hour, value in enumerate(series)
            ]
        if simulate_utilization:
            hourly_slots = _first_week_utilization(source, max_simulated_jobs)
            if hourly_slots is not None:
                result.series["%s/active_slots_per_hour" % name] = [
                    (float(hour), float(value))
                    for hour, value in enumerate(hourly_slots[: WEEK // HOUR])
                ]
    result.notes.append(
        "paper: high noise in all dimensions; some workloads show visually "
        "identifiable daily patterns; shapes differ across workloads and dimensions"
    )
    return result


def figure8(traces: Dict[str, object],
            analyses: Optional[Dict[str, CharacterizationAnalyses]] = None) -> ExperimentResult:
    """Figure 8: burstiness (percentile-to-median CDF of hourly task-time)."""
    result = ExperimentResult(
        experiment_id="figure8",
        title="Workload burstiness: normalized hourly task-time distribution",
        headers=["Workload", "Peak:median", "99th:median", "90th:median", "Hours"],
    )
    for name, trace in traces.items():
        try:
            if analyses is not None and name in analyses:
                hourly = analyses[name].value("hourly").task_seconds_per_hour
            else:
                hourly = hourly_task_seconds(trace)
            burst = burstiness_curve(hourly, drop_zero_hours=True)
        except AnalysisError:
            continue
        result.rows.append([
            name,
            "%.0f:1" % burst.peak_to_median,
            "%.1f" % burst.p99_to_median,
            "%.1f" % burst.p90_to_median,
            str(burst.hours),
        ])
        result.series[name] = [(ratio, pct) for ratio, pct in burst.curve]
    # Reference sine signals, as plotted in the paper for comparison.
    for label, offset in (("sine + 2", 2.0), ("sine + 20", 20.0)):
        series = sine_reference_series(14 * 24, offset=offset, amplitude=1.0)
        burst = burstiness_curve(series)
        result.rows.append([label, "%.2f:1" % burst.peak_to_median,
                            "%.2f" % burst.p99_to_median, "%.2f" % burst.p90_to_median,
                            str(burst.hours)])
        result.series[label] = [(ratio, pct) for ratio, pct in burst.curve]
    result.notes.append(
        "paper: peak-to-median ranges from 9:1 (FB-2010) to 260:1 across workloads, "
        "far burstier than sinusoidal submission patterns"
    )
    return result


def figure9(traces: Dict[str, object],
            analyses: Optional[Dict[str, CharacterizationAnalyses]] = None) -> ExperimentResult:
    """Figure 9: correlations between hourly jobs, bytes and task-time series."""
    result = ExperimentResult(
        experiment_id="figure9",
        title="Correlation between submission time series dimensions",
        headers=["Workload", "jobs-bytes", "jobs-task-seconds", "bytes-task-seconds"],
    )
    all_values = {"jobs-bytes": [], "jobs-task-seconds": [], "bytes-task-seconds": []}
    for name, trace in traces.items():
        if analyses is not None and name in analyses:
            dims = analyses[name].value("hourly")
        else:
            dims = hourly_dimensions(trace)
        correlations = dimension_correlations(dims)
        values = correlations.as_dict()
        for key in all_values:
            all_values[key].append(values[key])
        result.rows.append([
            name,
            "%.2f" % correlations.jobs_bytes,
            "%.2f" % correlations.jobs_task_seconds,
            "%.2f" % correlations.bytes_task_seconds,
        ])
    if all_values["jobs-bytes"]:
        averages = {key: float(np.mean(values)) for key, values in all_values.items()}
        result.rows.append([
            "average",
            "%.2f" % averages["jobs-bytes"],
            "%.2f" % averages["jobs-task-seconds"],
            "%.2f" % averages["bytes-task-seconds"],
        ])
        result.notes.append(
            "paper averages: jobs-bytes 0.21, jobs-task-seconds 0.14, bytes-task-seconds 0.62 "
            "(data size vs compute is by far the strongest pair)"
        )
    return result
