"""Ablation experiments for the design choices the paper argues for.

Three ablations, each exercising one recommendation made in the paper:

* ``cache_policy_ablation`` (§4.2-4.3) — compare storage-cache policies
  (no cache, LRU, LFU, size-threshold admission, unlimited) on a replayed
  workload.  The paper's argument is that a size-threshold admission policy
  captures most accesses with a capacity detached from total data growth.
* ``burstiness_metric_ablation`` (§5.2) — compare the paper's
  percentile-to-median metric against the plain peak-to-average ratio on
  signals with and without extreme outliers, showing why the median-based
  metric is the more robust summary.
* ``k_selection_ablation`` (§6.2) — sweep the k-means improvement threshold
  and report the chosen k and small-job fraction, showing the clustering
  conclusion (small jobs dominate) is insensitive to the threshold choice.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.clustering import cluster_jobs
from ..core.kmeans import log_standardize, select_k
from ..core.stats import percentile_ratio_curve
from ..simulator.cache import LfuCache, LruCache, NoCache, SizeThresholdCache, UnlimitedCache
from ..simulator.cluster import ClusterConfig
from ..simulator.replay import WorkloadReplayer
from ..synth.arrival import sine_reference_series
from ..traces.trace import Trace
from ..units import GB, format_bytes
from .rendering import ExperimentResult

__all__ = ["cache_policy_ablation", "burstiness_metric_ablation", "k_selection_ablation"]


def cache_policy_ablation(trace: Trace, cache_capacity_bytes: float = 512 * GB,
                          size_threshold_bytes: float = 4 * GB,
                          max_simulated_jobs: Optional[int] = 4000,
                          n_nodes: int = 100) -> ExperimentResult:
    """Replay one workload under each cache policy and compare hit rates."""
    policies = {
        "no-cache": NoCache(),
        "lru": LruCache(cache_capacity_bytes),
        "lfu": LfuCache(cache_capacity_bytes),
        "size-threshold+lru": SizeThresholdCache(cache_capacity_bytes, size_threshold_bytes),
        "unlimited": UnlimitedCache(),
    }
    result = ExperimentResult(
        experiment_id="ablation_cache",
        title="Cache policy comparison on replayed workload %s" % trace.name,
        headers=["Policy", "Hit rate", "Byte hit rate", "Cache used", "Evictions", "Rejected admissions"],
    )
    for name, cache in policies.items():
        replayer = WorkloadReplayer(
            cluster_config=ClusterConfig(n_nodes=n_nodes),
            cache=cache,
            max_simulated_jobs=max_simulated_jobs,
        )
        metrics = replayer.replay(trace)
        stats = metrics.cache_stats
        result.rows.append([
            name,
            "%.1f%%" % (100 * stats.hit_rate),
            "%.1f%%" % (100 * stats.byte_hit_rate),
            format_bytes(cache.used_bytes) if np.isfinite(cache.used_bytes) else "inf",
            str(stats.evictions),
            str(stats.admissions_rejected),
        ])
    result.notes.append(
        "paper argument: a size-threshold admission policy captures the bulk of accesses "
        "(which hit small files) while bounding cache capacity; LRU-style eviction works "
        "because 75%% of re-accesses fall within hours"
    )
    return result


def burstiness_metric_ablation(trace: Trace) -> ExperimentResult:
    """Compare peak-to-median against peak-to-mean on real and synthetic signals."""
    from ..core.burstiness import hourly_task_seconds

    result = ExperimentResult(
        experiment_id="ablation_burstiness",
        title="Burstiness metric: median-normalized vs mean-normalized",
        headers=["Signal", "Peak:median", "Peak:mean", "99th:median", "99th:mean"],
    )

    def row(label, series):
        series = np.asarray(series, dtype=float)
        positive = series[series > 0]
        median = float(np.median(positive))
        mean = float(np.mean(positive))
        result.rows.append([
            label,
            "%.1f" % (positive.max() / median),
            "%.1f" % (positive.max() / mean),
            "%.1f" % (np.percentile(positive, 99) / median),
            "%.1f" % (np.percentile(positive, 99) / mean),
        ])

    row("%s hourly task-time" % trace.name, hourly_task_seconds(trace))
    row("sine + 2", sine_reference_series(14 * 24, 2.0))
    row("sine + 20", sine_reference_series(14 * 24, 20.0))
    # A synthetic series with one extreme outlier: the mean-based ratio is
    # dragged down by the outlier inflating the mean, while the median-based
    # ratio still reports the burst.
    outlier_series = np.ones(200)
    outlier_series[100] = 1000.0
    row("constant + single outlier", outlier_series)
    result.notes.append(
        "the median-normalized metric (the paper's choice) is robust to rare extreme "
        "hours, while mean-normalized ratios understate burstiness when outliers inflate the mean"
    )
    return result


def k_selection_ablation(trace: Trace, max_k: int = 10, seed: int = 0,
                         max_jobs: int = 10000) -> ExperimentResult:
    """Sweep the k-selection improvement threshold and report chosen k."""
    clustered_trace = trace[:max_jobs] if len(trace) > max_jobs else trace
    features = log_standardize(clustered_trace.feature_matrix())
    result = ExperimentResult(
        experiment_id="ablation_kselect",
        title="Sensitivity of automatic k selection (workload %s)" % trace.name,
        headers=["Improvement threshold", "Chosen k", "Small-job fraction"],
    )
    for threshold in (0.02, 0.05, 0.10, 0.20, 0.30):
        selection = select_k(features, max_k=max_k, seed=seed, improvement_threshold=threshold)
        clustering = cluster_jobs(clustered_trace, k=selection.chosen_k, seed=seed)
        result.rows.append([
            "%.2f" % threshold,
            str(selection.chosen_k),
            "%.1f%%" % (100 * clustering.small_job_fraction),
        ])
    result.notes.append(
        "the dominant-small-jobs conclusion is stable across thresholds even though "
        "the exact cluster count varies"
    )
    return result
