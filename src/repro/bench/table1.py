"""Table 1: summary of the seven workload traces.

Regenerates the paper's Table 1 row for every workload (machines, trace
length, job count, bytes moved) from the generated traces, alongside the
published full-scale values carried on each workload's spec, so the scaled
reproduction can be compared against the paper directly.  Traces may be given
in any :class:`~repro.engine.source.TraceSource`-wrappable representation —
a chunked store is summarized by one engine scan without materializing jobs.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.sharedscan import CharacterizationAnalyses
from ..engine.source import TraceSource
from ..traces.registry import DEFAULT_SCALES, PAPER_WORKLOAD_NAMES, get_spec
from ..units import format_bytes, format_duration
from .rendering import ExperimentResult

__all__ = ["table1"]

#: Published Table 1 values (job count, bytes moved) for comparison notes.
PAPER_TABLE1 = {
    "CC-a": (5759, "80 TB"),
    "CC-b": (22974, "600 TB"),
    "CC-c": (21030, "18 PB"),
    "CC-d": (13283, "8 PB"),
    "CC-e": (10790, "590 TB"),
    "FB-2009": (1129193, "9.4 PB"),
    "FB-2010": (1169184, "1.5 EB"),
}


def table1(traces: Dict[str, object], scales: Optional[Dict[str, float]] = None,
           analyses: Optional[Dict[str, CharacterizationAnalyses]] = None) -> ExperimentResult:
    """Build the Table-1 reproduction from generated traces.

    Args:
        traces: mapping of workload name -> trace, in any representation
            (typically from :func:`repro.traces.load_all_paper_workloads`, or
            chunked stores for the out-of-core path).
        scales: the scale factor used per workload, recorded in the notes.
        analyses: optional shared-scan results per workload (from
            :func:`repro.core.sharedscan.run_characterization_scan`); when
            given, the summaries come from the one decoded pass instead of a
            dedicated scan.
    """
    scales = scales or DEFAULT_SCALES
    headers = ["Trace", "Machines", "Length", "Jobs", "Bytes moved", "Scale", "Paper jobs", "Paper bytes"]
    rows = []
    for name in PAPER_WORKLOAD_NAMES:
        if name not in traces:
            continue
        if analyses is not None and name in analyses:
            summary = analyses[name].value("summary")
        else:
            summary = TraceSource.wrap(traces[name]).summary()
        paper_jobs, paper_bytes = PAPER_TABLE1.get(name, ("-", "-"))
        rows.append([
            name,
            str(summary.machines if summary.machines is not None else get_spec(name).machines),
            format_duration(summary.length_s),
            str(summary.n_jobs),
            format_bytes(summary.bytes_moved),
            "%.3g" % scales.get(name, 1.0),
            str(paper_jobs),
            str(paper_bytes),
        ])
    result = ExperimentResult(
        experiment_id="table1",
        title="Summary of traces (machines, length, jobs, bytes moved)",
        headers=headers,
        rows=rows,
    )
    result.notes.append(
        "Facebook workloads are generated at a reduced scale; job counts and bytes "
        "moved scale proportionally with the recorded factor."
    )
    return result
