"""Figure 10: job-name first-word breakdown per workload.

Regenerates the three panels of the paper's Figure 10: the most frequent first
words of job names weighted by job count, by total I/O bytes, and by task-time,
plus the framework shares the paper derives from them (two frameworks dominate
every workload; query-like frameworks contribute 20%-80%+ of load).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.naming import analyze_naming
from ..core.sharedscan import CharacterizationAnalyses
from ..errors import AnalysisError
from .rendering import ExperimentResult

__all__ = ["figure10"]


def figure10(traces: Dict[str, object], top_n: int = 5,
             analyses: Optional[Dict[str, CharacterizationAnalyses]] = None) -> ExperimentResult:
    """Build the Figure-10 reproduction for every trace that records names.

    Traces may be in any :class:`~repro.engine.source.TraceSource`-wrappable
    representation; the naming fold streams the name column chunk by chunk
    (through the shared scan when ``analyses`` is given).
    """
    result = ExperimentResult(
        experiment_id="figure10",
        title="First word of job names, weighted by jobs / bytes / task-time",
        headers=["Workload", "Weighting", "Top words (share)", "Query-framework share"],
    )
    for name, trace in traces.items():
        try:
            if analyses is not None and name in analyses:
                analysis = analyses[name].value("naming")
            else:
                analysis = analyze_naming(trace)
        except AnalysisError:
            result.notes.append("%s records no job names (as in the paper's FB-2010 trace)" % name)
            continue
        panels = (
            ("jobs", analysis.by_jobs),
            ("bytes", analysis.by_bytes),
            ("task-time", analysis.by_task_seconds),
        )
        for weighting, breakdown in panels:
            top = ", ".join("%s (%.0f%%)" % (word, 100 * share) for word, share in breakdown.top(top_n))
            framework_key = "task_seconds" if weighting == "task-time" else weighting
            framework_share = analysis.framework_share(framework_key)
            result.rows.append([name, weighting, top, "%.0f%%" % (100 * framework_share)])
        result.series["%s/framework_share_jobs" % name] = [
            (float(index), share)
            for index, (framework, share) in enumerate(sorted(
                analysis.framework_shares["jobs"].items()))
        ]
    result.notes.append(
        "paper: a handful of first words dominates each workload; for every workload "
        "two frameworks account for the dominant majority of jobs"
    )
    return result
