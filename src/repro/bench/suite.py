"""Benchmark suite runner: regenerate every table and figure in one call.

:func:`run_suite` generates the seven paper workloads at configurable scales,
runs every experiment module, and returns the collected
:class:`~repro.bench.rendering.ExperimentResult` objects;
:func:`render_suite` turns them into the plain-text report that EXPERIMENTS.md
is built from.

Pre-generated ``traces`` may be passed in any
:class:`~repro.engine.source.TraceSource`-wrappable representation, including
out-of-core :class:`~repro.engine.store.ChunkedTraceStore` directories.  The
characterization experiments (:data:`CHARACTERIZATION_EXPERIMENT_IDS` —
Table 1, Figures 1-10, Table 2) run from **one shared scan per trace**
(:func:`repro.core.sharedscan.run_characterization_scan`): every selected
experiment registers its chunk-consumer fold on a single
:class:`~repro.engine.pipeline.ScanPipeline`, so a store is decoded once for
the whole batch and ``processes`` fans the chunks over workers.  The
replay-simulation ablations need real ``Job`` objects and materialize their
reference trace on demand.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.sharedscan import CharacterizationAnalyses, run_characterization_scan
from ..engine.parallel import ParallelExecutor
from ..engine.source import TraceSource
from ..traces.registry import DEFAULT_SCALES, load_all_paper_workloads
from ..traces.trace import Trace
from .ablations import burstiness_metric_ablation, cache_policy_ablation, k_selection_ablation
from .extensions import (
    consolidation_ablation,
    energy_ablation,
    evolution_experiment,
    straggler_ablation,
    tiered_cluster_ablation,
    workload_suite_experiment,
)
from .figure10 import figure10
from .figures_data import figure1, figure2, figure3, figure4, figure5, figure6
from .figures_temporal import figure7, figure8, figure9
from .rendering import ExperimentResult
from .swim_replay import swim_replay
from .table1 import table1
from .table2 import table2

__all__ = ["run_suite", "render_suite", "EXPERIMENT_IDS", "CHARACTERIZATION_EXPERIMENT_IDS"]

#: The experiments that reproduce the paper's characterization proper
#: (Table 1, Figures 1-10, Table 2).  These run on any representation via
#: chunked engine scans — this is the default set for ``repro bench --store``.
CHARACTERIZATION_EXPERIMENT_IDS = (
    "table1", "figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
    "figure7", "figure8", "figure9", "figure10", "table2",
)

#: Identifiers of every experiment the suite runs, in report order.
EXPERIMENT_IDS = CHARACTERIZATION_EXPERIMENT_IDS + (
    "swim_replay",
    "ablation_cache", "ablation_burstiness", "ablation_kselect",
    "ablation_tiered", "ablation_stragglers", "ablation_energy",
    "ablation_consolidation", "evolution", "workload_suite",
)


def run_suite(seed: int = 0, scale: Optional[float] = None,
              scale_overrides: Optional[Dict[str, float]] = None,
              traces: Optional[Dict[str, Trace]] = None,
              include_ablations: bool = True,
              include_simulation: bool = True,
              experiments: Optional[List[str]] = None,
              shared_scan: bool = True,
              processes: Optional[int] = None,
              analyses: Optional[Dict[str, CharacterizationAnalyses]] = None
              ) -> List[ExperimentResult]:
    """Run the full benchmark suite.

    Args:
        seed: seed used for workload generation and clustering.
        scale: optional uniform scale factor for every paper workload.
        scale_overrides: per-workload scale factors layered on top of ``scale``.
        traces: pre-generated traces keyed by workload name (skips generation);
            values may be in any :class:`TraceSource`-wrappable representation,
            including chunked store handles.
        include_ablations: include the three ablation experiments.
        include_simulation: include the experiments that need the replay
            simulator (Figure 7 utilization column, SWIM replay, cache ablation).
        experiments: restrict to a subset of :data:`EXPERIMENT_IDS`.
        shared_scan: run the selected characterization experiments from **one**
            shared scan per trace (see :mod:`repro.core.sharedscan`) instead of
            one scan per experiment.  ``False`` forces the per-analysis path
            (the results are identical; this exists for benchmarking and for
            the equality tests).
        processes: fan the shared scan of store-backed traces out over this
            many worker processes (``None`` = serial; implies nothing for
            materialized traces).
        analyses: precomputed shared-scan bundles keyed by workload name —
            e.g. from :func:`run_characterization_scan` with
            ``resume_from=``/``checkpoint_to=`` (the incremental path) — used
            instead of running the suite's own scan.

    Returns:
        A list of experiment results in report order.
    """
    if traces is None:
        traces = load_all_paper_workloads(seed=seed, scale=scale, scale_overrides=scale_overrides)
    selected = set(experiments) if experiments is not None else set(EXPERIMENT_IDS)

    results: List[ExperimentResult] = []

    def wanted(experiment_id: str) -> bool:
        return experiment_id in selected

    def materialized(name: str) -> Trace:
        """A job-list Trace for the simulation experiments (cached in place)."""
        trace = traces[name]
        if not isinstance(trace, Trace):
            traces[name] = trace = TraceSource.wrap(trace).materialize()
        return trace

    characterization = [experiment_id for experiment_id in CHARACTERIZATION_EXPERIMENT_IDS
                        if wanted(experiment_id)]
    if analyses is None and shared_scan and characterization:
        executor = ParallelExecutor(processes=processes) if processes else None
        analyses = {
            name: run_characterization_scan(trace, experiments=characterization,
                                            seed=seed, executor=executor)
            for name, trace in traces.items()
        }

    if wanted("table1"):
        results.append(table1(traces, scales=scale_overrides or DEFAULT_SCALES,
                              analyses=analyses))
    if wanted("figure1"):
        results.append(figure1(traces, analyses=analyses))
    if wanted("figure2"):
        results.append(figure2(traces, analyses=analyses))
    if wanted("figure3"):
        results.append(figure3(traces, analyses=analyses))
    if wanted("figure4"):
        results.append(figure4(traces, analyses=analyses))
    if wanted("figure5"):
        results.append(figure5(traces, analyses=analyses))
    if wanted("figure6"):
        results.append(figure6(traces, analyses=analyses))
    if wanted("figure7"):
        results.append(figure7(traces, simulate_utilization=include_simulation,
                               analyses=analyses))
    if wanted("figure8"):
        results.append(figure8(traces, analyses=analyses))
    if wanted("figure9"):
        results.append(figure9(traces, analyses=analyses))
    if wanted("figure10"):
        results.append(figure10(traces, analyses=analyses))
    if wanted("table2"):
        results.append(table2(traces, seed=seed, analyses=analyses))
    if include_simulation and wanted("swim_replay"):
        source_name = "FB-2009" if "FB-2009" in traces else next(iter(traces))
        results.append(swim_replay(materialized(source_name), seed=seed))
    if include_ablations:
        reference_name = "CC-c" if "CC-c" in traces else next(iter(traces))
        if wanted("ablation_burstiness"):
            results.append(burstiness_metric_ablation(traces[reference_name]))
        if include_simulation and wanted("ablation_cache"):
            results.append(cache_policy_ablation(materialized(reference_name)))
        if wanted("ablation_kselect"):
            results.append(k_selection_ablation(materialized(reference_name), seed=seed))
        if include_simulation and wanted("ablation_tiered"):
            results.append(tiered_cluster_ablation(materialized(reference_name)))
        if include_simulation and wanted("ablation_stragglers"):
            results.append(straggler_ablation(materialized(reference_name), seed=seed))
        if include_simulation and wanted("ablation_energy"):
            results.append(energy_ablation(materialized(reference_name)))
        if wanted("ablation_consolidation"):
            results.append(consolidation_ablation(traces))
        if wanted("evolution") and "FB-2009" in traces and "FB-2010" in traces:
            results.append(evolution_experiment(materialized("FB-2009"),
                                                materialized("FB-2010")))
        if wanted("workload_suite"):
            results.append(workload_suite_experiment(
                {name: materialized(name) for name in traces}))
    return results


def render_suite(results: List[ExperimentResult]) -> str:
    """Render every experiment result as one plain-text report."""
    return "\n\n".join(result.render() for result in results)
