"""Figures 1-6: data access pattern experiments.

One function per figure.  Each takes ``{workload name: trace}`` — where a
trace may be any :class:`~repro.engine.source.TraceSource`-wrappable
representation, including an out-of-core chunked store — and returns an
:class:`~repro.bench.rendering.ExperimentResult` whose series/rows regenerate
the corresponding paper figure and whose notes record the shape criteria the
paper reports (median spreads, Zipf slope ≈ 5/6, 80-x rule, re-access timing).

Every function also accepts ``analyses``: the per-workload results of one
shared characterization scan
(:func:`repro.core.sharedscan.run_characterization_scan`).  The suite runner
builds that scan once per trace, so the whole Figure 1-6 block consumes a
single decoded pass; called without ``analyses``, each figure folds its own
consumers (same code, one scan per figure).  Store-backed inputs stream chunk
by chunk; Figure 1's CDFs are then sketch-backed (see
:mod:`repro.core.datasizes`), everything else is exact.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.access import (
    eighty_x_from_profile,
    reaccess_fractions,
    reaccess_intervals,
    size_access_profile,
)
from ..core.datasizes import analyze_data_sizes, median_spread_orders
from ..core.sharedscan import CharacterizationAnalyses
from ..core.zipf import column_rank_frequencies
from ..errors import AnalysisError
from ..units import format_bytes
from .rendering import ExperimentResult

__all__ = ["figure1", "figure2", "figure3", "figure4", "figure5", "figure6"]

_RANK_COLUMNS = {"input": "input_path", "output": "output_path"}


def _cdf_series(cdf, max_points: int = 200):
    """Thin a CDF to about ``max_points`` (value, fraction) pairs.

    The stride is ``n // max_points`` (floored, at least 1), so the series
    can run up to twice the target — the historical thinning rule, kept so
    figure series stay identical across scan modes.
    """
    values = getattr(cdf, "values", None)
    if values is not None:
        # Exact CDFs expose their sorted arrays: thin before materializing
        # Python tuples (an exact CDF over 1M jobs would otherwise build a
        # million-pair list only to keep 200 of them).
        fractions = cdf.fractions
        n = int(values.size)
        if n <= max_points:
            return list(zip(values.tolist(), fractions.tolist()))
        step = max(1, n // max_points)
        points = list(zip(values[::step].tolist(), fractions[::step].tolist()))
        last = (float(values[-1]), float(fractions[-1]))
        if points[-1] != last:
            points.append(last)
        return points
    points = cdf.as_points()
    if len(points) <= max_points:
        return points
    step = max(1, len(points) // max_points)
    thinned = points[::step]
    if thinned[-1] != points[-1]:
        thinned.append(points[-1])
    return thinned


def _bundle(analyses: Optional[Dict[str, CharacterizationAnalyses]],
            name: str) -> Optional[CharacterizationAnalyses]:
    if analyses is None:
        return None
    return analyses.get(name)


def figure1(traces: Dict[str, object],
            analyses: Optional[Dict[str, CharacterizationAnalyses]] = None) -> ExperimentResult:
    """Figure 1: CDFs of per-job input, shuffle and output size per workload."""
    result = ExperimentResult(
        experiment_id="figure1",
        title="Per-job input/shuffle/output size distributions",
        headers=["Workload", "Median input", "Median shuffle", "Median output", "Jobs < 1 GB input"],
    )
    distributions = []
    for name, trace in traces.items():
        bundle = _bundle(analyses, name)
        dist = bundle.value("data_sizes") if bundle is not None else analyze_data_sizes(trace)
        distributions.append(dist)
        result.rows.append([
            name,
            format_bytes(dist.medians["input_bytes"]),
            format_bytes(dist.medians["shuffle_bytes"]),
            format_bytes(dist.medians["output_bytes"]),
            "%.0f%%" % (100 * dist.fraction_below_gb["input_bytes"]),
        ])
        for dimension in ("input_bytes", "shuffle_bytes", "output_bytes"):
            result.series["%s/%s" % (name, dimension)] = _cdf_series(dist.cdfs[dimension])
    if len(distributions) >= 2:
        for dimension in ("input_bytes", "shuffle_bytes", "output_bytes"):
            spread = median_spread_orders(distributions, dimension)
            result.notes.append(
                "median %s spreads %.1f orders of magnitude across workloads "
                "(paper: input 6, shuffle 8, output 4)" % (dimension, spread)
            )
    result.notes.append("paper: most jobs move MB-GB of data, far below TB-scale benchmarks")
    return result


def figure2(traces: Dict[str, object],
            analyses: Optional[Dict[str, CharacterizationAnalyses]] = None) -> ExperimentResult:
    """Figure 2: log-log file access frequency vs rank (Zipf, slope ≈ 5/6)."""
    result = ExperimentResult(
        experiment_id="figure2",
        title="File access frequency vs rank (Zipf-like)",
        headers=["Workload", "Kind", "Distinct files", "Max frequency", "Fitted slope"],
    )
    for name, trace in traces.items():
        bundle = _bundle(analyses, name)
        for kind in ("input", "output"):
            if bundle is not None:
                ranks = bundle.get("%s_ranks" % kind)
                if ranks is None:
                    continue
            else:
                try:
                    ranks = column_rank_frequencies(trace, _RANK_COLUMNS[kind])
                except AnalysisError:
                    continue
            slope = "%.2f" % ranks.slope if ranks.slope is not None else "-"
            result.rows.append([
                name, kind, str(ranks.n_items), str(int(ranks.frequencies[0])), slope,
            ])
            result.series["%s/%s" % (name, kind)] = [
                (float(rank), float(freq)) for rank, freq in ranks.as_points()[:200]
            ]
    result.notes.append("paper: slopes approximately 5/6 (0.83) for all workloads, inputs and outputs")
    return result


def figure3(traces: Dict[str, object],
            analyses: Optional[Dict[str, CharacterizationAnalyses]] = None) -> ExperimentResult:
    """Figure 3: jobs and stored bytes versus input file size."""
    return _size_profile_figure(traces, "input", "figure3", analyses)


def figure4(traces: Dict[str, object],
            analyses: Optional[Dict[str, CharacterizationAnalyses]] = None) -> ExperimentResult:
    """Figure 4: jobs and stored bytes versus output file size."""
    return _size_profile_figure(traces, "output", "figure4", analyses)


def _size_profile_figure(traces: Dict[str, object], kind: str, experiment_id: str,
                         analyses: Optional[Dict[str, CharacterizationAnalyses]]) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=experiment_id,
        title="Access patterns vs %s file size (fraction of jobs / of stored bytes)" % kind,
        headers=["Workload", "Jobs on files <= 4 GB", "Stored bytes in files <= 4 GB", "80-x rule (x%)"],
    )
    for name, trace in traces.items():
        bundle = _bundle(analyses, name)
        if bundle is not None:
            profile = bundle.get("%s_profile" % kind)
            if profile is None:
                continue
        else:
            try:
                profile = size_access_profile(trace, kind)
            except AnalysisError:
                continue
        try:
            rule = eighty_x_from_profile(profile)
        except AnalysisError:
            continue
        result.rows.append([
            name,
            "%.0f%%" % (100 * profile.jobs_below_gb_fraction),
            "%.1f%%" % (100 * profile.bytes_below_gb_fraction),
            "%.1f" % rule,
        ])
        result.series["%s/jobs_cdf" % name] = _cdf_series(profile.jobs_cdf)
        result.series["%s/stored_bytes_cdf" % name] = _cdf_series(profile.stored_bytes_cdf)
    result.notes.append(
        "paper: ~90%% of jobs access files of at most a few GB, which hold at most "
        "16%% of stored bytes; 80%% of accesses go to 1-8%% of stored bytes"
    )
    return result


def figure5(traces: Dict[str, object],
            analyses: Optional[Dict[str, CharacterizationAnalyses]] = None) -> ExperimentResult:
    """Figure 5: CDFs of input->input and output->input re-access intervals."""
    result = ExperimentResult(
        experiment_id="figure5",
        title="Data re-access interval distributions",
        headers=["Workload", "Re-accesses within 6 hours"],
    )
    for name, trace in traces.items():
        bundle = _bundle(analyses, name)
        if bundle is not None:
            intervals = bundle.get("reaccess_intervals")
            if intervals is None:
                continue
        else:
            try:
                intervals = reaccess_intervals(trace)
            except AnalysisError:
                continue
        if intervals.input_input is None and intervals.output_input is None:
            continue
        result.rows.append([name, "%.0f%%" % (100 * intervals.fraction_within_6h)])
        if intervals.input_input is not None:
            result.series["%s/input-input" % name] = _cdf_series(intervals.input_input)
        if intervals.output_input is not None:
            result.series["%s/output-input" % name] = _cdf_series(intervals.output_input)
    result.notes.append("paper: 75% of re-accesses occur within 6 hours")
    return result


def figure6(traces: Dict[str, object],
            analyses: Optional[Dict[str, CharacterizationAnalyses]] = None) -> ExperimentResult:
    """Figure 6: fraction of jobs whose input re-accesses pre-existing data."""
    result = ExperimentResult(
        experiment_id="figure6",
        title="Fraction of jobs re-accessing pre-existing input/output paths",
        headers=["Workload", "Re-access pre-existing input", "Re-access pre-existing output", "Either"],
    )
    for name, trace in traces.items():
        bundle = _bundle(analyses, name)
        if bundle is not None:
            fractions = bundle.get("reaccess_fractions")
            if fractions is None:
                continue
        else:
            try:
                fractions = reaccess_fractions(trace)
            except AnalysisError:
                continue
        result.rows.append([
            name,
            "%.0f%%" % (100 * fractions.input_reaccess),
            "%.0f%%" % (100 * fractions.output_reaccess),
            "%.0f%%" % (100 * fractions.any_reaccess),
        ])
    result.notes.append("paper: up to 78% of jobs involve data re-accesses (CC-c, CC-d, CC-e); lower elsewhere")
    return result
