"""Append-aware result cache.

Entries are keyed ``(store_uid, manifest_sequence, fingerprint)`` and hold the
fully **serialized response bytes**, so a cache hit replays the exact bytes a
cold request produced — bit-identical, by construction, without re-running any
float fold.

Invalidation is driven by the manifest sequence: every committed append bumps
it (see :mod:`repro.engine.store`), so when the daemon observes a store at a
new sequence it drops every entry of that ``store_uid`` recorded at a
*different* sequence.  Entries of other stores are untouched — the uid is part
of the key, so invalidation is exactly per-store.  Requests already in flight
against the old manifest are unaffected: they hold the old store handle (old
chunks are never rewritten) and their results are simply recorded under the
old sequence, where no future request will look them up.

The cache is a plain LRU bounded by entry count and total bytes; all methods
are thread-safe (responses are built in worker threads).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

__all__ = ["ResultCache"]

Key = Tuple[str, int, str]


class ResultCache:
    """LRU map of ``(store_uid, manifest_sequence, fingerprint) -> bytes``."""

    def __init__(self, max_entries: int = 256,
                 max_bytes: int = 256 * 1024 * 1024):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Key, bytes]" = OrderedDict()
        self._total_bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.evicted = 0

    def get(self, store_uid: Optional[str], manifest_sequence: int,
            fingerprint: str) -> Optional[bytes]:
        """The cached response bytes, or ``None`` (and a recorded miss)."""
        if store_uid is None:
            # Pre-ingest stores have no uid: identity across appends is
            # undefined, so their responses are never cached.
            with self._lock:
                self.misses += 1
            return None
        key = (store_uid, int(manifest_sequence), fingerprint)
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, store_uid: Optional[str], manifest_sequence: int,
            fingerprint: str, payload: bytes) -> None:
        if store_uid is None or len(payload) > self.max_bytes:
            return
        key = (store_uid, int(manifest_sequence), fingerprint)
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._total_bytes -= len(previous)
            self._entries[key] = payload
            self._total_bytes += len(payload)
            while (len(self._entries) > self.max_entries
                   or self._total_bytes > self.max_bytes):
                _, dropped = self._entries.popitem(last=False)
                self._total_bytes -= len(dropped)
                self.evicted += 1

    def invalidate_store(self, store_uid: str, current_sequence: int) -> int:
        """Drop every entry of ``store_uid`` not at ``current_sequence``.

        Returns the number of entries dropped.  Entries keyed by other store
        uids are never touched.
        """
        with self._lock:
            stale = [key for key in self._entries
                     if key[0] == store_uid and key[1] != int(current_sequence)]
            for key in stale:
                self._total_bytes -= len(self._entries.pop(key))
            self.invalidated += len(stale)
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._total_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "invalidated": self.invalidated,
                "evicted": self.evicted,
            }
