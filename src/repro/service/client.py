"""A thin stdlib (urllib) client for the trace-analytics daemon.

Used by the tests, the service benchmark, the CI smoke script and the
cookbook recipe — anywhere ``curl`` would be assumed otherwise.  Each call is
one HTTP request; non-2xx responses raise :class:`ServiceError` carrying the
daemon's JSON error body.
"""

from __future__ import annotations

import json
from typing import Dict, Optional
from urllib import error as urllib_error
from urllib import request as urllib_request

__all__ = ["ServiceClient", "ServiceError", "ServiceResponse"]


class ServiceError(Exception):
    """A non-2xx daemon response."""

    def __init__(self, status: int, body: Dict):
        super().__init__("HTTP %d: %s" % (status, body.get("error", body)))
        self.status = status
        self.body = body


class ServiceResponse:
    """Status + headers + body of one daemon response."""

    def __init__(self, status: int, headers: Dict[str, str], data: bytes):
        self.status = status
        self.headers = headers
        self.data = data

    @property
    def cache(self) -> Optional[str]:
        """The ``X-Repro-Cache`` disposition: ``hit``/``miss``/``coalesced``."""
        return self.headers.get("x-repro-cache")

    def json(self) -> Dict:
        return json.loads(self.data.decode("utf-8"))

    @property
    def text(self) -> str:
        return self.data.decode("utf-8")


class ServiceClient:
    """Synchronous client bound to one daemon address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 120.0):
        self.base = "http://%s:%d" % (host, port)
        self.timeout = timeout

    def request(self, method: str, path: str,
                body: Optional[Dict] = None) -> ServiceResponse:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib_request.Request(self.base + path, data=payload,
                                     headers=headers, method=method)
        try:
            with urllib_request.urlopen(req, timeout=self.timeout) as response:
                data = response.read()
                response_headers = {key.lower(): value
                                    for key, value in response.headers.items()}
                return ServiceResponse(response.status, response_headers, data)
        except urllib_error.HTTPError as exc:
            data = exc.read()
            try:
                parsed = json.loads(data.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                parsed = {"error": data.decode("utf-8", "replace")}
            raise ServiceError(exc.code, parsed)

    def get(self, path: str) -> ServiceResponse:
        return self.request("GET", path)

    def post(self, path: str, body: Optional[Dict] = None) -> ServiceResponse:
        return self.request("POST", path, body or {})

    # -- convenience wrappers ---------------------------------------------
    def healthz(self) -> Dict:
        return self.get("/healthz").json()

    def stores(self) -> Dict:
        return self.get("/v1/stores").json()

    def store_info(self, name: str) -> Dict:
        return self.get("/v1/stores/%s" % name).json()

    def characterize(self, name: str, **spec) -> ServiceResponse:
        return self.post("/v1/stores/%s/characterize" % name, spec)

    def query(self, name: str, **spec) -> ServiceResponse:
        return self.post("/v1/stores/%s/query" % name, spec)

    def replay(self, name: str, **scenario) -> ServiceResponse:
        return self.post("/v1/stores/%s/replay" % name, scenario)

    def catalog_compare(self, **spec) -> ServiceResponse:
        """Federated cross-store comparison (GET when no spec is given)."""
        if spec:
            return self.post("/v1/catalog/compare", spec)
        return self.get("/v1/catalog/compare")

    def append(self, name: str, jobs) -> Dict:
        records = [job.to_dict() if hasattr(job, "to_dict") else job
                   for job in jobs]
        return self.post("/v1/stores/%s/append" % name, {"jobs": records}).json()

    def subscribe_drift(self, name: str, threshold: float) -> Dict:
        return self.post("/v1/stores/%s/drift" % name,
                         {"threshold": threshold}).json()

    def notifications(self, clear: bool = False) -> Dict:
        return self.get("/v1/notifications%s" % ("?clear=1" if clear else "")).json()

    def metrics_text(self) -> str:
        return self.get("/metrics").text

    def metric(self, name: str) -> float:
        """Sum of one counter/gauge across label sets in ``/metrics``."""
        total = 0.0
        found = False
        for line in self.metrics_text().splitlines():
            if line.startswith("#"):
                continue
            head, _, value = line.rpartition(" ")
            if head == name or head.startswith(name + "{"):
                total += float(value)
                found = True
        if not found:
            raise KeyError("metric %r not exposed" % (name,))
        return total
