"""Background feed tailing: append fresh jobs to catalog stores as they land.

A **feed** is a growing JSONL trace file (the schema of
:func:`repro.traces.io.iter_jsonl` — one job record per line) that some
external producer appends to.  The :class:`FeedTailer` polls the file, parses
every *complete* line beyond its persisted byte offset, and commits the new
jobs to the target store with the crash-safe
:func:`~repro.engine.store.append_store` path; the offset is persisted to the
service state directory after each commit, so a daemon restart resumes
exactly where the previous run left off.  The ordering is
append-then-offset: a crash between the two re-appends the same lines on
restart (at-least-once ingest) — producers that need exactly-once semantics
should write idempotent job ids.

A line that has been started but not yet terminated with a newline is left
for the next poll — partial JSON is never parsed.  Malformed complete lines
raise :class:`~repro.errors.TraceFormatError`; the tailer records the error,
skips that poll, and retries later (the producer may still be writing).

Appends are serialized through ``append_lock`` — the daemon passes its
per-process append I/O lock so a feed poll and a concurrent
``POST /append`` to the same store never race the
read-manifest → write-manifest swap (each would otherwise write chunk
files with the same indices and the last manifest swap would silently win).
The lock only covers appends issued *by this daemon*: an externally-run
``repro engine ingest`` against a store the daemon may append to is unsafe
while the daemon is running.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional

from ..engine.store import append_store
from ..errors import ReproError, TraceFormatError
from ..traces.schema import Job

__all__ = ["FeedTailer"]


class FeedTailer:
    """Tails one JSONL feed file into one named store."""

    def __init__(self, store_name: str, feed_path: str, store_directory: str,
                 state_dir: str,
                 append_lock: Optional[threading.Lock] = None):
        self.store_name = store_name
        self.feed_path = feed_path
        self.store_directory = store_directory
        # Shared with the daemon's append endpoint so the two append paths
        # never swap the same manifest concurrently.
        self.append_lock = append_lock if append_lock is not None \
            else threading.Lock()
        self.offset_path = os.path.join(
            state_dir, "feed-%s.offset" % (store_name,))
        self.offset = self._load_offset()
        self.appended_jobs = 0
        self.polls = 0
        self.last_error: Optional[str] = None

    def _load_offset(self) -> int:
        try:
            with open(self.offset_path, "r", encoding="utf-8") as handle:
                return max(0, int(json.load(handle)["offset"]))
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return 0

    def _save_offset(self) -> None:
        temporary = self.offset_path + ".tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump({"offset": self.offset, "feed": self.feed_path}, handle)
        os.replace(temporary, self.offset_path)

    def poll(self) -> int:
        """Read complete new lines, append their jobs, persist the offset.

        Returns the number of jobs appended (0 when the feed has not grown).
        Blocking — call from a worker thread.
        """
        self.polls += 1
        try:
            size = os.path.getsize(self.feed_path)
        except OSError:
            return 0  # feed not created yet
        if size <= self.offset:
            return 0
        with open(self.feed_path, "rb") as handle:
            handle.seek(self.offset)
            payload = handle.read(size - self.offset)
        # Only parse up to the last newline: a partially written trailing
        # line stays in the feed for the next poll.
        cut = payload.rfind(b"\n")
        if cut < 0:
            return 0
        complete, consumed = payload[: cut + 1], cut + 1
        try:
            jobs = self._parse_jobs(complete)
        except ReproError as exc:
            self.last_error = str(exc)
            return 0
        if jobs:
            with self.append_lock:
                append_store(self.store_directory, jobs)
            self.appended_jobs += len(jobs)
        self.offset += consumed
        self._save_offset()
        self.last_error = None
        return len(jobs)

    @staticmethod
    def _parse_jobs(payload: bytes) -> List[Job]:
        try:
            text = payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError("feed contains invalid UTF-8: %s" % (exc,))
        jobs: List[Job] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError("feed line is not valid JSON: %s" % (exc,))
            jobs.append(Job.from_dict(record))
        return jobs

    def status(self) -> Dict:
        return {
            "store": self.store_name,
            "feed": self.feed_path,
            "offset": self.offset,
            "appended_jobs": self.appended_jobs,
            "polls": self.polls,
            "last_error": self.last_error,
        }
