"""The trace-analytics daemon: a stdlib-only asyncio HTTP/1.1 server.

``repro serve --catalog DIR`` turns the one-shot characterization CLI into a
long-lived, multi-tenant query server over a :class:`~repro.engine.catalog.StoreCatalog`
of named stores.  The request lifecycle:

1. **Normalize** the JSON body into a canonical spec
   (:mod:`repro.service.requests`) and fingerprint it.
2. **Cache lookup** on ``(store_uid, manifest_sequence, fingerprint)``
   (:mod:`repro.service.cache`).  A hit replays the exact serialized bytes of
   the cold response; the ``X-Repro-Cache`` header says which happened —
   status never leaks into the body, so cached and cold bodies are
   bit-identical.
3. On a miss, **coalesce**: identical in-flight requests share one pending
   future, and concurrent characterization requests for the same store join
   one shared scan through :class:`~repro.service.admission.SharedScanAdmission`
   — N clients, one decode.
4. Heavy work runs in a **worker thread pool**; the event loop only parses
   requests and shuttles bytes.

**Endpoints** (all request/response bodies are JSON; see ``docs/service.md``):

====== ================================== =======================================
GET    /healthz                           liveness + store names
GET    /v1/stores                         machine-readable catalog metadata
GET    /v1/stores/NAME                    one store's metadata
POST   /v1/stores/NAME/characterize       cached, shared-scan characterization
POST   /v1/stores/NAME/query              cached engine query (filter/agg/top-k)
POST   /v1/stores/NAME/replay             cached simulator replay of the store
POST   /v1/stores/NAME/append             append jobs (invalidates that store)
POST   /v1/stores/NAME/drift              subscribe to workload drift
GET    /v1/stores/NAME/drift              list that store's subscriptions
GET    /v1/catalog/compare                federated cross-store comparison
POST   /v1/catalog/compare                same, with members/pairs/suite_size
GET    /v1/notifications                  drained with ?clear=1
GET    /v1/feeds                          feed-tailer status
GET    /metrics                           Prometheus text format
====== ================================== =======================================

**Append awareness.**  The daemon observes appends three ways — its own
``append`` endpoint, the background feed tailer (:mod:`repro.service.ingest`),
and externally-run ``repro engine ingest`` (spotted because the manifest
sequence moved when a request re-opens the store).  All three funnel through
one path: drop the store's stale cache entries, bump the append counters, and
schedule the workload-drift check.  Requests already running keep their old
store handle and complete against the old manifest (committed chunks are
never rewritten).  Daemon-driven appends (endpoint + feed tailer) share one
append I/O lock; an *external* ``engine ingest`` is only safe against stores
the daemon itself never appends to — it cannot take that lock.

Every request emits one structured JSON log line (method, path, status,
duration, cache disposition) to the configured stream.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import __version__
from ..bench.rendering import ExperimentResult
from ..bench.suite import run_suite
from ..core.federation import compare_catalog
from ..engine.catalog import StoreCatalog
from ..engine.operators import execute
from ..engine.store import ChunkedTraceStore, append_store
from ..errors import AnalysisError, ReproError, TraceFormatError
from ..simulator.sweep import Scenario
from ..traces.schema import Job
from . import requests as request_specs
from .admission import SharedScanAdmission
from .cache import ResultCache
from .drift import DriftMonitor
from .ingest import FeedTailer
from .metrics import ServiceMetrics

__all__ = ["TraceAnalyticsService", "ServiceThread"]

MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_HEADER_LINES = 100

#: Directory (inside the catalog) holding daemon state: feed offsets and
#: characterization checkpoints.  Has no ``manifest.json``, so the catalog
#: scanner never mistakes it for a store.
STATE_DIR_NAME = ".service"


def _json_default(value):
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError("not JSON serializable: %r" % type(value).__name__)


def canonical_json(payload) -> bytes:
    """Deterministic JSON bytes: sorted keys, minimal separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=_json_default).encode("utf-8")


def _experiment_to_dict(result: ExperimentResult, include_series: bool) -> Dict:
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
    }
    if include_series:
        payload["series"] = {
            name: [[float(x), float(y)] for x, y in points]
            for name, points in result.series.items()
        }
    return payload


class _HTTPError(Exception):
    """An error with a dedicated HTTP status (raised inside route handlers)."""

    def __init__(self, status: int, message: str, error_type: str = "error"):
        super().__init__(message)
        self.status = status
        self.error_type = error_type


class TraceAnalyticsService:
    """The daemon: catalog + cache + admission + drift + feeds + HTTP server."""

    def __init__(self, catalog_dir, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 4, batch_window_s: float = 0.05,
                 cache_entries: int = 256,
                 feeds: Optional[Dict[str, str]] = None,
                 poll_interval_s: float = 1.0,
                 checkpoints: bool = True,
                 log_stream=None):
        self.catalog = StoreCatalog(catalog_dir)
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.state_dir = os.path.join(self.catalog.directory, STATE_DIR_NAME)
        os.makedirs(self.state_dir, exist_ok=True)
        self.metrics = ServiceMetrics()
        self.cache = ResultCache(max_entries=cache_entries)
        self.drift = DriftMonitor()
        self._pool = ThreadPoolExecutor(max_workers=max(1, workers),
                                        thread_name_prefix="repro-service")
        checkpoint_dir = None
        if checkpoints:
            checkpoint_dir = os.path.join(self.state_dir, "checkpoints")
            os.makedirs(checkpoint_dir, exist_ok=True)
        self.admission = SharedScanAdmission(self._pool, self.metrics,
                                             batch_window_s=batch_window_s,
                                             checkpoint_dir=checkpoint_dir)
        self.poll_interval_s = poll_interval_s
        self._append_lock = threading.Lock()
        self._append_io_lock = threading.Lock()
        self.tailers: List[FeedTailer] = []
        for store_name, feed_path in sorted((feeds or {}).items()):
            entry = self.catalog.entry(store_name)
            self.tailers.append(FeedTailer(store_name, feed_path,
                                           entry.directory, self.state_dir,
                                           append_lock=self._append_io_lock))
        self.log_stream = log_stream if log_stream is not None else sys.stdout
        self._last_sequence: Dict[str, int] = {}
        self._inflight: Dict[tuple, "asyncio.Future"] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._feed_task: Optional[asyncio.Task] = None
        self._stopping: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, ready_file: Optional[str] = None) -> None:
        """Bind the listening socket (and write the ready file, if asked)."""
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(self._handle_connection,
                                                  host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.tailers:
            self._feed_task = asyncio.ensure_future(self._feed_loop())
            self._feed_task.add_done_callback(self._on_feed_task_done)
        if ready_file:
            payload = {"host": self.host, "port": self.port, "pid": os.getpid()}
            temporary = ready_file + ".tmp"
            with open(temporary, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temporary, ready_file)

    @property
    def address(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def request_stop(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    async def run_until_stopped(self) -> None:
        await self._stopping.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._feed_task is not None:
            self._feed_task.cancel()
            try:
                await self._feed_task
            except asyncio.CancelledError:
                pass
            self._feed_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=True)

    async def _feed_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            for tailer in self.tailers:
                # One bad poll (malformed feed, I/O error persisting the
                # offset, corrupted store) must not kill tailing for every
                # feed: record it on the tailer and retry next interval.
                try:
                    appended = await loop.run_in_executor(self._pool, tailer.poll)
                    if appended:
                        self.metrics.increment("repro_feed_jobs_appended_total",
                                               appended, store=tailer.store_name)
                        self._observe_store(tailer.store_name)
                except ReproError as exc:
                    tailer.last_error = str(exc)
                except Exception as exc:  # noqa: BLE001 - keep the loop alive
                    tailer.last_error = "%s: %s" % (type(exc).__name__, exc)
                    self._log({"event": "feed_error",
                               "store": tailer.store_name,
                               "error": tailer.last_error})
            await asyncio.sleep(self.poll_interval_s)

    def _on_feed_task_done(self, task: "asyncio.Task") -> None:
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            # The loop above swallows per-poll failures, so getting here
            # means something unexpected; make it visible instead of letting
            # the never-awaited task hide it while /v1/feeds reports stale
            # status forever.
            self._log({"event": "feed_loop_died",
                       "error": "%s: %s" % (type(exc).__name__, exc)})

    # ------------------------------------------------------------------
    # append observation: invalidation + drift
    # ------------------------------------------------------------------
    def _observe_store(self, name: str) -> ChunkedTraceStore:
        """Open the store and react if its manifest moved since last seen.

        The reaction — invalidate that store's stale cache entries, count the
        append, schedule the drift check — is the single funnel for appends
        from the endpoint, the feed tailer, and external ``engine ingest``.
        """
        entry = self.catalog.entry(name)
        store = entry.open()
        with self._append_lock:
            last = self._last_sequence.get(name)
            changed = last is not None and last != store.manifest_sequence
            self._last_sequence[name] = store.manifest_sequence
        if changed:
            dropped = 0
            if store.store_uid is not None:
                dropped = self.cache.invalidate_store(store.store_uid,
                                                      store.manifest_sequence)
            self.metrics.increment("repro_appends_observed_total", store=name)
            self.metrics.increment("repro_cache_invalidations_total", dropped)
            if self.drift.has_subscriptions(name):
                self._schedule_drift_check(name, store)
        return store

    def _schedule_drift_check(self, name: str, store: ChunkedTraceStore) -> None:
        def check() -> None:
            try:
                fired = self.drift.check_store(name, store)
            except ReproError as exc:
                self._log({"event": "drift_error", "store": name,
                           "error": str(exc)})
                return
            if fired:
                self.metrics.increment("repro_drift_notifications_total",
                                       len(fired), store=name)
                self._log({"event": "drift", "store": name,
                           "notifications": fired})

        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            loop = None
        if loop is not None:
            loop.run_in_executor(self._pool, check)
        else:
            # Called from a worker thread (feed poll): run inline.
            check()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        started = time.time()
        method = path = "-"
        status = 500
        cache_state = "-"
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, target, _ = request_line.decode("latin-1").split(" ", 2)
            except ValueError:
                await self._write_response(writer, 400, b'{"error":"bad request line"}')
                status = 400
                return
            headers: Dict[str, str] = {}
            for _ in range(MAX_HEADER_LINES):
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            raw_length = headers.get("content-length", "").strip()
            try:
                length = int(raw_length) if raw_length else 0
            except ValueError:
                raise _HTTPError(400, "invalid Content-Length: %r" % raw_length)
            if length < 0:
                raise _HTTPError(400, "negative Content-Length: %d" % length)
            if length > MAX_BODY_BYTES:
                await self._write_response(writer, 413, b'{"error":"body too large"}')
                status = 413
                return
            raw_body = await reader.readexactly(length) if length else b""
            path, _, query_string = target.partition("?")
            body = None
            if raw_body:
                try:
                    body = json.loads(raw_body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise _HTTPError(400, "request body is not valid JSON: %s" % exc)
            status, payload, content_type, cache_state = await self._route(
                method.upper(), path, query_string, body)
            await self._write_response(writer, status, payload, content_type,
                                       cache_state)
        except _HTTPError as exc:
            status = exc.status
            payload = canonical_json({"error": str(exc), "type": exc.error_type})
            await self._write_response(writer, status, payload)
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            status = 499  # client went away
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            status = 500
            try:
                await self._write_response(writer, 500, canonical_json(
                    {"error": str(exc), "type": type(exc).__name__}))
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self.metrics.increment("repro_requests_total",
                                   endpoint=self._endpoint_label(method, path),
                                   status=str(status))
            self.metrics.observe_latency(self._endpoint_label(method, path),
                                         time.time() - started)
            self._log({"event": "request", "method": method, "path": path,
                       "status": status, "cache": cache_state,
                       "duration_ms": round(1000 * (time.time() - started), 3)})

    @staticmethod
    def _endpoint_label(method: str, path: str) -> str:
        parts = [part for part in path.split("/") if part]
        if len(parts) >= 3 and parts[:2] == ["v1", "stores"]:
            action = parts[3] if len(parts) >= 4 else "info"
            return "%s /v1/stores/{name}/%s" % (method, action)
        return "%s %s" % (method, path or "/")

    async def _write_response(self, writer: asyncio.StreamWriter, status: int,
                              payload: bytes,
                              content_type: str = "application/json",
                              cache_state: str = "-") -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  500: "Internal Server Error"}.get(status, "Status")
        head = ["HTTP/1.1 %d %s" % (status, reason),
                "Content-Type: %s" % content_type,
                "Content-Length: %d" % len(payload),
                "X-Repro-Version: %s" % __version__,
                "Connection: close"]
        if cache_state != "-":
            head.append("X-Repro-Cache: %s" % cache_state)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    def _log(self, record: Dict) -> None:
        record = dict(record, time=round(time.time(), 3))
        try:
            self.log_stream.write(json.dumps(record, sort_keys=True,
                                             default=_json_default) + "\n")
            self.log_stream.flush()
        except (ValueError, OSError):
            pass  # stream closed during shutdown

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str, query_string: str,
                     body) -> Tuple[int, bytes, str, str]:
        parts = [part for part in path.split("/") if part]
        if path == "/healthz" and method == "GET":
            return 200, canonical_json({"status": "ok", "version": __version__,
                                        "stores": self.catalog.names()}), \
                "application/json", "-"
        if path == "/metrics" and method == "GET":
            cache = self.cache.stats()
            text = self.metrics.render(extra_gauges={
                "repro_cache_entries": cache["entries"],
                "repro_cache_bytes": cache["bytes"],
                "repro_cache_hits_total": cache["hits"],
                "repro_cache_misses_total": cache["misses"],
            })
            return 200, text.encode("utf-8"), "text/plain; version=0.0.4", "-"
        if path == "/v1/notifications" and method == "GET":
            clear = "clear=1" in query_string or "clear=true" in query_string
            return 200, canonical_json(
                {"notifications": self.drift.notifications(clear=clear)}), \
                "application/json", "-"
        if path == "/v1/feeds" and method == "GET":
            return 200, canonical_json(
                {"feeds": [tailer.status() for tailer in self.tailers]}), \
                "application/json", "-"
        if parts == ["v1", "catalog", "compare"]:
            if method not in ("GET", "POST"):
                raise _HTTPError(405, "no route for %s on catalog compare"
                                 % method, "not_found")
            try:
                spec = request_specs.normalize_catalog_compare(body)
                payload, cache_state = await self._cached_catalog_compare(spec)
            except _HTTPError:
                raise
            except TraceFormatError as exc:
                if "has no store named" in str(exc):
                    raise _HTTPError(404, str(exc), "unknown_store")
                raise _HTTPError(400, str(exc), type(exc).__name__)
            except ReproError as exc:
                raise _HTTPError(400, str(exc), type(exc).__name__)
            return 200, payload, "application/json", cache_state
        if parts[:2] == ["v1", "stores"] and len(parts) == 2 and method == "GET":
            self.catalog.refresh()
            return 200, canonical_json({"stores": self.catalog.info()}), \
                "application/json", "-"
        if parts[:2] == ["v1", "stores"] and len(parts) in (3, 4):
            name = parts[2]
            action = parts[3] if len(parts) == 4 else None
            return await self._route_store(method, name, action, body)
        raise _HTTPError(404, "no route for %s %s" % (method, path), "not_found")

    async def _route_store(self, method: str, name: str, action: Optional[str],
                           body) -> Tuple[int, bytes, str, str]:
        try:
            if action is None and method == "GET":
                store = self._observe_store(name)
                info = store.info()
                info["catalog_name"] = name
                return 200, canonical_json(info), "application/json", "-"
            if action == "characterize" and method == "POST":
                spec = request_specs.normalize_characterize(body)
                payload, state = await self._cached(name, "characterize", spec,
                                                    self._build_characterize)
                return 200, payload, "application/json", state
            if action == "query" and method == "POST":
                spec = request_specs.normalize_query(body)
                payload, state = await self._cached(name, "query", spec,
                                                    self._build_query_response)
                return 200, payload, "application/json", state
            if action == "replay" and method == "POST":
                spec = request_specs.normalize_replay(body)
                payload, state = await self._cached(name, "replay", spec,
                                                    self._build_replay)
                return 200, payload, "application/json", state
            if action == "append" and method == "POST":
                return await self._handle_append(name, body)
            if action == "drift" and method == "POST":
                return await self._handle_drift_subscribe(name, body)
            if action == "drift" and method == "GET":
                self.catalog.entry(name)  # 404 for unknown stores
                subs = [sub.to_dict() for sub in self.drift.subscriptions(name)]
                return 200, canonical_json({"subscriptions": subs}), \
                    "application/json", "-"
        except _HTTPError:
            raise
        except TraceFormatError as exc:
            if "has no store named" in str(exc):
                raise _HTTPError(404, str(exc), "unknown_store")
            raise _HTTPError(400, str(exc), type(exc).__name__)
        except ReproError as exc:
            raise _HTTPError(400, str(exc), type(exc).__name__)
        raise _HTTPError(405 if action in ("characterize", "query", "replay",
                                           "append", "drift") else 404,
                         "no route for %s on %r" % (method, action),
                         "not_found")

    # ------------------------------------------------------------------
    # cached POST endpoints
    # ------------------------------------------------------------------
    async def _cached(self, name: str, kind: str, spec: Dict,
                      builder) -> Tuple[bytes, str]:
        """Cache lookup → in-flight coalescing → build (and fill the cache)."""
        store = self._observe_store(name)
        fingerprint = request_specs.fingerprint(kind, spec)
        cached = self.cache.get(store.store_uid, store.manifest_sequence,
                                fingerprint)
        if cached is not None:
            self.metrics.increment("repro_cache_hits_total", endpoint=kind)
            return cached, "hit"
        self.metrics.increment("repro_cache_misses_total", endpoint=kind)
        key = (store.store_uid or store.directory, store.manifest_sequence,
               fingerprint)
        pending = self._inflight.get(key)
        if pending is not None:
            payload = await asyncio.shield(pending)
            return payload, "coalesced"
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        try:
            payload = await builder(name, store, spec)
            if not future.done():
                future.set_result(payload)
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Coalesced waiters consume the exception; nobody else will.
                future.exception()
            raise
        finally:
            self._inflight.pop(key, None)
        self.cache.put(store.store_uid, store.manifest_sequence, fingerprint,
                       payload)
        return payload, "miss"

    async def _cached_catalog_compare(self, spec: Dict) -> Tuple[bytes, str]:
        """Catalog-compare cache: every member's manifest version keys it.

        The per-store cache keys entries by one store's ``(uid, sequence)``;
        a federated response depends on *every* member, so each member's
        ``(name, uid, sequence)`` triple is folded into the fingerprint and
        the entry lives under a synthetic catalog uid.  An append to any
        member changes the fingerprint, so stale entries are never hit again
        (they simply age out of the LRU).
        """
        self.catalog.refresh()
        names = (spec["members"] if spec["members"] is not None
                 else self.catalog.names())
        if len(names) < 2:
            # Checked before any member is profiled (the same check inside
            # compare_catalog would only fire after the scans).
            raise AnalysisError(
                "federated comparison needs at least two member stores "
                "(catalog %s has %d)" % (self.catalog.directory, len(names)))
        stores = {name: self._observe_store(name) for name in names}
        versions = [[name, stores[name].store_uid or stores[name].directory,
                     stores[name].manifest_sequence] for name in names]
        fingerprint = request_specs.fingerprint("catalog_compare",
                                                dict(spec, versions=versions))
        cache_uid = "catalog:%s" % self.catalog.directory
        cached = self.cache.get(cache_uid, 0, fingerprint)
        if cached is not None:
            self.metrics.increment("repro_cache_hits_total",
                                   endpoint="catalog_compare")
            return cached, "hit"
        self.metrics.increment("repro_cache_misses_total",
                               endpoint="catalog_compare")
        key = (cache_uid, 0, fingerprint)
        pending = self._inflight.get(key)
        if pending is not None:
            payload = await asyncio.shield(pending)
            return payload, "coalesced"
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        try:
            payload = await self._build_catalog_compare(spec, names, stores)
            if not future.done():
                future.set_result(payload)
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Coalesced waiters consume the exception; nobody else will.
                future.exception()
            raise
        finally:
            self._inflight.pop(key, None)
        self.cache.put(cache_uid, 0, fingerprint, payload)
        return payload, "miss"

    async def _build_catalog_compare(self, spec: Dict, names: List[str],
                                     stores: Dict[str, ChunkedTraceStore]) -> bytes:
        threshold = spec["small_job_threshold_bytes"]
        # Every member profile rides shared-scan admission: concurrent
        # comparisons touching the same member coalesce onto one scan, and
        # the members of one comparison profile concurrently across the pool.
        profiles = await asyncio.gather(*[
            self.admission.profiled(name, stores[name], threshold)
            for name in names])
        profiles = dict(zip(names, profiles))
        loop = asyncio.get_running_loop()

        def build() -> bytes:
            report = compare_catalog(
                self.catalog, members=list(names),
                pairs=([tuple(pair) for pair in spec["pairs"]]
                       if spec["pairs"] else None),
                suite_size=spec["suite_size"],
                small_job_threshold_bytes=threshold,
                profiles=profiles)
            payload = report.to_dict()
            payload["members_versions"] = [
                {"name": name, "store_uid": stores[name].store_uid,
                 "manifest_sequence": stores[name].manifest_sequence}
                for name in names]
            return canonical_json(payload)

        return await loop.run_in_executor(self._pool, build)

    async def _build_characterize(self, name: str, store: ChunkedTraceStore,
                                  spec: Dict) -> bytes:
        bundle = await self.admission.characterized(name, store,
                                                    spec["experiments"],
                                                    spec["seed"])
        loop = asyncio.get_running_loop()

        def build() -> bytes:
            results = run_suite(seed=spec["seed"], traces={name: store},
                                experiments=list(spec["experiments"]),
                                include_ablations=False,
                                include_simulation=False,
                                analyses={name: bundle})
            return canonical_json({
                "store": name,
                "store_uid": store.store_uid,
                "manifest_sequence": store.manifest_sequence,
                "n_jobs": len(store),
                "seed": spec["seed"],
                "experiments": list(spec["experiments"]),
                "results": [_experiment_to_dict(result, spec["series"])
                            for result in results],
            })

        return await loop.run_in_executor(self._pool, build)

    async def _build_query_response(self, name: str, store: ChunkedTraceStore,
                                    spec: Dict) -> bytes:
        loop = asyncio.get_running_loop()

        def build() -> bytes:
            query = request_specs.build_query(spec)
            result = execute(store, query)
            self.metrics.increment("repro_rows_scanned_total", result.rows_scanned)
            self.metrics.increment("repro_chunks_scanned_total", result.chunks_scanned)
            plan = result.plan
            if plan is not None and plan.used_index:
                self.metrics.increment("repro_index_probes_total")
            else:
                self.metrics.increment("repro_full_scans_total")
            payload = {
                "store": name,
                "store_uid": store.store_uid,
                "manifest_sequence": store.manifest_sequence,
                "stats": {
                    "rows_scanned": result.rows_scanned,
                    "chunks_scanned": result.chunks_scanned,
                    "chunks_skipped": result.chunks_skipped,
                    "rows_matched": result.rows_matched,
                    "plan": plan.to_dict() if plan is not None else None,
                },
            }
            if result.aggregates is not None:
                payload["aggregates"] = result.aggregates
            elif result.groups is not None:
                payload["groups"] = {str(key if key != "" else "(missing)"): value
                                     for key, value in result.groups.items()}
            else:
                payload["rows"] = result.row_dicts()
            return canonical_json(payload)

        return await loop.run_in_executor(self._pool, build)

    async def _build_replay(self, name: str, store: ChunkedTraceStore,
                            spec: Dict) -> bytes:
        loop = asyncio.get_running_loop()

        def build() -> bytes:
            scenario = Scenario.from_dict(dict(spec))
            metrics = scenario.build_replayer().replay_store(store)
            # shards/shard_mode travel inside the scenario dict; surfacing the
            # digest lets clients check exact-mode shard counts agree without
            # re-replaying (exact digests are shard-count invariant).
            return canonical_json({
                "store": name,
                "store_uid": store.store_uid,
                "manifest_sequence": store.manifest_sequence,
                "scenario": scenario.to_dict(),
                "shards": scenario.shards,
                "summary": metrics.summary(),
                "digest": metrics.digest(),
            })

        return await loop.run_in_executor(self._pool, build)

    # ------------------------------------------------------------------
    # mutating endpoints
    # ------------------------------------------------------------------
    async def _handle_append(self, name: str, body) -> Tuple[int, bytes, str, str]:
        if not isinstance(body, dict) or not isinstance(body.get("jobs"), list):
            raise _HTTPError(400, 'append request body must be {"jobs": [...]}')
        entry = self.catalog.entry(name)
        records = body["jobs"]
        loop = asyncio.get_running_loop()

        def do_append() -> int:
            # Parse off the event loop too: a 64MB body of job records would
            # otherwise stall every other connection.
            jobs = []
            for index, record in enumerate(records):
                if not isinstance(record, dict):
                    raise _HTTPError(
                        400, "jobs[%d] must be an object, got %s"
                        % (index, type(record).__name__))
                jobs.append(Job.from_dict(record))
            # One manifest swap at a time per daemon: concurrent appends to
            # the same store (endpoint or feed tailer) would race
            # read-manifest -> write-manifest.
            with self._append_io_lock:
                append_store(entry.directory, jobs)
            return len(jobs)

        appended = await loop.run_in_executor(self._pool, do_append)
        store = self._observe_store(name)
        return 200, canonical_json({
            "store": name,
            "appended": appended,
            "n_jobs": len(store),
            "manifest_sequence": store.manifest_sequence,
        }), "application/json", "-"

    async def _handle_drift_subscribe(self, name: str,
                                      body) -> Tuple[int, bytes, str, str]:
        body = body or {}
        if not isinstance(body, dict) or "threshold" not in body:
            raise _HTTPError(400, 'drift request body must be {"threshold": X}')
        store = self._observe_store(name)
        loop = asyncio.get_running_loop()
        subscription = await loop.run_in_executor(
            self._pool, self.drift.subscribe, name, store, body["threshold"])
        return 200, canonical_json({"subscription": subscription.to_dict()}), \
            "application/json", "-"


class ServiceThread:
    """Run a :class:`TraceAnalyticsService` on a background thread.

    For tests and in-process benchmarking::

        with ServiceThread(catalog_dir) as service:
            client = ServiceClient(port=service.port)
            ...

    The thread owns its own event loop; ``stop()`` (or leaving the ``with``
    block) shuts the daemon down and joins the thread.
    """

    def __init__(self, catalog_dir, **kwargs):
        self._kwargs = dict(kwargs, catalog_dir=catalog_dir)
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service-thread")
        self.service: Optional[TraceAnalyticsService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.service is None:
            raise RuntimeError("service thread failed to start")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            service = TraceAnalyticsService(**self._kwargs)
            loop.run_until_complete(service.start())
            self.service = service
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_until_complete(service.run_until_stopped())
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def address(self) -> str:
        return self.service.address

    def stop(self) -> None:
        if self.service is not None and self._loop is not None:
            self._loop.call_soon_threadsafe(self.service.request_stop)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
