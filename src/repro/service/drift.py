"""Workload-drift subscriptions: re-compare features on append, notify on drift.

A subscription snapshots the store's :func:`~repro.core.comparison.workload_features`
vector as its **baseline**.  Whenever the daemon observes the store at a new
manifest sequence (an append landed — via the feed tailer, the ``append``
endpoint, or an external ``repro engine ingest``), the features are recomputed
over the grown store and compared to the baseline with
:func:`~repro.core.comparison.workload_distance` (raw feature vectors — a
per-subscription absolute scale, so thresholds mean the same thing on every
check).

A notification is recorded on each **upward threshold crossing** — the
distance moved from below the threshold to at-or-above it — not on every
check above the threshold, so a persistently drifted workload produces one
notification until it recovers and crosses again.  Notifications accumulate
until a client drains them via ``GET /v1/notifications``.

This is §7 of the paper made operational: workload evolution is the reason
the paper argues for continuous re-characterization, and the drift distance
is exactly the cross-workload comparison metric of ``core/comparison.py``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from ..core.comparison import WorkloadFeatures, workload_distance, workload_features
from ..errors import AnalysisError

__all__ = ["DriftSubscription", "DriftMonitor"]


class DriftSubscription:
    """One threshold watch on one store."""

    def __init__(self, subscription_id: int, store_name: str, threshold: float,
                 baseline: WorkloadFeatures, baseline_sequence: int):
        self.subscription_id = subscription_id
        self.store_name = store_name
        self.threshold = threshold
        self.baseline = baseline
        self.baseline_sequence = baseline_sequence
        self.last_distance = 0.0
        self.last_checked_sequence = baseline_sequence
        self.fired = 0

    def to_dict(self) -> Dict:
        return {
            "subscription_id": self.subscription_id,
            "store": self.store_name,
            "threshold": self.threshold,
            "baseline_sequence": self.baseline_sequence,
            "baseline_features": dict(self.baseline.values),
            "last_distance": self.last_distance,
            "last_checked_sequence": self.last_checked_sequence,
            "fired": self.fired,
        }


class DriftMonitor:
    """Holds subscriptions and notifications; checks run in worker threads."""

    def __init__(self):
        self._lock = threading.Lock()
        self._subscriptions: Dict[int, DriftSubscription] = {}
        self._notifications: List[Dict] = []
        self._next_id = 1
        # Serializes check_store per store: checks are scheduled from both
        # the event loop and feed-poll threads, and overlapping checks would
        # duplicate the full-store feature scan and could apply an older
        # sequence's results last.
        self._check_locks: Dict[str, threading.Lock] = {}

    def _check_lock(self, store_name: str) -> threading.Lock:
        with self._lock:
            lock = self._check_locks.get(store_name)
            if lock is None:
                lock = self._check_locks[store_name] = threading.Lock()
            return lock

    # -- subscriptions -----------------------------------------------------
    def subscribe(self, store_name: str, store, threshold: float) -> DriftSubscription:
        """Create a subscription with the store's current features as baseline.

        Raises:
            AnalysisError: for a non-positive threshold or an empty store.
        """
        if not (isinstance(threshold, (int, float)) and threshold > 0):
            raise AnalysisError("drift threshold must be a positive number, got %r"
                                % (threshold,))
        baseline = workload_features(store)
        with self._lock:
            subscription = DriftSubscription(
                self._next_id, store_name, float(threshold), baseline,
                store.manifest_sequence)
            self._subscriptions[subscription.subscription_id] = subscription
            self._next_id += 1
        return subscription

    def subscriptions(self, store_name: Optional[str] = None) -> List[DriftSubscription]:
        with self._lock:
            subs = list(self._subscriptions.values())
        if store_name is not None:
            subs = [sub for sub in subs if sub.store_name == store_name]
        return subs

    def has_subscriptions(self, store_name: str) -> bool:
        with self._lock:
            return any(sub.store_name == store_name
                       for sub in self._subscriptions.values())

    # -- checks (blocking; call from a worker thread) ----------------------
    def check_store(self, store_name: str, store) -> List[Dict]:
        """Recompute features once and update every subscription on the store.

        Checks for the same store are serialized (one feature scan at a
        time), and a check never moves a subscription's state backwards: a
        subscription already checked at a newer manifest sequence is left
        alone, so a stale check can neither duplicate nor suppress a
        threshold-crossing notification.

        Returns the notifications recorded by this check.
        """
        with self._check_lock(store_name):
            return self._check_store_locked(store_name, store)

    def _check_store_locked(self, store_name: str, store) -> List[Dict]:
        subs = self.subscriptions(store_name)
        subs = [sub for sub in subs
                if sub.last_checked_sequence < store.manifest_sequence]
        if not subs:
            return []
        current = workload_features(store)
        fired: List[Dict] = []
        with self._lock:
            for sub in subs:
                if sub.last_checked_sequence >= store.manifest_sequence:
                    continue  # a newer check finished while we scanned
                distance = workload_distance(sub.baseline, current)
                crossed = (sub.last_distance < sub.threshold <= distance)
                sub.last_distance = distance
                sub.last_checked_sequence = store.manifest_sequence
                if crossed:
                    sub.fired += 1
                    notification = {
                        "subscription_id": sub.subscription_id,
                        "store": store_name,
                        "distance": distance,
                        "threshold": sub.threshold,
                        "manifest_sequence": store.manifest_sequence,
                        "n_jobs": len(store),
                        "time": time.time(),
                    }
                    self._notifications.append(notification)
                    fired.append(notification)
        return fired

    # -- notifications -----------------------------------------------------
    def notifications(self, clear: bool = False) -> List[Dict]:
        with self._lock:
            pending = list(self._notifications)
            if clear:
                self._notifications.clear()
        return pending
