"""Request specs: normalization, fingerprints, and the JSON→Query builder.

Every cacheable service request is normalized into a canonical spec dict
(defaults filled in, lists deduplicated/ordered) before anything else happens.
The canonical spec has two jobs:

* it is the unit of **equality** — two requests that mean the same thing
  normalize to the same spec, hash to the same :func:`fingerprint`, and
  therefore share one cache entry and one in-flight computation;
* it is the unit of **validation** — unknown fields, unknown experiment ids
  and malformed clauses are rejected here with :class:`AnalysisError` before
  any scan is admitted.

The cache key is ``(store_uid, manifest_sequence, fingerprint)``: the
fingerprint deliberately excludes store identity (that is the key's job) and
includes everything that changes the bytes of the response — the experiment
list, the seed (the Table-2 subsample is seed-dependent), and the
series/top-k/aggregate shapes.

:func:`build_query` turns the ``query`` spec into an engine
:class:`~repro.engine.operators.Query`; the ``repro engine query`` CLI builds
the same spec from its flags and calls the same function, so the two surfaces
cannot drift.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Tuple

from ..bench.suite import CHARACTERIZATION_EXPERIMENT_IDS
from ..core.profile import DEFAULT_SMALL_JOB_THRESHOLD_BYTES
from ..engine import Query, parse_aggregate_spec
from ..errors import AnalysisError, SimulationError
from ..simulator.sharded import SHARD_MODES
from ..simulator.sweep import Scenario

__all__ = ["normalize_characterize", "normalize_catalog_compare",
           "normalize_query", "normalize_replay",
           "build_query", "parse_where", "fingerprint"]


def fingerprint(kind: str, spec: Dict) -> str:
    """sha256 of the canonical JSON encoding of one normalized request spec."""
    canonical = json.dumps({"kind": kind, "spec": spec},
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _reject_unknown(body: Dict, allowed: Tuple[str, ...], kind: str) -> None:
    if not isinstance(body, dict):
        raise AnalysisError("%s request body must be a JSON object, got %s"
                            % (kind, type(body).__name__))
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise AnalysisError("unknown %s request fields %s (allowed: %s)"
                            % (kind, unknown, ", ".join(allowed)))


def normalize_characterize(body: Optional[Dict]) -> Dict:
    """Canonical characterization spec: ``{experiments, seed, series}``.

    ``experiments`` defaults to the full characterization set and is
    re-ordered into suite (report) order, so ``["figure1", "table1"]`` and
    ``["table1", "figure1"]`` are the same request.
    """
    body = body or {}
    _reject_unknown(body, ("experiments", "seed", "series"), "characterize")
    experiments = body.get("experiments")
    if experiments is None:
        experiments = list(CHARACTERIZATION_EXPERIMENT_IDS)
    else:
        if isinstance(experiments, str):
            experiments = [experiments]
        unknown = sorted(set(experiments) - set(CHARACTERIZATION_EXPERIMENT_IDS))
        if unknown:
            raise AnalysisError(
                "unknown characterization experiments %s (known: %s)"
                % (unknown, ", ".join(CHARACTERIZATION_EXPERIMENT_IDS)))
        experiments = [experiment for experiment in CHARACTERIZATION_EXPERIMENT_IDS
                       if experiment in set(experiments)]
        if not experiments:
            raise AnalysisError("characterize request selects no experiments")
    try:
        seed = int(body.get("seed", 0))
    except (TypeError, ValueError):
        raise AnalysisError("characterize seed must be an integer, got %r"
                            % (body.get("seed"),))
    return {"experiments": experiments, "seed": seed,
            "series": bool(body.get("series", False))}


def normalize_catalog_compare(body: Optional[Dict]) -> Dict:
    """Canonical federated-comparison spec over the whole catalog.

    ``members`` is sorted — member order never changes the comparison
    (distances are symmetric and suite selection is permutation-invariant) —
    so two requests naming the same stores share one cache entry.  ``pairs``
    keep their order and direction: per-feature deltas are ``B - A``.
    """
    body = body or {}
    _reject_unknown(body, ("members", "pairs", "suite_size",
                           "small_job_threshold_bytes"), "catalog compare")
    members = body.get("members")
    if members is not None:
        if isinstance(members, str):
            members = [members]
        members = [str(name) for name in members]
        if len(set(members)) != len(members):
            raise AnalysisError("catalog compare members repeat a name: %s"
                                % (sorted(members),))
        members = sorted(members)
    pairs = body.get("pairs")
    if pairs is not None:
        if isinstance(pairs, str):
            pairs = [pairs]
        normalized = []
        for pair in pairs:
            if isinstance(pair, str):
                a, separator, b = pair.partition(",")
                pair = [a.strip(), b.strip()] if separator else [a]
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise AnalysisError(
                    "catalog compare pairs must be [A, B] pairs "
                    "(or \"A,B\" strings), got %r" % (pair,))
            normalized.append([str(pair[0]), str(pair[1])])
        pairs = normalized
    suite_size = body.get("suite_size")
    if suite_size is not None:
        try:
            suite_size = int(suite_size)
        except (TypeError, ValueError):
            raise AnalysisError("suite_size must be an integer, got %r"
                                % (body.get("suite_size"),))
        if suite_size < 1:
            raise AnalysisError("suite_size must be at least 1, got %d"
                                % suite_size)
    threshold = body.get("small_job_threshold_bytes",
                         DEFAULT_SMALL_JOB_THRESHOLD_BYTES)
    try:
        threshold = float(threshold)
    except (TypeError, ValueError):
        raise AnalysisError("small_job_threshold_bytes must be a number, got %r"
                            % (body.get("small_job_threshold_bytes"),))
    if not threshold > 0:
        raise AnalysisError("small_job_threshold_bytes must be positive, got %r"
                            % (threshold,))
    return {"members": members, "pairs": pairs, "suite_size": suite_size,
            "small_job_threshold_bytes": threshold}


def normalize_query(body: Optional[Dict]) -> Dict:
    """Canonical engine-query spec (validated by building the Query once)."""
    body = body or {}
    _reject_unknown(body, ("where", "agg", "group_by", "top_k", "limit",
                           "columns"), "query")
    where = body.get("where") or []
    if isinstance(where, str):
        where = [where]
    agg = body.get("agg") or []
    if isinstance(agg, str):
        agg = [agg]
    limit = body.get("limit")
    if limit is not None:
        try:
            limit = int(limit)
        except (TypeError, ValueError):
            raise AnalysisError("query limit must be an integer, got %r" % (limit,))
    spec = {
        "where": [str(clause) for clause in where],
        "agg": [str(item) for item in agg],
        "group_by": body.get("group_by"),
        "top_k": body.get("top_k"),
        "limit": limit,
        "columns": list(body["columns"]) if body.get("columns") else None,
    }
    build_query(spec)  # validate clauses before the spec is admitted/cached
    return spec


def normalize_replay(body: Optional[Dict]) -> Dict:
    """Canonical replay spec: a full :class:`Scenario` dict (defaults filled)."""
    body = body or {}
    if "scenario" in body:
        _reject_unknown(body, ("scenario",), "replay")
        body = body["scenario"]
    try:
        scenario = Scenario.from_dict(dict(body, name=body.get("name", "service")))
    except TypeError as exc:
        raise SimulationError("bad replay scenario: %s" % (exc,))
    # Shard fields are validated here, not at build time, so a bad request
    # comes back as a 400 instead of failing inside the replay executor.
    if not isinstance(scenario.shards, int) or scenario.shards < 0:
        raise SimulationError("shards must be a non-negative integer, got %r"
                              % (scenario.shards,))
    if scenario.shard_mode not in SHARD_MODES:
        raise SimulationError("unknown shard_mode %r (choose from %s)"
                              % (scenario.shard_mode, "/".join(SHARD_MODES)))
    return scenario.to_dict()


def parse_where(text: str) -> Tuple[str, str, Optional[str]]:
    """Parse a ``where`` clause: ``column OP value`` (whitespace optional)."""
    from ..engine.operators import PREDICATE_OPS

    stripped = text.strip()
    for op in ("<=", ">=", "==", "!=", "<", ">"):
        if op in stripped:
            column, value = stripped.split(op, 1)
            return column.strip(), op, value.strip()
    if stripped.endswith("finite"):
        return stripped[: -len("finite")].strip(), "finite", None
    raise AnalysisError("cannot parse where clause %r (use 'column OP value', "
                        "OP in %s)" % (text, ", ".join(PREDICATE_OPS)))


def build_query(spec: Dict) -> Query:
    """Build an engine :class:`Query` from a normalized query spec.

    The ``repro engine query`` CLI and the service's ``query`` endpoint both
    call this, so clause syntax and validation are identical on both surfaces.
    """
    query = Query()
    for clause in spec.get("where") or []:
        column, op, value = parse_where(clause)
        if op != "finite":
            try:
                value = float(value)
            except ValueError:
                pass  # string comparison (e.g. framework == hive)
        query = query.filter(column, op, value)
    top_k = spec.get("top_k")
    limit = spec.get("limit")
    agg = spec.get("agg") or []
    group_by = spec.get("group_by")
    columns = spec.get("columns")
    if (top_k or limit is not None) and (agg or group_by):
        raise AnalysisError("top_k/limit return rows and cannot be combined "
                            "with agg or group_by")
    if top_k:
        column, _, k = str(top_k).rpartition(":")
        try:
            count = int(k)
        except ValueError:
            column = ""
        if not column:
            raise AnalysisError("top_k must look like column:K, got %r" % (top_k,))
        query = query.top(column, count)
        if columns:
            query = query.project(columns)
        return query
    if limit is not None:
        query = query.limit(limit)
        if columns:
            query = query.project(columns)
        return query
    for item in agg or ["count"]:
        label, op, column = parse_aggregate_spec(item)
        if op == "count" and column == "submit_time_s":
            query = query.count(label)
        else:
            query = query.aggregate(**{label: (op, column)})
    if group_by:
        query = query.group_by(group_by)
    return query
