"""Shared-scan admission: concurrent characterization requests ride one scan.

The scan is the expensive part of a characterization request — decoding every
chunk of the store.  The admission scheduler exploits the shared-scan pipeline
(:func:`repro.core.sharedscan.run_characterization_scan`): requests arriving
within one **batch window** for the same ``(store_uid, manifest_sequence,
seed)`` are merged into a single batch whose experiment set is the union of
the requests', and exactly one pipeline pass computes the union's consumer
bundle.  Every rider then builds its own response from the shared
:class:`~repro.core.sharedscan.CharacterizationAnalyses`.

The batch key pins the manifest sequence, so a request admitted before an
append and one admitted after it can never share a scan: the earlier batch
completes against the old manifest (old chunks are never rewritten), the
later one scans the grown store.  The seed is in the key because the Table-2
subsample is seed-dependent.

Scans run in a worker pool (the event loop stays responsive) and are
**checkpointed** per ``(store name, seed)`` under the service state directory:
a later scan of the same store resumes its resumable consumers from the
checkpoint and folds only the appended chunks — the incremental
characterization path of PR 5, now applied automatically between requests.
"""

from __future__ import annotations

import asyncio
import os
import threading
from typing import Dict, Optional, Sequence, Set, Tuple

from ..core.profile import WorkloadProfile, profile_source
from ..core.sharedscan import CharacterizationAnalyses, run_characterization_scan
from ..engine.store import ChunkedTraceStore
from ..errors import AnalysisError
from .metrics import ServiceMetrics

__all__ = ["SharedScanAdmission"]

BatchKey = Tuple[str, int, int]
ProfileKey = Tuple[str, int, float]


class _ScanBatch:
    """One pending shared scan: union of experiments + a shared future."""

    def __init__(self, future: "asyncio.Future"):
        self.experiments: Set[str] = set()
        self.future = future
        self.riders = 0
        self.closed = False


class SharedScanAdmission:
    """Batches characterization scans per (store uid, sequence, seed)."""

    def __init__(self, pool, metrics: ServiceMetrics,
                 batch_window_s: float = 0.05,
                 checkpoint_dir: Optional[str] = None):
        self._pool = pool
        self.metrics = metrics
        self.batch_window_s = batch_window_s
        self.checkpoint_dir = checkpoint_dir
        self._batches: Dict[BatchKey, _ScanBatch] = {}
        self._profiles: Dict[ProfileKey, "asyncio.Future"] = {}
        self._checkpoint_locks: Dict[str, threading.Lock] = {}
        self._lock = threading.Lock()

    async def characterized(self, name: str, store: ChunkedTraceStore,
                            experiments: Sequence[str],
                            seed: int) -> CharacterizationAnalyses:
        """The shared-scan bundle covering ``experiments`` for this store.

        Joins the open batch for the store's current manifest when one exists
        (widening its experiment union); otherwise opens a new batch that runs
        after the batch window elapses.
        """
        loop = asyncio.get_running_loop()
        key: BatchKey = (store.store_uid or store.directory,
                         store.manifest_sequence, int(seed))
        batch = self._batches.get(key)
        if batch is not None and not batch.closed:
            batch.experiments.update(experiments)
            batch.riders += 1
            self.metrics.increment("repro_scan_requests_batched_total")
            return await asyncio.shield(batch.future)
        batch = _ScanBatch(loop.create_future())
        batch.experiments.update(experiments)
        batch.riders = 1
        self._batches[key] = batch
        asyncio.ensure_future(self._run_batch(key, batch, name, store, seed))
        return await asyncio.shield(batch.future)

    async def _run_batch(self, key: BatchKey, batch: _ScanBatch, name: str,
                         store: ChunkedTraceStore, seed: int) -> None:
        try:
            if self.batch_window_s > 0:
                await asyncio.sleep(self.batch_window_s)
        finally:
            batch.closed = True
            self._batches.pop(key, None)
        loop = asyncio.get_running_loop()
        experiments = sorted(batch.experiments)
        try:
            bundle = await loop.run_in_executor(
                self._pool, self._scan, name, store, experiments, seed)
        except Exception as exc:  # noqa: BLE001 - delivered to every rider
            if not batch.future.cancelled():
                batch.future.set_exception(exc)
            return
        if not batch.future.cancelled():
            batch.future.set_result(bundle)

    async def profiled(self, name: str, store: ChunkedTraceStore,
                       threshold: float) -> WorkloadProfile:
        """One member's workload profile, shared across concurrent requests.

        The federated comparison endpoint calls this once per member store;
        concurrent comparisons touching the same member at the same manifest
        sequence (and small-job threshold — it changes the fold) coalesce
        onto one profile scan.  Like the characterization batches, the key
        pins the manifest sequence, so a comparison admitted before an append
        never shares a scan with one admitted after it.
        """
        loop = asyncio.get_running_loop()
        key: ProfileKey = (store.store_uid or store.directory,
                           store.manifest_sequence, float(threshold))
        pending = self._profiles.get(key)
        if pending is not None:
            self.metrics.increment("repro_scan_requests_batched_total")
            return await asyncio.shield(pending)
        future = loop.create_future()
        self._profiles[key] = future
        try:
            profile = await loop.run_in_executor(
                self._pool, self._profile, name, store, threshold)
            if not future.done():
                future.set_result(profile)
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Coalesced riders consume the exception; nobody else will.
                future.exception()
            raise
        finally:
            self._profiles.pop(key, None)
        return profile

    # -- blocking side (worker pool) ---------------------------------------
    def _checkpoint_path(self, name: str, seed: int) -> Optional[str]:
        if self.checkpoint_dir is None:
            return None
        return os.path.join(self.checkpoint_dir,
                            "%s-seed%d.checkpoint.json" % (name, int(seed)))

    def _scan(self, name: str, store: ChunkedTraceStore,
              experiments: Sequence[str], seed: int) -> CharacterizationAnalyses:
        self.metrics.increment("repro_scans_started_total", store=name)
        checkpoint = self._checkpoint_path(name, seed)
        if checkpoint is None:
            bundle = run_characterization_scan(store, experiments=experiments,
                                               seed=seed)
        else:
            with self._lock:
                lock = self._checkpoint_locks.setdefault(name, threading.Lock())
            with lock:
                resume = checkpoint if os.path.isfile(checkpoint) else None
                try:
                    bundle = run_characterization_scan(
                        store, experiments=experiments, seed=seed,
                        resume_from=resume, checkpoint_to=checkpoint)
                except AnalysisError:
                    if resume is None:
                        raise
                    # Unreadable or mismatched checkpoint (store rewritten,
                    # torn file): fall back to a full scan and re-checkpoint.
                    bundle = run_characterization_scan(
                        store, experiments=experiments, seed=seed,
                        checkpoint_to=checkpoint)
        if bundle.resume is not None and bundle.resume.get("resumed"):
            self.metrics.increment("repro_scans_resumed_total", store=name)
        self.metrics.increment("repro_chunks_scanned_total", bundle.chunks_scanned)
        self.metrics.increment("repro_rows_scanned_total", bundle.rows_scanned)
        if store.n_chunks:
            info = store.info()
            self.metrics.increment(
                "repro_bytes_scanned_total",
                info["on_disk_bytes"] * bundle.chunks_scanned / store.n_chunks)
        return bundle

    def _profile_checkpoint_path(self, name: str,
                                 threshold: float) -> Optional[str]:
        if self.checkpoint_dir is None:
            return None
        # The threshold is in the filename (and the small-job fold validates
        # its checkpointed threshold on restore), so scans at different
        # thresholds never share — or clobber — resume state.
        return os.path.join(self.checkpoint_dir,
                            "%s-profile-t%d.checkpoint.json"
                            % (name, int(threshold)))

    def _profile(self, name: str, store: ChunkedTraceStore,
                 threshold: float) -> WorkloadProfile:
        self.metrics.increment("repro_scans_started_total", store=name)
        checkpoint = self._profile_checkpoint_path(name, threshold)
        if checkpoint is None:
            profile = profile_source(store, threshold, name=name)
        else:
            with self._lock:
                lock = self._checkpoint_locks.setdefault(name, threading.Lock())
            with lock:
                resume = checkpoint if os.path.isfile(checkpoint) else None
                try:
                    profile = profile_source(store, threshold, name=name,
                                             resume_from=resume,
                                             checkpoint_to=checkpoint)
                except AnalysisError:
                    if resume is None:
                        raise
                    # Unreadable or mismatched checkpoint: full scan,
                    # re-checkpoint.
                    profile = profile_source(store, threshold, name=name,
                                             checkpoint_to=checkpoint)
        if profile.resume is not None and profile.resume.get("resumed"):
            self.metrics.increment("repro_scans_resumed_total", store=name)
        self.metrics.increment("repro_chunks_scanned_total",
                               profile.chunks_scanned)
        self.metrics.increment("repro_rows_scanned_total", profile.rows_scanned)
        return profile
