"""Trace-analytics service: a multi-tenant daemon over a store catalog.

The subsystem behind ``repro serve`` — the ROADMAP's "interactive analytical
processing" goal made concrete.  A long-lived asyncio HTTP daemon
(:class:`~repro.service.server.TraceAnalyticsService`) serves named
:class:`~repro.engine.store.ChunkedTraceStore` directories from a
:class:`~repro.engine.catalog.StoreCatalog`:

* **Shared-scan admission** (:mod:`repro.service.admission`): concurrent
  characterization requests for the same store within a batch window merge
  into **one** :class:`~repro.engine.pipeline.ScanPipeline` pass — N clients,
  one decode — run in a worker pool so the event loop stays responsive.
* **Append-aware result caching** (:mod:`repro.service.cache`): responses are
  cached as serialized bytes keyed ``(store_uid, manifest_sequence, request
  fingerprint)``; a committed append bumps the sequence and invalidates
  exactly that store's entries, while in-flight requests complete against the
  manifest they were admitted on.
* **Background ingest** (:mod:`repro.service.ingest`): feed tailers follow
  growing JSONL trace files into their stores via the crash-safe append path,
  resuming from persisted byte offsets across daemon restarts.
* **Workload-drift subscriptions** (:mod:`repro.service.drift`): each append
  re-runs the §7 cross-workload comparison against a subscription baseline
  and records threshold-crossing notifications.
* **Observability** (:mod:`repro.service.metrics`): per-endpoint request
  counters and latency sketches, scan/row/byte counters, Prometheus-format
  ``/metrics``, and structured JSON request logs.

Everything is stdlib + numpy; the HTTP layer is ~200 lines of asyncio stream
handling, not a framework.
"""

from .admission import SharedScanAdmission
from .cache import ResultCache
from .client import ServiceClient, ServiceError, ServiceResponse
from .drift import DriftMonitor, DriftSubscription
from .ingest import FeedTailer
from .metrics import ServiceMetrics
from .requests import build_query, fingerprint, normalize_characterize, \
    normalize_query, normalize_replay, parse_where
from .server import ServiceThread, TraceAnalyticsService

__all__ = [
    "TraceAnalyticsService",
    "ServiceThread",
    "ServiceClient",
    "ServiceError",
    "ServiceResponse",
    "SharedScanAdmission",
    "ResultCache",
    "ServiceMetrics",
    "DriftMonitor",
    "DriftSubscription",
    "FeedTailer",
    "normalize_characterize",
    "normalize_query",
    "normalize_replay",
    "build_query",
    "parse_where",
    "fingerprint",
]
