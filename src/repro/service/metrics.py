"""Service observability: counters + latency sketches + ``/metrics`` rendering.

Counters are plain monotonic integers; request latencies feed the engine's
mergeable :class:`~repro.engine.aggregates.HistogramSketch` (log-bucketed, the
same sketch the streaming percentile analyses use), so ``/metrics`` can report
p50/p99 per endpoint without keeping per-request samples.  Everything is
guarded by one lock — requests are handled on the event loop but the heavy
work (and therefore most metric updates) happens in worker threads.

The ``/metrics`` endpoint renders the classic Prometheus text format
(``# TYPE`` comments plus ``name{label="..."} value`` lines) from stdlib
alone, so any scraper — or ``curl`` in the CI smoke job — can read it.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

import numpy as np

from ..engine.aggregates import HistogramSketch

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Thread-safe counters and per-endpoint latency sketches."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[tuple, float] = {}
        self._latencies: Dict[str, HistogramSketch] = {}
        self.started_at = time.time()

    # -- updates -----------------------------------------------------------
    def increment(self, name: str, value: float = 1.0, **labels) -> None:
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            sketch = self._latencies.get(endpoint)
            if sketch is None:
                sketch = self._latencies[endpoint] = HistogramSketch()
            sketch.update(np.array([max(0.0, seconds)], dtype=float))

    # -- reads -------------------------------------------------------------
    def counter(self, name: str, **labels) -> float:
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            return self._counters.get(key, 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all label sets."""
        with self._lock:
            return sum(value for (counter, _), value in self._counters.items()
                       if counter == name)

    def latency_percentile(self, endpoint: str, q: float) -> Optional[float]:
        with self._lock:
            sketch = self._latencies.get(endpoint)
            if sketch is None or sketch.n == 0:
                return None
            return float(sketch.percentile(q))

    def snapshot(self) -> Dict[str, float]:
        """Flat name/labels -> value mapping (for tests and the info endpoint)."""
        with self._lock:
            flat = {}
            for (name, labels), value in sorted(self._counters.items()):
                suffix = ",".join("%s=%s" % item for item in labels)
                flat["%s{%s}" % (name, suffix) if suffix else name] = value
            return flat

    # -- rendering ---------------------------------------------------------
    def render(self, extra_gauges: Optional[Dict[str, float]] = None) -> str:
        """The Prometheus text exposition of every counter and sketch."""
        lines: List[str] = []
        with self._lock:
            by_name: Dict[str, List[tuple]] = {}
            for (name, labels), value in sorted(self._counters.items()):
                by_name.setdefault(name, []).append((labels, value))
            for name, series in by_name.items():
                lines.append("# TYPE %s counter" % name)
                for labels, value in series:
                    rendered = ",".join('%s="%s"' % item for item in labels)
                    lines.append("%s%s %s" % (
                        name, "{%s}" % rendered if rendered else "",
                        _format_value(value)))
            if self._latencies:
                lines.append("# TYPE repro_request_latency_seconds summary")
                for endpoint, sketch in sorted(self._latencies.items()):
                    if sketch.n == 0:
                        continue
                    for q in (50, 95, 99):
                        lines.append(
                            'repro_request_latency_seconds{endpoint="%s",quantile="0.%d"} %s'
                            % (endpoint, q, _format_value(sketch.percentile(q))))
                    lines.append('repro_request_latency_seconds_count{endpoint="%s"} %d'
                                 % (endpoint, sketch.n))
        lines.append("# TYPE repro_service_uptime_seconds gauge")
        lines.append("repro_service_uptime_seconds %s"
                     % _format_value(time.time() - self.started_at))
        for name, value in sorted((extra_gauges or {}).items()):
            lines.append("# TYPE %s gauge" % name)
            lines.append("%s %s" % (name, _format_value(value)))
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
