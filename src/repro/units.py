"""Byte and time unit helpers.

The paper reports job dimensions spanning many orders of magnitude (bytes to
exabytes, seconds to days).  These helpers keep unit handling in one place:
constants, parsing of human strings ("4.7 TB", "35 min"), and formatting back
to human strings for tables and reports.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "EB",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "parse_bytes",
    "format_bytes",
    "parse_duration",
    "format_duration",
    "log10_bytes",
]

# Byte units.  The paper uses decimal-style prefixes informally; we use binary
# multiples of 1024 which is what Hadoop counters report.  Consistency matters
# more than the 2.4% difference.
KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB
PB = 1024 * TB
EB = 1024 * PB

# Time units in seconds.
SECOND = 1
MINUTE = 60
HOUR = 3600
DAY = 24 * HOUR
WEEK = 7 * DAY

_BYTE_SUFFIXES = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "pb": PB,
    "eb": EB,
}

_DURATION_SUFFIXES = {
    "s": SECOND,
    "sec": SECOND,
    "secs": SECOND,
    "second": SECOND,
    "seconds": SECOND,
    "m": MINUTE,
    "min": MINUTE,
    "mins": MINUTE,
    "minute": MINUTE,
    "minutes": MINUTE,
    "h": HOUR,
    "hr": HOUR,
    "hrs": HOUR,
    "hour": HOUR,
    "hours": HOUR,
    "d": DAY,
    "day": DAY,
    "days": DAY,
    "w": WEEK,
    "week": WEEK,
    "weeks": WEEK,
}

_NUMBER_UNIT_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_bytes(text):
    """Parse a human byte string such as ``"4.7 TB"`` or ``"600"`` into bytes.

    A bare number is interpreted as bytes.  Parsing is case-insensitive.

    Raises:
        ValueError: if the string is not a number followed by a known suffix.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_UNIT_RE.match(text)
    if not match:
        raise ValueError("cannot parse byte quantity: %r" % (text,))
    value, suffix = match.groups()
    suffix = suffix.lower() or "b"
    if suffix not in _BYTE_SUFFIXES:
        raise ValueError("unknown byte suffix %r in %r" % (suffix, text))
    return float(value) * _BYTE_SUFFIXES[suffix]


def format_bytes(num_bytes, precision=1):
    """Format a byte count into a short human string (``"4.7 TB"``)."""
    num_bytes = float(num_bytes)
    if num_bytes < 0:
        return "-" + format_bytes(-num_bytes, precision)
    for suffix, unit in (("EB", EB), ("PB", PB), ("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if num_bytes >= unit:
            return "%.*f %s" % (precision, num_bytes / unit, suffix)
    return "%.0f B" % num_bytes


def parse_duration(text):
    """Parse a human duration string such as ``"35 min"`` or ``"2 hrs"`` into seconds.

    A bare number is interpreted as seconds.

    Raises:
        ValueError: if the string is not a number followed by a known suffix.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_UNIT_RE.match(text)
    if not match:
        raise ValueError("cannot parse duration: %r" % (text,))
    value, suffix = match.groups()
    suffix = suffix.lower() or "s"
    if suffix not in _DURATION_SUFFIXES:
        raise ValueError("unknown duration suffix %r in %r" % (suffix, text))
    return float(value) * _DURATION_SUFFIXES[suffix]


def format_duration(seconds, precision=0):
    """Format a duration in seconds into a short human string (``"2.5 hrs"``)."""
    seconds = float(seconds)
    if seconds < 0:
        return "-" + format_duration(-seconds, precision)
    for suffix, unit in (("days", DAY), ("hrs", HOUR), ("min", MINUTE)):
        if seconds >= unit:
            return "%.*f %s" % (max(precision, 1), seconds / unit, suffix)
    return "%.*f sec" % (precision, seconds)


def log10_bytes(num_bytes, floor=1.0):
    """Return ``log10`` of a byte count, clamping values below ``floor``.

    Used when placing job sizes on the log-scale axes of Figures 1, 3 and 4;
    zero-byte dimensions (for example the shuffle size of a map-only job) are
    clamped to ``floor`` bytes so they stay on the plot.
    """
    return math.log10(max(float(num_bytes), floor))
