"""Job-name and framework analysis (§6.1 and Figure 10 of the paper).

Job names are user- or framework-supplied strings.  Frameworks layered on top
of MapReduce (Hive, Pig, Oozie) generate names automatically, so the first
word of a job name identifies both the framework and — for Hive — the query
operator (insert, select, from).  Figure 10 ranks the most frequent first
words per workload, weighted three ways: by job count, by total I/O bytes, and
by task-time.

This module classifies names into frameworks, computes the weighted first-word
breakdowns, and summarizes framework shares of cluster load.  The analyses
stream the ``name`` / ``framework`` / derived weight columns chunk by chunk
from any :class:`~repro.engine.source.TraceSource`-wrappable representation;
all results are exact dictionary totals, identical across representations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..engine.pipeline import ChunkConsumer, ScanChunk, fold_consumer
from ..engine.source import TraceSource
from ..errors import AnalysisError
from ..traces.schema import extract_first_word

__all__ = [
    "FRAMEWORK_KEYWORDS",
    "classify_framework",
    "FirstWordBreakdown",
    "NamingAnalysis",
    "NamingConsumer",
    "first_word_breakdown",
    "analyze_naming",
]

#: First words that identify a submitting framework.  Hive generates names
#: from the query text ("insert", "select", "from"), Pig prefixes "PigLatin",
#: Oozie prefixes "oozie", and distcp is the built-in copy tool.
FRAMEWORK_KEYWORDS = {
    "insert": "hive",
    "select": "hive",
    "from": "hive",
    "create": "hive",
    "piglatin": "pig",
    "pig": "pig",
    "oozie": "oozie",
    "distcp": "native",
}

#: The three Figure-10 weightings, in panel order.
WEIGHTINGS = ("jobs", "bytes", "task_seconds")


def classify_framework(first_word: Optional[str], declared: Optional[str] = None) -> str:
    """Classify a job into a framework.

    The declared framework (when the trace records one) wins; otherwise the
    first word of the job name decides; jobs without either are "native"
    (plain MapReduce API), and jobs with no name at all are "unknown".
    """
    if declared:
        return declared
    if first_word is None:
        return "unknown"
    return FRAMEWORK_KEYWORDS.get(first_word, "native")


@dataclass
class FirstWordBreakdown:
    """Share of a workload attributed to each job-name first word.

    Attributes:
        weighting: ``"jobs"``, ``"bytes"`` or ``"task_seconds"``.
        shares: (first word, share) pairs sorted by decreasing share; names
            beyond ``top_n`` are folded into ``"[others]"``.
    """

    weighting: str
    shares: List[Tuple[str, float]]

    def share_of(self, word: str) -> float:
        for name, share in self.shares:
            if name == word:
                return share
        return 0.0

    def top(self, n: int = 5) -> List[Tuple[str, float]]:
        return self.shares[:n]


@dataclass
class NamingAnalysis:
    """Complete §6.1 analysis for one workload.

    Attributes:
        workload: workload name.
        by_jobs / by_bytes / by_task_seconds: Figure-10 panels.
        framework_shares: framework -> share, for each weighting.
        top_words_cover: fraction of jobs covered by the top five words.
    """

    workload: str
    by_jobs: FirstWordBreakdown
    by_bytes: FirstWordBreakdown
    by_task_seconds: FirstWordBreakdown
    framework_shares: Dict[str, Dict[str, float]]
    top_words_cover: float

    def dominant_frameworks(self, weighting: str = "jobs", count: int = 2) -> List[str]:
        """The ``count`` frameworks with the largest share under a weighting."""
        shares = self.framework_shares.get(weighting, {})
        return sorted(shares, key=lambda name: shares[name], reverse=True)[:count]

    def framework_share(self, weighting: str = "jobs", frameworks: Tuple[str, ...] = ("hive", "pig", "oozie")) -> float:
        """Combined share of the query-like frameworks (paper: 20%-80%+)."""
        shares = self.framework_shares.get(weighting, {})
        return sum(shares.get(name, 0.0) for name in frameworks)


def _iter_name_rows(source: TraceSource) -> Iterator[Tuple[List[str], List[str], List[float], List[float]]]:
    """Stream per-chunk (names, frameworks, byte weights, task weights) lists."""
    has_name = source.has_column("name")
    has_framework = source.has_column("framework")
    columns = ["total_bytes", "total_task_seconds"]
    if has_name:
        columns.append("name")
    if has_framework:
        columns.append("framework")
    for block in source.iter_chunks(columns=columns):
        n_rows = block.n_rows
        if n_rows == 0:
            continue
        names = block.column("name").tolist() if has_name else [""] * n_rows
        frameworks = block.column("framework").tolist() if has_framework else [""] * n_rows
        yield (names, frameworks,
               block.column("total_bytes").tolist(),
               block.column("total_task_seconds").tolist())


def _ranked_shares(totals: Dict[str, float], weighting: str, top_n: int) -> FirstWordBreakdown:
    """Turn word -> weight totals into the ranked, others-folded share list."""
    grand_total = sum(totals.values())
    if grand_total <= 0:
        # All-zero weights (e.g. a trace of zero-byte jobs weighted by bytes):
        # fall back to uniform shares over the observed words.
        shares = sorted(((word, 1.0 / len(totals)) for word in totals),
                        key=lambda pair: pair[1], reverse=True)
        return FirstWordBreakdown(weighting=weighting, shares=shares)
    ranked = sorted(totals.items(), key=lambda pair: pair[1], reverse=True)
    shares: List[Tuple[str, float]] = []
    others = 0.0
    for index, (word, total) in enumerate(ranked):
        if index < top_n:
            shares.append((word, total / grand_total))
        else:
            others += total / grand_total
    if others > 0:
        shares.append(("[others]", others))
    return FirstWordBreakdown(weighting=weighting, shares=shares)


def first_word_breakdown(trace, weighting: str = "jobs", top_n: int = 10) -> FirstWordBreakdown:
    """Share of the workload attributed to each job-name first word.

    Jobs without names are grouped under ``"[unnamed]"``.  Words beyond the
    ``top_n`` most significant are folded into ``"[others]"``.  Accepts any
    :class:`TraceSource`-wrappable representation (streamed chunk by chunk).

    Raises:
        AnalysisError: for an empty trace or unknown weighting.
    """
    source = TraceSource.wrap(trace)
    if source.is_empty():
        raise AnalysisError("cannot analyze names of an empty trace")
    if weighting not in WEIGHTINGS:
        raise AnalysisError("unknown weighting %r" % (weighting,))
    totals: Dict[str, float] = defaultdict(float)
    for names, _frameworks, byte_weights, task_weights in _iter_name_rows(source):
        if weighting == "jobs":
            weights: List[float] = [1.0] * len(names)
        elif weighting == "bytes":
            weights = byte_weights
        else:
            weights = task_weights
        for name, weight in zip(names, weights):
            word = extract_first_word(name) or "[unnamed]"
            totals[word] += weight
    return _ranked_shares(totals, weighting, top_n)


class NamingConsumer(ChunkConsumer):
    """Shared-scan fold of every Figure-10 panel and the framework shares.

    Each chunk is grouped vectorized: ``np.unique`` over the (heavily
    repeating) names, first-word extraction cached per distinct name, and the
    three weightings accumulated by ``bincount`` over the group codes.  Job
    counts are integers (exact for every chunking and worker count); the
    byte/task-second totals group per chunk before entering the running
    dicts, so different chunkings can differ in the last float ulp — the same
    caveat as every chunk-folded sum in the engine.
    """

    resumable = True

    def __init__(self, has_framework: bool, workload: str = "trace",
                 top_n: int = 10, name: str = "naming"):
        self.name = name
        self.workload = workload
        self.top_n = top_n
        self.has_framework = has_framework
        self.columns = (("name", "framework") if has_framework else ("name",)) + (
            "total_bytes", "total_task_seconds")

    def make_state(self):
        return {
            "word_totals": {w: defaultdict(float) for w in WEIGHTINGS},
            "framework_totals": {w: defaultdict(float) for w in WEIGHTINGS},
            "n_named": 0,
            # name -> (word label, framework when none is declared)
            "cache": {},
        }

    def fold(self, state, chunk: ScanChunk):
        named = chunk.recorded_mask("name")
        n_named = int(named.sum())
        if n_named == 0:
            return state
        all_named = n_named == named.size
        byte_weights = chunk.column("total_bytes")
        task_weights = chunk.column("total_task_seconds")
        if not all_named:
            byte_weights = byte_weights[named]
            task_weights = task_weights[named]
        state["n_named"] += n_named

        # Code-native fold: the per-row decomposition comes from the cached
        # chunk.unique (an integer sort over dictionary codes on a v3 store),
        # word extraction and framework classification run once per *distinct*
        # name, and the per-row group keys stay integers end to end — no
        # per-row string array is ever built.
        unique_names, name_inverse = chunk.unique("name")
        cache = state["cache"]
        unique_words = []
        unique_frameworks = []
        for job_name in unique_names.tolist():
            cached = cache.get(job_name)
            if cached is None:
                first = extract_first_word(job_name)
                cached = cache[job_name] = (first or "[unnamed]",
                                            classify_framework(first, None))
            unique_words.append(cached[0])
            unique_frameworks.append(cached[1])
        name_words = np.asarray(unique_words, dtype=np.str_)
        name_frameworks = np.asarray(unique_frameworks, dtype=np.str_)

        word_labels, word_of_name = np.unique(name_words, return_inverse=True)
        word_codes = word_of_name.ravel()[name_inverse]

        if self.has_framework:
            # A declared per-row framework overrides the name-derived one;
            # both sides resolve into one sorted label vocabulary so the
            # per-row merge is a uint choice between two code arrays.
            declared_values, declared_inverse = chunk.unique("framework")
            has_declared = chunk.recorded_mask("framework")
            framework_labels = np.unique(np.concatenate([name_frameworks,
                                                         declared_values]))
            name_codes = np.searchsorted(framework_labels, name_frameworks)
            declared_codes = np.searchsorted(framework_labels, declared_values)
            framework_codes = np.where(has_declared,
                                       declared_codes[declared_inverse],
                                       name_codes[name_inverse])
        else:
            framework_labels, frame_of_name = np.unique(name_frameworks,
                                                        return_inverse=True)
            framework_codes = frame_of_name.ravel()[name_inverse]

        if not all_named:
            word_codes = word_codes[named]
            framework_codes = framework_codes[named]
        for labels, codes, totals in (
                (word_labels, word_codes, state["word_totals"]),
                (framework_labels, framework_codes, state["framework_totals"])):
            jobs = np.bincount(codes, minlength=labels.size)
            total_bytes = np.bincount(codes, weights=byte_weights, minlength=labels.size)
            total_tasks = np.bincount(codes, weights=task_weights, minlength=labels.size)
            jobs_dict = totals["jobs"]
            bytes_dict = totals["bytes"]
            tasks_dict = totals["task_seconds"]
            for label, n_jobs, byte_total, task_total in zip(
                    labels.tolist(), jobs.tolist(), total_bytes.tolist(), total_tasks.tolist()):
                if n_jobs == 0:
                    # Vocabulary entry with no named row in this chunk (e.g.
                    # the "" name's "[unnamed]" word): adding a zero would
                    # create a spurious label in the running totals.
                    continue
                jobs_dict[label] += n_jobs
                bytes_dict[label] += byte_total
                tasks_dict[label] += task_total
        return state

    def merge(self, a, b):
        for weighting in WEIGHTINGS:
            for word, total in b["word_totals"][weighting].items():
                a["word_totals"][weighting][word] += total
            for framework, total in b["framework_totals"][weighting].items():
                a["framework_totals"][weighting][framework] += total
        a["n_named"] += b["n_named"]
        return a

    def snapshot(self, state) -> Dict[str, object]:
        # Plain word/framework -> float dictionaries: they ride the JSON side
        # of the checkpoint (floats round-trip exactly).  The first-word memo
        # cache is derived data and is simply rebuilt on resume.
        return {
            "n_named": int(state["n_named"]),
            "word_totals": {weighting: dict(state["word_totals"][weighting])
                            for weighting in WEIGHTINGS},
            "framework_totals": {weighting: dict(state["framework_totals"][weighting])
                                 for weighting in WEIGHTINGS},
        }

    def restore(self, payload: Dict[str, object]):
        state = self.make_state()
        state["n_named"] = int(payload["n_named"])
        for key in ("word_totals", "framework_totals"):
            for weighting in WEIGHTINGS:
                state[key][weighting].update(
                    {label: float(total)
                     for label, total in payload[key].get(weighting, {}).items()})
        return state

    def finalize(self, state) -> NamingAnalysis:
        if state["n_named"] == 0:
            raise AnalysisError(
                "trace %r records no job names; naming analysis unavailable"
                % (self.workload,))
        breakdowns = {
            weighting: _ranked_shares(state["word_totals"][weighting], weighting, self.top_n)
            for weighting in WEIGHTINGS
        }
        framework_shares: Dict[str, Dict[str, float]] = {}
        for weighting in WEIGHTINGS:
            totals = state["framework_totals"][weighting]
            grand_total = sum(totals.values())
            if grand_total > 0:
                framework_shares[weighting] = {name: value / grand_total
                                               for name, value in totals.items()}
            else:
                framework_shares[weighting] = {name: 0.0 for name in totals}
        top_cover = sum(share for _, share in breakdowns["jobs"].top(5))
        return NamingAnalysis(
            workload=self.workload,
            by_jobs=breakdowns["jobs"],
            by_bytes=breakdowns["bytes"],
            by_task_seconds=breakdowns["task_seconds"],
            framework_shares=framework_shares,
            top_words_cover=top_cover,
        )


def analyze_naming(trace, top_n: int = 10) -> NamingAnalysis:
    """Run the full §6.1 analysis (all three weightings + framework shares).

    One streaming pass over the named jobs accumulates every panel of
    Figure 10 and the framework shares; jobs with no recorded name are
    excluded (as in the materialized ``with_names`` path).

    Raises:
        AnalysisError: when the trace records no job names at all.
    """
    source = TraceSource.wrap(trace)
    if not source.has_column("name") or source.is_empty():
        raise AnalysisError(
            "trace %r records no job names; naming analysis unavailable" % (source.name,)
        )
    consumer = NamingConsumer(has_framework=source.has_column("framework"),
                              workload=source.name, top_n=top_n)
    return fold_consumer(source, consumer)
