"""Job-name and framework analysis (§6.1 and Figure 10 of the paper).

Job names are user- or framework-supplied strings.  Frameworks layered on top
of MapReduce (Hive, Pig, Oozie) generate names automatically, so the first
word of a job name identifies both the framework and — for Hive — the query
operator (insert, select, from).  Figure 10 ranks the most frequent first
words per workload, weighted three ways: by job count, by total I/O bytes, and
by task-time.

This module classifies names into frameworks, computes the weighted first-word
breakdowns, and summarizes framework shares of cluster load.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import AnalysisError
from ..traces.trace import Trace

__all__ = [
    "FRAMEWORK_KEYWORDS",
    "classify_framework",
    "FirstWordBreakdown",
    "NamingAnalysis",
    "first_word_breakdown",
    "analyze_naming",
]

#: First words that identify a submitting framework.  Hive generates names
#: from the query text ("insert", "select", "from"), Pig prefixes "PigLatin",
#: Oozie prefixes "oozie", and distcp is the built-in copy tool.
FRAMEWORK_KEYWORDS = {
    "insert": "hive",
    "select": "hive",
    "from": "hive",
    "create": "hive",
    "piglatin": "pig",
    "pig": "pig",
    "oozie": "oozie",
    "distcp": "native",
}


def classify_framework(first_word: Optional[str], declared: Optional[str] = None) -> str:
    """Classify a job into a framework.

    The declared framework (when the trace records one) wins; otherwise the
    first word of the job name decides; jobs without either are "native"
    (plain MapReduce API), and jobs with no name at all are "unknown".
    """
    if declared:
        return declared
    if first_word is None:
        return "unknown"
    return FRAMEWORK_KEYWORDS.get(first_word, "native")


@dataclass
class FirstWordBreakdown:
    """Share of a workload attributed to each job-name first word.

    Attributes:
        weighting: ``"jobs"``, ``"bytes"`` or ``"task_seconds"``.
        shares: (first word, share) pairs sorted by decreasing share; names
            beyond ``top_n`` are folded into ``"[others]"``.
    """

    weighting: str
    shares: List[Tuple[str, float]]

    def share_of(self, word: str) -> float:
        for name, share in self.shares:
            if name == word:
                return share
        return 0.0

    def top(self, n: int = 5) -> List[Tuple[str, float]]:
        return self.shares[:n]


@dataclass
class NamingAnalysis:
    """Complete §6.1 analysis for one workload.

    Attributes:
        workload: workload name.
        by_jobs / by_bytes / by_task_seconds: Figure-10 panels.
        framework_shares: framework -> share, for each weighting.
        top_words_cover: fraction of jobs covered by the top five words.
    """

    workload: str
    by_jobs: FirstWordBreakdown
    by_bytes: FirstWordBreakdown
    by_task_seconds: FirstWordBreakdown
    framework_shares: Dict[str, Dict[str, float]]
    top_words_cover: float

    def dominant_frameworks(self, weighting: str = "jobs", count: int = 2) -> List[str]:
        """The ``count`` frameworks with the largest share under a weighting."""
        shares = self.framework_shares.get(weighting, {})
        return sorted(shares, key=lambda name: shares[name], reverse=True)[:count]

    def framework_share(self, weighting: str = "jobs", frameworks: Tuple[str, ...] = ("hive", "pig", "oozie")) -> float:
        """Combined share of the query-like frameworks (paper: 20%-80%+)."""
        shares = self.framework_shares.get(weighting, {})
        return sum(shares.get(name, 0.0) for name in frameworks)


def _weights_for(trace: Trace, weighting: str) -> List[float]:
    if weighting == "jobs":
        return [1.0] * len(trace)
    if weighting == "bytes":
        return [job.total_bytes for job in trace]
    if weighting == "task_seconds":
        return [job.total_task_seconds for job in trace]
    raise AnalysisError("unknown weighting %r" % (weighting,))


def first_word_breakdown(trace: Trace, weighting: str = "jobs", top_n: int = 10) -> FirstWordBreakdown:
    """Share of the workload attributed to each job-name first word.

    Jobs without names are grouped under ``"[unnamed]"``.  Words beyond the
    ``top_n`` most significant are folded into ``"[others]"``.

    Raises:
        AnalysisError: for an empty trace or unknown weighting.
    """
    if trace.is_empty():
        raise AnalysisError("cannot analyze names of an empty trace")
    weights = _weights_for(trace, weighting)
    totals: Dict[str, float] = defaultdict(float)
    for job, weight in zip(trace, weights):
        word = job.first_word or "[unnamed]"
        totals[word] += weight
    grand_total = sum(totals.values())
    if grand_total <= 0:
        # All-zero weights (e.g. a trace of zero-byte jobs weighted by bytes):
        # fall back to uniform shares over the observed words.
        shares = sorted(((word, 1.0 / len(totals)) for word in totals),
                        key=lambda pair: pair[1], reverse=True)
        return FirstWordBreakdown(weighting=weighting, shares=shares)
    ranked = sorted(totals.items(), key=lambda pair: pair[1], reverse=True)
    shares: List[Tuple[str, float]] = []
    others = 0.0
    for index, (word, total) in enumerate(ranked):
        if index < top_n:
            shares.append((word, total / grand_total))
        else:
            others += total / grand_total
    if others > 0:
        shares.append(("[others]", others))
    return FirstWordBreakdown(weighting=weighting, shares=shares)


def analyze_naming(trace: Trace, top_n: int = 10) -> NamingAnalysis:
    """Run the full §6.1 analysis (all three weightings + framework shares)."""
    named = trace.with_names()
    if named.is_empty():
        raise AnalysisError(
            "trace %r records no job names; naming analysis unavailable" % (trace.name,)
        )
    breakdowns = {
        weighting: first_word_breakdown(named, weighting, top_n)
        for weighting in ("jobs", "bytes", "task_seconds")
    }

    framework_shares: Dict[str, Dict[str, float]] = {}
    for weighting in ("jobs", "bytes", "task_seconds"):
        weights = _weights_for(named, weighting)
        totals: Dict[str, float] = defaultdict(float)
        for job, weight in zip(named, weights):
            totals[classify_framework(job.first_word, job.framework)] += weight
        grand_total = sum(totals.values())
        if grand_total > 0:
            framework_shares[weighting] = {name: value / grand_total for name, value in totals.items()}
        else:
            framework_shares[weighting] = {name: 0.0 for name in totals}

    top_cover = sum(share for _, share in breakdowns["jobs"].top(5))
    return NamingAnalysis(
        workload=trace.name,
        by_jobs=breakdowns["jobs"],
        by_bytes=breakdowns["bytes"],
        by_task_seconds=breakdowns["task_seconds"],
        framework_shares=framework_shares,
        top_words_cover=top_cover,
    )
