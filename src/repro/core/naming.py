"""Job-name and framework analysis (§6.1 and Figure 10 of the paper).

Job names are user- or framework-supplied strings.  Frameworks layered on top
of MapReduce (Hive, Pig, Oozie) generate names automatically, so the first
word of a job name identifies both the framework and — for Hive — the query
operator (insert, select, from).  Figure 10 ranks the most frequent first
words per workload, weighted three ways: by job count, by total I/O bytes, and
by task-time.

This module classifies names into frameworks, computes the weighted first-word
breakdowns, and summarizes framework shares of cluster load.  The analyses
stream the ``name`` / ``framework`` / derived weight columns chunk by chunk
from any :class:`~repro.engine.source.TraceSource`-wrappable representation;
all results are exact dictionary totals, identical across representations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..engine.source import TraceSource
from ..errors import AnalysisError
from ..traces.schema import extract_first_word

__all__ = [
    "FRAMEWORK_KEYWORDS",
    "classify_framework",
    "FirstWordBreakdown",
    "NamingAnalysis",
    "first_word_breakdown",
    "analyze_naming",
]

#: First words that identify a submitting framework.  Hive generates names
#: from the query text ("insert", "select", "from"), Pig prefixes "PigLatin",
#: Oozie prefixes "oozie", and distcp is the built-in copy tool.
FRAMEWORK_KEYWORDS = {
    "insert": "hive",
    "select": "hive",
    "from": "hive",
    "create": "hive",
    "piglatin": "pig",
    "pig": "pig",
    "oozie": "oozie",
    "distcp": "native",
}

#: The three Figure-10 weightings, in panel order.
WEIGHTINGS = ("jobs", "bytes", "task_seconds")


def classify_framework(first_word: Optional[str], declared: Optional[str] = None) -> str:
    """Classify a job into a framework.

    The declared framework (when the trace records one) wins; otherwise the
    first word of the job name decides; jobs without either are "native"
    (plain MapReduce API), and jobs with no name at all are "unknown".
    """
    if declared:
        return declared
    if first_word is None:
        return "unknown"
    return FRAMEWORK_KEYWORDS.get(first_word, "native")


@dataclass
class FirstWordBreakdown:
    """Share of a workload attributed to each job-name first word.

    Attributes:
        weighting: ``"jobs"``, ``"bytes"`` or ``"task_seconds"``.
        shares: (first word, share) pairs sorted by decreasing share; names
            beyond ``top_n`` are folded into ``"[others]"``.
    """

    weighting: str
    shares: List[Tuple[str, float]]

    def share_of(self, word: str) -> float:
        for name, share in self.shares:
            if name == word:
                return share
        return 0.0

    def top(self, n: int = 5) -> List[Tuple[str, float]]:
        return self.shares[:n]


@dataclass
class NamingAnalysis:
    """Complete §6.1 analysis for one workload.

    Attributes:
        workload: workload name.
        by_jobs / by_bytes / by_task_seconds: Figure-10 panels.
        framework_shares: framework -> share, for each weighting.
        top_words_cover: fraction of jobs covered by the top five words.
    """

    workload: str
    by_jobs: FirstWordBreakdown
    by_bytes: FirstWordBreakdown
    by_task_seconds: FirstWordBreakdown
    framework_shares: Dict[str, Dict[str, float]]
    top_words_cover: float

    def dominant_frameworks(self, weighting: str = "jobs", count: int = 2) -> List[str]:
        """The ``count`` frameworks with the largest share under a weighting."""
        shares = self.framework_shares.get(weighting, {})
        return sorted(shares, key=lambda name: shares[name], reverse=True)[:count]

    def framework_share(self, weighting: str = "jobs", frameworks: Tuple[str, ...] = ("hive", "pig", "oozie")) -> float:
        """Combined share of the query-like frameworks (paper: 20%-80%+)."""
        shares = self.framework_shares.get(weighting, {})
        return sum(shares.get(name, 0.0) for name in frameworks)


def _iter_name_rows(source: TraceSource) -> Iterator[Tuple[List[str], List[str], List[float], List[float]]]:
    """Stream per-chunk (names, frameworks, byte weights, task weights) lists."""
    has_name = source.has_column("name")
    has_framework = source.has_column("framework")
    columns = ["total_bytes", "total_task_seconds"]
    if has_name:
        columns.append("name")
    if has_framework:
        columns.append("framework")
    for block in source.iter_chunks(columns=columns):
        n_rows = block.n_rows
        if n_rows == 0:
            continue
        names = block.column("name").tolist() if has_name else [""] * n_rows
        frameworks = block.column("framework").tolist() if has_framework else [""] * n_rows
        yield (names, frameworks,
               block.column("total_bytes").tolist(),
               block.column("total_task_seconds").tolist())


def _ranked_shares(totals: Dict[str, float], weighting: str, top_n: int) -> FirstWordBreakdown:
    """Turn word -> weight totals into the ranked, others-folded share list."""
    grand_total = sum(totals.values())
    if grand_total <= 0:
        # All-zero weights (e.g. a trace of zero-byte jobs weighted by bytes):
        # fall back to uniform shares over the observed words.
        shares = sorted(((word, 1.0 / len(totals)) for word in totals),
                        key=lambda pair: pair[1], reverse=True)
        return FirstWordBreakdown(weighting=weighting, shares=shares)
    ranked = sorted(totals.items(), key=lambda pair: pair[1], reverse=True)
    shares: List[Tuple[str, float]] = []
    others = 0.0
    for index, (word, total) in enumerate(ranked):
        if index < top_n:
            shares.append((word, total / grand_total))
        else:
            others += total / grand_total
    if others > 0:
        shares.append(("[others]", others))
    return FirstWordBreakdown(weighting=weighting, shares=shares)


def first_word_breakdown(trace, weighting: str = "jobs", top_n: int = 10) -> FirstWordBreakdown:
    """Share of the workload attributed to each job-name first word.

    Jobs without names are grouped under ``"[unnamed]"``.  Words beyond the
    ``top_n`` most significant are folded into ``"[others]"``.  Accepts any
    :class:`TraceSource`-wrappable representation (streamed chunk by chunk).

    Raises:
        AnalysisError: for an empty trace or unknown weighting.
    """
    source = TraceSource.wrap(trace)
    if source.is_empty():
        raise AnalysisError("cannot analyze names of an empty trace")
    if weighting not in WEIGHTINGS:
        raise AnalysisError("unknown weighting %r" % (weighting,))
    totals: Dict[str, float] = defaultdict(float)
    for names, _frameworks, byte_weights, task_weights in _iter_name_rows(source):
        if weighting == "jobs":
            weights: List[float] = [1.0] * len(names)
        elif weighting == "bytes":
            weights = byte_weights
        else:
            weights = task_weights
        for name, weight in zip(names, weights):
            word = extract_first_word(name) or "[unnamed]"
            totals[word] += weight
    return _ranked_shares(totals, weighting, top_n)


def analyze_naming(trace, top_n: int = 10) -> NamingAnalysis:
    """Run the full §6.1 analysis (all three weightings + framework shares).

    One streaming pass over the named jobs accumulates every panel of
    Figure 10 and the framework shares; jobs with no recorded name are
    excluded (as in the materialized ``with_names`` path).

    Raises:
        AnalysisError: when the trace records no job names at all.
    """
    source = TraceSource.wrap(trace)
    word_totals: Dict[str, Dict[str, float]] = {w: defaultdict(float) for w in WEIGHTINGS}
    framework_totals: Dict[str, Dict[str, float]] = {w: defaultdict(float) for w in WEIGHTINGS}
    n_named = 0
    if source.has_column("name") and not source.is_empty():
        for names, frameworks, byte_weights, task_weights in _iter_name_rows(source):
            for index, name in enumerate(names):
                if not name:
                    continue
                n_named += 1
                first = extract_first_word(name)
                word = first or "[unnamed]"
                framework = classify_framework(first, frameworks[index] or None)
                for weighting, weight in (("jobs", 1.0),
                                          ("bytes", byte_weights[index]),
                                          ("task_seconds", task_weights[index])):
                    word_totals[weighting][word] += weight
                    framework_totals[weighting][framework] += weight
    if n_named == 0:
        raise AnalysisError(
            "trace %r records no job names; naming analysis unavailable" % (source.name,)
        )

    breakdowns = {
        weighting: _ranked_shares(word_totals[weighting], weighting, top_n)
        for weighting in WEIGHTINGS
    }
    framework_shares: Dict[str, Dict[str, float]] = {}
    for weighting in WEIGHTINGS:
        totals = framework_totals[weighting]
        grand_total = sum(totals.values())
        if grand_total > 0:
            framework_shares[weighting] = {name: value / grand_total
                                           for name, value in totals.items()}
        else:
            framework_shares[weighting] = {name: 0.0 for name in totals}

    top_cover = sum(share for _, share in breakdowns["jobs"].top(5))
    return NamingAnalysis(
        workload=source.name,
        by_jobs=breakdowns["jobs"],
        by_bytes=breakdowns["bytes"],
        by_task_seconds=breakdowns["task_seconds"],
        framework_shares=framework_shares,
        top_words_cover=top_cover,
    )
