"""One shared scan for the whole characterization suite.

The paper's characterization is a batch of ~15 analyses (Table 1, Figures
1-10, Table 2) over the same trace.  :func:`run_characterization_scan`
registers the chunk-consumer form of every requested analysis on a single
:class:`~repro.engine.pipeline.ScanPipeline`, so an out-of-core store is
decoded **once** for the whole batch (and, with a
:class:`~repro.engine.parallel.ParallelExecutor`, fanned out across worker
processes) instead of once per analysis.  The returned
:class:`CharacterizationAnalyses` hands each table/figure builder its
precomputed piece.

Equality contract: every consumer is the exact fold its standalone
per-analysis entry point runs (see the module docs of
:mod:`repro.core.access`, :mod:`repro.core.datasizes`, ...), so shared-scan
results match per-analysis streaming results — serial or parallel — up to
floating-point merge order, and the parametrized tests in
``tests/core/test_sharedscan.py`` pin the table/figure rows to be identical.

Materialized sources (job-list :class:`~repro.traces.trace.Trace`, in-memory
:class:`~repro.engine.columnar.ColumnarTrace`) have no decode cost to share;
for them the same fields are filled through the standalone entry points, so
the exact whole-column paths (sorting-based CDFs, exact medians) are
preserved bit-for-bit.

Store-backed scans are additionally **checkpointable**: ``checkpoint_to=``
persists every resumable consumer's fold state (JSON + ``.npz``) together
with the store's chunk watermark, and after appending chunks
(:func:`repro.engine.store.append_store` / ``repro engine ingest``)
``resume_from=`` folds only the new chunks into the restored states —
bit-identical to a cold full rescan.  Consumers that cannot resume (the
Table-2 row sample, whose seeded indices are drawn over the total row count;
the ordered re-access walk when appended data interleaves in time) fall back
to a full rescan, recorded with reasons on
:attr:`CharacterizationAnalyses.resume`.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.pipeline import (
    Checkpoint,
    ChunkConsumer,
    GatherConsumer,
    PipelineResult,
    ScanPipeline,
    SummaryConsumer,
)
from ..engine.source import TraceSource
from ..errors import AnalysisError
from .access import (
    PathStatsConsumer,
    ReaccessConsumer,
    _reaccess,
    path_stats,
    profile_from_path_stats,
    rank_frequencies_from_path_stats,
)
from .clustering import FeatureMatrixConsumer
from .datasizes import DataSizeConsumer, analyze_data_sizes
from .naming import NamingConsumer, analyze_naming
from .temporal import (
    HOURLY_DIMENSION_SPECS,
    HourlyTotalsConsumer,
    hourly_dimensions,
    hourly_dimensions_from_groups,
)

__all__ = ["CharacterizationAnalyses", "run_characterization_scan",
           "cluster_sample_indices", "DEFAULT_CLUSTER_SAMPLE_CAP",
           "EXPERIMENT_NEEDS"]

#: Default cap on jobs clustered per workload (the Table-2 seeded subsample).
DEFAULT_CLUSTER_SAMPLE_CAP = 20000

#: Which analysis keys each characterization experiment consumes.
EXPERIMENT_NEEDS: Dict[str, Tuple[str, ...]] = {
    "table1": ("summary",),
    "figure1": ("data_sizes",),
    "figure2": ("input_ranks", "output_ranks"),
    "figure3": ("input_profile",),
    "figure4": ("output_profile",),
    "figure5": ("reaccess_intervals",),
    "figure6": ("reaccess_fractions",),
    "figure7": ("hourly", "summary"),
    "figure8": ("hourly", "summary"),
    "figure9": ("hourly", "summary"),
    "figure10": ("naming",),
    "table2": ("cluster_sample",),
}

_ALL_KEYS = ("summary", "data_sizes", "input_ranks", "output_ranks",
             "input_profile", "output_profile", "reaccess_intervals",
             "reaccess_fractions", "hourly", "naming", "cluster_sample",
             "features")


class CharacterizationAnalyses:
    """Per-workload results of one shared characterization scan.

    Each analysis key holds either a result or the :class:`AnalysisError`
    that made it unavailable (no paths recorded, unsorted store, ...).
    Table/figure builders read results through :meth:`value` when they let
    errors propagate, or :meth:`get` when a missing analysis just skips a row
    — matching the per-analysis error behaviour exactly.
    """

    def __init__(self, workload: str):
        self.workload = workload
        self._results: Dict[str, object] = {}
        self._errors: Dict[str, AnalysisError] = {}
        #: Checkpoint-resume report, or ``None`` for a plain full scan:
        #: ``{"chunk_watermark", "new_chunks", "resumed": [consumer names],
        #: "rescanned": {consumer name: reason}}``.
        self.resume: Optional[Dict[str, object]] = None
        #: Where the post-scan checkpoint was saved, when one was requested.
        self.checkpoint_path: Optional[str] = None
        #: Chunks/rows actually decoded by the shared scan (0 for materialized
        #: sources, which have no decode cost to meter).  The service daemon's
        #: ``/metrics`` endpoint reads these.
        self.chunks_scanned: int = 0
        self.rows_scanned: int = 0

    def set(self, key: str, value) -> None:
        self._results[key] = value

    def set_error(self, key: str, error: AnalysisError) -> None:
        self._errors[key] = error

    def has(self, key: str) -> bool:
        """Whether the key was computed (successfully or not)."""
        return key in self._results or key in self._errors

    def get(self, key: str, default=None):
        """The result for ``key``; ``default`` when it errored or is absent."""
        return self._results.get(key, default)

    def error(self, key: str) -> Optional[AnalysisError]:
        return self._errors.get(key)

    def value(self, key: str):
        """The result for ``key``; re-raises its recorded error."""
        if key in self._errors:
            raise self._errors[key]
        if key not in self._results:
            raise AnalysisError("shared scan did not compute %r for workload %r"
                                % (key, self.workload))
        return self._results[key]


def _needed_keys(experiments: Optional[Iterable[str]],
                 include_features: bool) -> List[str]:
    if experiments is None:
        needed = [key for key in _ALL_KEYS if key != "features"]
    else:
        needed = []
        for experiment in experiments:
            for key in EXPERIMENT_NEEDS.get(experiment, ()):
                if key not in needed:
                    needed.append(key)
    if include_features and "features" not in needed:
        needed.append("features")
    return needed


def cluster_sample_indices(n_jobs: int, cap: Optional[int],
                           seed: int) -> Optional[np.ndarray]:
    """The Table-2 seeded subsample: sorted global row indices, or None.

    The single source of the sampling rule — :func:`repro.bench.table2.table2`
    calls this too, so the shared scan and the standalone gather select
    identical rows (and therefore produce the identical clustering).  A
    submission-order prefix would bias the job-type mix; the seeded uniform
    choice does not.
    """
    if cap is None or n_jobs <= cap:
        return None
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(n_jobs, size=cap, replace=False))


def run_characterization_scan(trace, experiments: Optional[Sequence[str]] = None,
                              seed: int = 0,
                              cluster_sample_cap: Optional[int] = DEFAULT_CLUSTER_SAMPLE_CAP,
                              include_features: bool = False,
                              executor=None,
                              resume_from=None,
                              checkpoint_to: Optional[str] = None) -> CharacterizationAnalyses:
    """Compute every requested characterization analysis in one shared scan.

    Args:
        trace: any :class:`TraceSource`-wrappable representation.
        experiments: characterization experiment ids (``table1``,
            ``figure1``..``figure10``, ``table2``) selecting which analyses to
            fold; ``None`` folds everything (except ``features``).
        seed: seed of the Table-2 subsample (must match the clustering seed).
        cluster_sample_cap: job cap for the Table-2 subsample; ``None``
            disables sampling (cluster the full source).
        include_features: also gather the full (n_jobs, 6) k-means feature
            matrix (used by :func:`repro.core.characterization.characterize`,
            which clusters every job).
        executor: optional :class:`~repro.engine.parallel.ParallelExecutor`
            fanning the chunk scan across worker processes for store-backed
            sources.
        resume_from: a :class:`~repro.engine.pipeline.Checkpoint` (or a path
            to one) from an earlier scan of the same store.  Consumers that
            declared ``resumable`` restore their fold states and fold **only
            the chunks appended since the checkpoint**; the rest run a full
            rescan, and the bundle's :attr:`CharacterizationAnalyses.resume`
            report says which did what and why.  Results are bit-identical to
            a cold full rescan.  Requires a store-backed source.
        checkpoint_to: save a fresh checkpoint (JSON at this path, arrays at
            ``<path>.npz``) covering the whole store after the scan.
    """
    source = TraceSource.wrap(trace)
    needed = _needed_keys(experiments, include_features)
    analyses = CharacterizationAnalyses(source.name)
    if not needed:
        return analyses
    if source.is_streaming:
        _scan_streaming(source, needed, analyses, seed, cluster_sample_cap, executor,
                        resume_from=resume_from, checkpoint_to=checkpoint_to)
    else:
        if resume_from is not None or checkpoint_to is not None:
            raise AnalysisError(
                "characterization checkpoints require a store-backed source; "
                "%r is materialized (there is no chunk watermark to resume from)"
                % (source.name,))
        _scan_materialized(source, needed, analyses, seed, cluster_sample_cap)
    return analyses


# ---------------------------------------------------------------------------
# Streaming: one pipeline, every analysis a consumer
# ---------------------------------------------------------------------------
def _scan_streaming(source: TraceSource, needed: List[str],
                    analyses: CharacterizationAnalyses, seed: int,
                    cluster_sample_cap: Optional[int], executor,
                    resume_from=None, checkpoint_to: Optional[str] = None) -> None:
    consumers: List[ChunkConsumer] = []
    wants_hourly = "hourly" in needed
    wants_summary = "summary" in needed or wants_hourly
    wants_input_stats = "input_ranks" in needed or "input_profile" in needed
    wants_output_stats = "output_ranks" in needed or "output_profile" in needed
    wants_reaccess = "reaccess_intervals" in needed or "reaccess_fractions" in needed

    if wants_summary:
        consumers.append(SummaryConsumer(trace_name=source.name, machines=source.machines))
    if "data_sizes" in needed:
        consumers.append(DataSizeConsumer(workload=source.name))
    if wants_input_stats:
        consumers.append(PathStatsConsumer("input"))
    if wants_output_stats:
        consumers.append(PathStatsConsumer("output"))
    if wants_reaccess:
        consumers.append(ReaccessConsumer(has_input=source.has_column("input_path"),
                                          has_output=source.has_column("output_path")))
    if wants_hourly:
        consumers.append(HourlyTotalsConsumer(HOURLY_DIMENSION_SPECS))
    if "naming" in needed:
        if source.has_column("name") and not source.is_empty():
            consumers.append(NamingConsumer(has_framework=source.has_column("framework"),
                                            workload=source.name))
        else:
            analyses.set_error("naming", AnalysisError(
                "trace %r records no job names; naming analysis unavailable"
                % (source.name,)))
    sample_indices = None
    if "cluster_sample" in needed:
        sample_indices = cluster_sample_indices(len(source), cluster_sample_cap, seed)
        if sample_indices is None:
            analyses.set("cluster_sample", None)  # cluster the full source
        else:
            consumers.append(GatherConsumer(sample_indices, name="cluster_sample",
                                            trace_name=source.name,
                                            machines=source.machines))
    if "features" in needed:
        consumers.append(FeatureMatrixConsumer())

    scan = _execute_scan(source, consumers, executor, analyses,
                         resume_from, checkpoint_to)
    analyses.chunks_scanned = scan.chunks_scanned
    analyses.rows_scanned = scan.rows_scanned

    def adopt(key: str, consumer_name: str) -> bool:
        """Copy one consumer's result/error onto an analysis key."""
        error = scan.errors.get(consumer_name)
        if error is not None:
            analyses.set_error(key, error)
            return False
        if consumer_name in scan.results:
            analyses.set(key, scan.results[consumer_name])
            return True
        return False

    if wants_summary:
        adopt("summary", "summary")
    if "data_sizes" in needed:
        adopt("data_sizes", "data_sizes")
    _adopt_path_stats(analyses, scan, needed, "input")
    _adopt_path_stats(analyses, scan, needed, "output")
    if wants_reaccess:
        if adopt("reaccess", "reaccess"):
            reaccess = analyses.get("reaccess")
            analyses.set("reaccess_intervals", reaccess.intervals)
            if reaccess.fractions is not None:
                analyses.set("reaccess_fractions", reaccess.fractions)
            else:
                analyses.set_error("reaccess_fractions", AnalysisError(
                    "trace has no recorded input paths"))
        else:
            error = analyses.error("reaccess")
            analyses.set_error("reaccess_intervals", error)
            analyses.set_error("reaccess_fractions", error)
    if wants_hourly:
        _adopt_hourly(analyses, scan)
    if "naming" in needed and not analyses.has("naming"):
        adopt("naming", "naming")
    if sample_indices is not None:
        adopt("cluster_sample", "cluster_sample")
    if "features" in needed:
        adopt("features", "features")


def _merge_scan_results(target: PipelineResult, part: PipelineResult) -> None:
    target.results.update(part.results)
    target.errors.update(part.errors)
    target.final_states.update(part.final_states)
    target.chunks_scanned += part.chunks_scanned
    target.rows_scanned += part.rows_scanned


def _execute_scan(source: TraceSource, consumers: List[ChunkConsumer], executor,
                  analyses: CharacterizationAnalyses, resume_from,
                  checkpoint_to: Optional[str]) -> PipelineResult:
    """Run the shared scan, resuming from a checkpoint when one is given.

    With ``resume_from``, consumers split into a **resumed** lane (restored
    states folding only the appended chunks) and a **rescan** lane (full scan
    from chunk 0) — both over the same store handle, results merged.  The
    split and the per-consumer reasons are recorded on
    ``analyses.resume`` so callers can report what actually happened.
    """
    checkpoint: Optional[Checkpoint] = None
    if resume_from is not None:
        checkpoint = (Checkpoint.load(os.fspath(resume_from))
                      if not isinstance(resume_from, Checkpoint) else resume_from)
        checkpoint.validate(source.backing)

    resumed: List[ChunkConsumer] = []
    rescan: List[ChunkConsumer] = []
    reasons: Dict[str, str] = {}
    initial_states: Dict[str, object] = {}
    if checkpoint is None:
        rescan = list(consumers)
    else:
        store = source.backing
        for consumer in consumers:
            if not consumer.resumable:
                rescan.append(consumer)
                reasons[consumer.name] = ("not resumable: result is defined over "
                                          "the total row count")
            elif consumer.name not in checkpoint.consumers:
                rescan.append(consumer)
                reasons[consumer.name] = "no state in the checkpoint"
            elif consumer.ordered and not store.sorted_by_submit_time:
                rescan.append(consumer)
                reasons[consumer.name] = ("ordered fold cannot resume: appended "
                                          "data interleaves in time (store is no "
                                          "longer sorted by submit time)")
            else:
                try:
                    initial_states[consumer.name] = consumer.restore(
                        checkpoint.consumers[consumer.name])
                    resumed.append(consumer)
                except AnalysisError as exc:
                    rescan.append(consumer)
                    reasons[consumer.name] = "checkpoint state unreadable: %s" % exc

    merged = PipelineResult()
    if resumed:
        pipeline = ScanPipeline(source, executor=executor)
        for consumer in resumed:
            pipeline.add(consumer)
        floor = (checkpoint.last_submit_time
                 if checkpoint.last_submit_time is not None else -np.inf)
        _merge_scan_results(merged, pipeline.run(
            start_chunk=checkpoint.chunk_watermark,
            initial_states=initial_states, order_floor=floor))
    if rescan:
        pipeline = ScanPipeline(source, executor=executor)
        for consumer in rescan:
            pipeline.add(consumer)
        _merge_scan_results(merged, pipeline.run())

    if checkpoint is not None:
        analyses.resume = {
            "chunk_watermark": checkpoint.chunk_watermark,
            "new_chunks": checkpoint.new_chunks(source.backing),
            "resumed": [consumer.name for consumer in resumed],
            "rescanned": reasons,
        }
    if checkpoint_to:
        fresh = Checkpoint.capture(source.backing, consumers, merged.final_states,
                                   merged.errors, meta={"workload": source.name})
        fresh.save(os.fspath(checkpoint_to))
        analyses.checkpoint_path = os.fspath(checkpoint_to)
    return merged


def _adopt_path_stats(analyses: CharacterizationAnalyses, scan, needed: List[str],
                      kind: str) -> None:
    ranks_key = "%s_ranks" % kind
    profile_key = "%s_profile" % kind
    if ranks_key not in needed and profile_key not in needed:
        return
    consumer_name = "path_stats_%s" % kind
    error = scan.errors.get(consumer_name)
    if error is not None:
        if ranks_key in needed:
            analyses.set_error(ranks_key, error)
        if profile_key in needed:
            analyses.set_error(profile_key, error)
        return
    stats = scan.results.get(consumer_name)
    if stats is None:
        return
    if ranks_key in needed:
        _attempt(analyses, ranks_key, rank_frequencies_from_path_stats, stats)
    if profile_key in needed:
        _attempt(analyses, profile_key, profile_from_path_stats, stats)


def _adopt_hourly(analyses: CharacterizationAnalyses, scan) -> None:
    error = scan.errors.get("hourly")
    if error is None and "summary" in scan.errors:
        error = scan.errors["summary"]
    if error is not None:
        analyses.set_error("hourly", error)
        return
    summary = scan.results.get("summary")
    groups = scan.results.get("hourly")
    if summary is None or groups is None:
        return
    if summary.n_jobs == 0:
        analyses.set_error("hourly", AnalysisError(
            "cannot compute hourly dimensions of an empty trace"))
        return
    _attempt(analyses, "hourly", hourly_dimensions_from_groups,
             groups, summary.start_s, summary.end_s)


def _attempt(analyses: CharacterizationAnalyses, key: str, function, *args) -> None:
    try:
        analyses.set(key, function(*args))
    except AnalysisError as exc:
        analyses.set_error(key, exc)


# ---------------------------------------------------------------------------
# Materialized: standalone entry points (exact whole-column paths preserved)
# ---------------------------------------------------------------------------
def _scan_materialized(source: TraceSource, needed: List[str],
                       analyses: CharacterizationAnalyses, seed: int,
                       cluster_sample_cap: Optional[int]) -> None:
    if "summary" in needed or "hourly" in needed:
        _attempt(analyses, "summary", source.summary)
    if "data_sizes" in needed:
        _attempt(analyses, "data_sizes", analyze_data_sizes, source)
    for kind in ("input", "output"):
        ranks_key, profile_key = "%s_ranks" % kind, "%s_profile" % kind
        if ranks_key not in needed and profile_key not in needed:
            continue
        try:
            stats = path_stats(source, kind)
        except AnalysisError as exc:
            if ranks_key in needed:
                analyses.set_error(ranks_key, exc)
            if profile_key in needed:
                analyses.set_error(profile_key, exc)
            continue
        if ranks_key in needed:
            _attempt(analyses, ranks_key, rank_frequencies_from_path_stats, stats)
        if profile_key in needed:
            _attempt(analyses, profile_key, profile_from_path_stats, stats)
    if "reaccess_intervals" in needed or "reaccess_fractions" in needed:
        try:
            reaccess = _reaccess(source)
        except AnalysisError as exc:
            analyses.set_error("reaccess_intervals", exc)
            analyses.set_error("reaccess_fractions", exc)
        else:
            analyses.set("reaccess_intervals", reaccess.intervals)
            if reaccess.fractions is not None:
                analyses.set("reaccess_fractions", reaccess.fractions)
            else:
                analyses.set_error("reaccess_fractions", AnalysisError(
                    "trace has no recorded input paths"))
    if "hourly" in needed:
        _attempt(analyses, "hourly", hourly_dimensions, source)
    if "naming" in needed:
        _attempt(analyses, "naming", analyze_naming, source)
    if "cluster_sample" in needed:
        indices = cluster_sample_indices(len(source), cluster_sample_cap, seed)
        if indices is None:
            analyses.set("cluster_sample", None)
        else:
            _attempt(analyses, "cluster_sample", source.gather, indices)
    if "features" in needed:
        _attempt(analyses, "features", source.feature_matrix)
