"""Temporal workload analysis (§5, Figures 7 and 9 of the paper).

The paper examines workload variation over time in four dimensions — jobs
submitted per hour, aggregate I/O (input + shuffle + output bytes) per hour,
aggregate compute (map + reduce task-time) per hour, and cluster utilization —
over a week-long window, then quantifies burstiness (handled in
:mod:`repro.core.burstiness`) and the pairwise correlations between the first
three dimensions.

This module builds those hourly series, extracts weekly views, detects diurnal
periodicity with a Fourier analysis, and computes the Figure-9 correlation
triplet.  The hourly series are produced by **one** engine group-by scan over
the derived ``submit_hour`` column, so any
:class:`~repro.engine.source.TraceSource`-wrappable representation works —
including an out-of-core chunked store, with memory bounded by chunk size.
Hourly job counts are exact for every representation; the byte and
task-second sums are exact up to floating-point summation order (different
chunkings can differ in the last ulp).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..engine.pipeline import ChunkConsumer, ScanChunk
from ..engine.source import TraceSource
from ..errors import AnalysisError
from ..units import DAY, HOUR, WEEK
from .stats import pearson_correlation

__all__ = [
    "HourlyDimensions",
    "WeeklyView",
    "DiurnalAnalysis",
    "CorrelationResult",
    "HOURLY_DIMENSION_SPECS",
    "HourlyTotalsConsumer",
    "hourly_totals",
    "hourly_series_from_groups",
    "hourly_dimensions",
    "hourly_dimensions_from_groups",
    "weekly_view",
    "diurnal_strength",
    "dimension_correlations",
]

#: The engine aggregate specs behind the three Figure-7 submission dimensions.
HOURLY_DIMENSION_SPECS = {
    "jobs": ("count", "submit_time_s"),
    "bytes": ("sum", "total_bytes"),
    "task_seconds": ("sum", "total_task_seconds"),
}


@dataclass
class HourlyDimensions:
    """Hourly time series of the three submission dimensions of Figure 7.

    Attributes:
        jobs_per_hour: number of jobs submitted in each hour.
        bytes_per_hour: aggregate I/O (input + shuffle + output) submitted.
        task_seconds_per_hour: aggregate map + reduce task time submitted.
    """

    jobs_per_hour: np.ndarray
    bytes_per_hour: np.ndarray
    task_seconds_per_hour: np.ndarray

    @property
    def n_hours(self) -> int:
        return int(self.jobs_per_hour.size)

    def as_dict(self) -> Dict[str, np.ndarray]:
        return {
            "jobs": self.jobs_per_hour,
            "bytes": self.bytes_per_hour,
            "task_seconds": self.task_seconds_per_hour,
        }


@dataclass
class WeeklyView:
    """One week of hourly data for each dimension (the Figure-7 row).

    Attributes:
        start_hour: index of the first hour of the extracted week.
        series: mapping of dimension name -> 168-hour (or shorter) array.
    """

    start_hour: int
    series: Dict[str, np.ndarray]

    @property
    def n_hours(self) -> int:
        if not self.series:
            return 0
        return int(next(iter(self.series.values())).size)


@dataclass
class DiurnalAnalysis:
    """Fourier-based diurnality summary for one hourly series.

    Attributes:
        diurnal_strength: power at the 24-hour period divided by total
            non-DC power (0 = no daily pattern, approaching 1 = pure daily sine).
        dominant_period_hours: period with the largest non-DC power.
        has_diurnal_pattern: convenience flag (strength above the threshold).
    """

    diurnal_strength: float
    dominant_period_hours: float
    has_diurnal_pattern: bool


@dataclass
class CorrelationResult:
    """Pairwise correlations of the three hourly dimensions (Figure 9).

    Attributes:
        jobs_bytes: correlation of jobs/hr with bytes/hr.
        jobs_task_seconds: correlation of jobs/hr with task-seconds/hr.
        bytes_task_seconds: correlation of bytes/hr with task-seconds/hr.
    """

    jobs_bytes: float
    jobs_task_seconds: float
    bytes_task_seconds: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "jobs-bytes": self.jobs_bytes,
            "jobs-task-seconds": self.jobs_task_seconds,
            "bytes-task-seconds": self.bytes_task_seconds,
        }

    def strongest_pair(self) -> str:
        """Name of the most correlated pair (the paper finds bytes-task-seconds)."""
        pairs = self.as_dict()
        return max(pairs, key=lambda key: pairs[key])


class HourlyTotalsConsumer(ChunkConsumer):
    """Shared-scan fold for per-hour engine aggregates (one group-by pass).

    The fold state is the same ``{hour: {label: AggregateState}}`` structure
    the engine's group-by operator builds, updated by the operator's own
    chunk-update routine — so the per-hour read-outs are identical to a
    standalone :meth:`TraceSource.hourly_groups` query, chunk for chunk.
    """

    resumable = True

    #: Aggregate-state fields serialized per op by :meth:`snapshot` (the
    #: mergeable scalar states; sketch-backed ops are not checkpointable).
    _SNAPSHOT_FIELDS = {"count": ("count",), "sum": ("total",),
                        "min": ("value",), "max": ("value",),
                        "mean": ("total", "count")}

    def __init__(self, aggregate_specs: Dict[str, tuple], name: str = "hourly"):
        from ..engine.operators import Query

        self.name = name
        self.specs = dict(aggregate_specs)
        self.query = Query().aggregate(**self.specs).group_by("submit_hour")
        columns = ["submit_hour"]
        for _op, column in self.specs.values():
            if column not in columns:
                columns.append(column)
        self.columns = tuple(columns)

    def make_state(self):
        return {}

    def snapshot(self, state) -> Dict[str, object]:
        for label, (op, _column) in self.specs.items():
            if op not in self._SNAPSHOT_FIELDS:
                raise AnalysisError(
                    "hourly aggregate %r (op %r) has no serializable state"
                    % (label, op))
        keys = list(state)
        # The None key pools jobs with no recorded submit time; encode it as
        # NaN in the hour array (hours themselves are always finite).
        payload: Dict[str, object] = {
            "hours": np.array([np.nan if key is None else float(key)
                               for key in keys], dtype=float)}
        for label, (op, _column) in self.specs.items():
            for field in self._SNAPSHOT_FIELDS[op]:
                values = [getattr(state[key][label], field) for key in keys]
                payload["%s.%s" % (label, field)] = np.array(
                    [np.nan if value is None else float(value) for value in values],
                    dtype=float)
        return payload

    def restore(self, payload: Dict[str, object]):
        from ..engine.aggregates import make_aggregate

        state = self.make_state()
        hours = np.asarray(payload["hours"], dtype=float)
        for position, hour in enumerate(hours.tolist()):
            key = None if hour != hour else float(hour)  # NaN != NaN
            group = state[key] = {}
            for label, (op, _column) in self.specs.items():
                aggregate = make_aggregate(op)
                for field in self._SNAPSHOT_FIELDS[op]:
                    value = float(np.asarray(payload["%s.%s" % (label, field)])[position])
                    if value != value:
                        value = None
                    if field == "count":
                        value = int(value) if value is not None else 0
                    setattr(aggregate, field, value)
                group[label] = aggregate
        return state

    def fold(self, state, chunk: ScanChunk):
        from ..engine.operators import _update_groups

        _update_groups(state, chunk.block, self.query)
        return state

    def merge(self, a, b):
        for key, group in b.items():
            target = a.get(key)
            if target is None:
                a[key] = group
            else:
                for label in target:
                    target[label].merge(group[label])
        return a

    def finalize(self, state) -> Dict[int, Dict[str, object]]:
        groups: Dict[int, Dict[str, object]] = {}
        for key, states in state.items():
            if key is None:
                continue  # jobs with no recorded submit time
            groups[int(key)] = {label: agg.result() for label, agg in states.items()}
        return groups


def hourly_series_from_groups(groups: Dict[int, Dict[str, object]],
                              start_s: float, end_s: float,
                              labels) -> Dict[str, np.ndarray]:
    """Spread ``{hour: {label: value}}`` group results onto dense hourly arrays.

    The arrays cover ``ceil((end - start) / 3600)`` hours (idle hours zero);
    events past the horizon clamp into the final hour, matching
    :func:`repro.core.stats.hourly_series`.

    Raises:
        AnalysisError: for negative submit times.
    """
    if start_s < 0:
        raise AnalysisError("event times must be non-negative")
    n_hours = max(1, int(np.ceil(max(0.0, end_s - start_s) / 3600.0)))
    series = {label: np.zeros(n_hours, dtype=float) for label in labels}
    for hour in sorted(groups):
        bucket = min(int(hour), n_hours - 1)
        for label, value in groups[hour].items():
            series[label][bucket] += float(value or 0.0)
    return series


def hourly_totals(source, **aggregate_specs) -> Dict[str, np.ndarray]:
    """Per-hour totals of arbitrary engine aggregates over one scan.

    ``aggregate_specs`` are engine ``label=(op, column)`` pairs.  The result
    maps each label to an hourly array covering ``ceil(duration / 3600)``
    hours (idle hours are zero); events past the horizon clamp into the final
    hour, matching :func:`repro.core.stats.hourly_series`.

    Raises:
        AnalysisError: for an empty trace or negative submit times.
    """
    src = TraceSource.wrap(source)
    if src.is_empty():
        raise AnalysisError("cannot compute hourly dimensions of an empty trace")
    start_s, end_s = src.time_bounds()
    groups = src.hourly_groups(**aggregate_specs)
    return hourly_series_from_groups(groups, start_s, end_s, aggregate_specs)


def hourly_dimensions(trace) -> HourlyDimensions:
    """Aggregate a trace into the three hourly submission dimensions.

    Accepts any :class:`TraceSource`-wrappable representation; runs as one
    chunked group-by scan over ``submit_hour``.
    """
    series = hourly_totals(trace, **HOURLY_DIMENSION_SPECS)
    return HourlyDimensions(
        jobs_per_hour=series["jobs"],
        bytes_per_hour=series["bytes"],
        task_seconds_per_hour=series["task_seconds"],
    )


def hourly_dimensions_from_groups(groups: Dict[int, Dict[str, object]],
                                  start_s: float, end_s: float) -> HourlyDimensions:
    """The Figure-7 dimensions from a shared-scan :class:`HourlyTotalsConsumer`.

    ``groups`` must come from a consumer built with
    :data:`HOURLY_DIMENSION_SPECS`; ``start_s``/``end_s`` are the trace time
    bounds (from the shared scan's summary fold).
    """
    series = hourly_series_from_groups(groups, start_s, end_s, HOURLY_DIMENSION_SPECS)
    return HourlyDimensions(
        jobs_per_hour=series["jobs"],
        bytes_per_hour=series["bytes"],
        task_seconds_per_hour=series["task_seconds"],
    )


def weekly_view(dimensions: HourlyDimensions, week_index: int = 0) -> WeeklyView:
    """Extract one week (168 hours) of the hourly series.

    Traces shorter than a week return however many hours exist (the paper's
    CC-b and CC-e rows cover 9 days for the same reason).

    Raises:
        AnalysisError: when the requested week starts beyond the trace end.
    """
    if week_index < 0:
        raise AnalysisError("week_index must be non-negative")
    hours_per_week = WEEK // HOUR
    start = week_index * hours_per_week
    if start >= dimensions.n_hours:
        raise AnalysisError(
            "week %d starts at hour %d but the trace only has %d hours"
            % (week_index, start, dimensions.n_hours)
        )
    end = min(start + hours_per_week, dimensions.n_hours)
    return WeeklyView(
        start_hour=start,
        series={name: values[start:end] for name, values in dimensions.as_dict().items()},
    )


def diurnal_strength(hourly_values: np.ndarray, threshold: float = 0.15) -> DiurnalAnalysis:
    """Detect a daily periodic component with a discrete Fourier transform.

    The strength is the spectral power in the bins whose period is within
    ±10% of 24 hours, divided by total non-DC power.  Traces shorter than two
    days cannot express a daily period and report zero strength.
    """
    values = np.asarray(hourly_values, dtype=float)
    if values.size < 2 * (DAY // HOUR):
        return DiurnalAnalysis(diurnal_strength=0.0, dominant_period_hours=float("nan"),
                               has_diurnal_pattern=False)
    centered = values - values.mean()
    spectrum = np.abs(np.fft.rfft(centered)) ** 2
    frequencies = np.fft.rfftfreq(values.size, d=1.0)  # cycles per hour
    spectrum[0] = 0.0
    total_power = spectrum.sum()
    if total_power == 0:
        return DiurnalAnalysis(diurnal_strength=0.0, dominant_period_hours=float("nan"),
                               has_diurnal_pattern=False)
    with np.errstate(divide="ignore"):
        periods = np.where(frequencies > 0, 1.0 / frequencies, np.inf)
    daily_band = (periods >= 21.6) & (periods <= 26.4)
    strength = float(spectrum[daily_band].sum() / total_power)
    dominant_index = int(np.argmax(spectrum))
    dominant_period = float(periods[dominant_index])
    return DiurnalAnalysis(
        diurnal_strength=strength,
        dominant_period_hours=dominant_period,
        has_diurnal_pattern=strength >= threshold,
    )


def dimension_correlations(dimensions: HourlyDimensions) -> CorrelationResult:
    """Pairwise Pearson correlations of the three hourly dimensions (Figure 9)."""
    if dimensions.n_hours < 2:
        raise AnalysisError("correlations need at least two hourly samples")
    return CorrelationResult(
        jobs_bytes=pearson_correlation(dimensions.jobs_per_hour, dimensions.bytes_per_hour),
        jobs_task_seconds=pearson_correlation(dimensions.jobs_per_hour,
                                              dimensions.task_seconds_per_hour),
        bytes_task_seconds=pearson_correlation(dimensions.bytes_per_hour,
                                               dimensions.task_seconds_per_hour),
    )
