"""Workload characterization core: the paper's methodology.

Data access patterns (§4), temporal patterns (§5) and compute patterns (§6)
are each covered by a dedicated module; :mod:`repro.core.characterization`
ties them together into a single report per workload.
"""

from .stats import (
    EmpiricalCDF,
    SketchCDF,
    coefficient_of_variation,
    empirical_cdf,
    geometric_mean,
    hourly_series,
    log_bins,
    pearson_correlation,
    percentile,
    percentile_ratio_curve,
    sketch_cdf,
)
from .zipf import (
    RankFrequency,
    column_rank_frequencies,
    fit_zipf_slope,
    rank_frequencies,
    zipf_goodness_of_fit,
)
from .burstiness import BurstinessResult, analyze_burstiness, burstiness_curve, hourly_task_seconds
from .temporal import (
    CorrelationResult,
    DiurnalAnalysis,
    HourlyDimensions,
    WeeklyView,
    dimension_correlations,
    diurnal_strength,
    hourly_dimensions,
    hourly_totals,
    weekly_view,
)
from .datasizes import DataSizeDistributions, analyze_data_sizes, median_spread_orders
from .access import (
    AccessPatternResult,
    ReaccessFractions,
    ReaccessIntervals,
    SizeAccessProfile,
    analyze_access_patterns,
    eighty_x_rule,
    input_rank_frequencies,
    output_rank_frequencies,
    reaccess_fractions,
    reaccess_intervals,
    size_access_profile,
)
from .kmeans import (
    KMeansResult,
    KSelectionResult,
    MiniBatchKMeansResult,
    assign_labels,
    kmeans,
    log_standardize,
    mini_batch_kmeans,
    select_k,
)
from .clustering import ClusteringResult, JobCluster, cluster_jobs, label_centroid
from .naming import (
    FRAMEWORK_KEYWORDS,
    FirstWordBreakdown,
    NamingAnalysis,
    analyze_naming,
    classify_framework,
    first_word_breakdown,
)
from .multiplexing import ConsolidationStudy, consolidate, consolidation_study
from .sharedscan import (
    DEFAULT_CLUSTER_SAMPLE_CAP,
    CharacterizationAnalyses,
    run_characterization_scan,
)
from .profile import (
    DEFAULT_SMALL_JOB_THRESHOLD_BYTES,
    SmallJobCountConsumer,
    WorkloadProfile,
    profile_source,
)
from .comparison import (
    WorkloadFeatures,
    WorkloadSuite,
    cdf_distance,
    features_from_profile,
    select_workload_suite,
    workload_distance,
    workload_features,
)
from .evolution import DimensionShift, EvolutionReport, compare_evolution, evolution_from_profiles
from .federation import FederationReport, PairComparison, compare_catalog
from .report import WorkloadReport, render_table
from .characterization import WorkloadCharacterizer, characterize

__all__ = [
    # stats
    "EmpiricalCDF",
    "SketchCDF",
    "empirical_cdf",
    "sketch_cdf",
    "log_bins",
    "percentile",
    "percentile_ratio_curve",
    "hourly_series",
    "pearson_correlation",
    "coefficient_of_variation",
    "geometric_mean",
    # zipf
    "RankFrequency",
    "rank_frequencies",
    "column_rank_frequencies",
    "fit_zipf_slope",
    "zipf_goodness_of_fit",
    # burstiness
    "BurstinessResult",
    "burstiness_curve",
    "hourly_task_seconds",
    "analyze_burstiness",
    # temporal
    "HourlyDimensions",
    "WeeklyView",
    "DiurnalAnalysis",
    "CorrelationResult",
    "hourly_totals",
    "hourly_dimensions",
    "weekly_view",
    "diurnal_strength",
    "dimension_correlations",
    # data sizes
    "DataSizeDistributions",
    "analyze_data_sizes",
    "median_spread_orders",
    # shared scan
    "CharacterizationAnalyses",
    "run_characterization_scan",
    "DEFAULT_CLUSTER_SAMPLE_CAP",
    # access
    "AccessPatternResult",
    "SizeAccessProfile",
    "ReaccessIntervals",
    "ReaccessFractions",
    "input_rank_frequencies",
    "output_rank_frequencies",
    "size_access_profile",
    "reaccess_intervals",
    "reaccess_fractions",
    "eighty_x_rule",
    "analyze_access_patterns",
    # kmeans / clustering
    "KMeansResult",
    "KSelectionResult",
    "MiniBatchKMeansResult",
    "kmeans",
    "mini_batch_kmeans",
    "assign_labels",
    "select_k",
    "log_standardize",
    "ClusteringResult",
    "JobCluster",
    "cluster_jobs",
    "label_centroid",
    # naming
    "FRAMEWORK_KEYWORDS",
    "classify_framework",
    "FirstWordBreakdown",
    "NamingAnalysis",
    "first_word_breakdown",
    "analyze_naming",
    # multiplexing / consolidation
    "consolidate",
    "ConsolidationStudy",
    "consolidation_study",
    # workload profiles
    "DEFAULT_SMALL_JOB_THRESHOLD_BYTES",
    "SmallJobCountConsumer",
    "WorkloadProfile",
    "profile_source",
    # cross-workload comparison / suites
    "WorkloadFeatures",
    "features_from_profile",
    "workload_features",
    "cdf_distance",
    "workload_distance",
    "WorkloadSuite",
    "select_workload_suite",
    # evolution
    "DimensionShift",
    "EvolutionReport",
    "compare_evolution",
    "evolution_from_profiles",
    # federation
    "FederationReport",
    "PairComparison",
    "compare_catalog",
    # report / characterization
    "WorkloadReport",
    "render_table",
    "WorkloadCharacterizer",
    "characterize",
]
