"""Burstiness metric (§5.2 and Figure 8 of the paper).

The paper measures burstiness by extending the peak-to-average ratio: take the
hourly aggregate of a workload dimension (task-seconds per hour is the one
plotted), normalize by the *median* hourly value, and look at the whole vector
of nth-percentile-to-median ratios rather than only the 100th percentile.
Plotting n against the ratio gives a normalized CDF of arrival rates; the more
horizontal the curve, the burstier the workload.

This module computes that curve plus the scalar summaries quoted in the paper
(peak-to-median ratios between 9:1 and 260:1), and the sine reference signals
used in Figure 8 for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from .stats import percentile, percentile_ratio_curve
from .temporal import hourly_totals

__all__ = ["BurstinessResult", "burstiness_curve", "hourly_task_seconds", "analyze_burstiness"]


@dataclass
class BurstinessResult:
    """Burstiness of one hourly series.

    Attributes:
        curve: (normalized rate, percentile) points — the Figure-8 series.
        peak_to_median: 100th-percentile-to-median ratio.
        p99_to_median: 99th-percentile-to-median ratio.
        p90_to_median: 90th-percentile-to-median ratio.
        hours: number of hourly samples the metric was computed over.
    """

    curve: List[Tuple[float, float]]
    peak_to_median: float
    p99_to_median: float
    p90_to_median: float
    hours: int

    def ratio_at(self, percentile_value: float) -> float:
        """Interpolated normalized rate at the given percentile."""
        percentiles = np.array([point[1] for point in self.curve])
        ratios = np.array([point[0] for point in self.curve])
        return float(np.interp(percentile_value, percentiles, ratios))


def hourly_task_seconds(trace) -> np.ndarray:
    """Hourly sum of per-job task time (map + reduce), keyed by submit hour.

    This is the dimension Figure 8 plots: the task-time demand submitted in
    each hour.  Hours with no submissions contribute zeros.  Accepts any
    :class:`~repro.engine.source.TraceSource`-wrappable representation and
    runs as one chunked group-by scan.
    """
    return hourly_totals(trace, task_seconds=("sum", "total_task_seconds"))["task_seconds"]


def burstiness_curve(hourly_values: Sequence[float], drop_zero_hours: bool = False) -> BurstinessResult:
    """Compute the percentile-to-median burstiness curve of an hourly series.

    Args:
        hourly_values: per-hour totals of any workload dimension.
        drop_zero_hours: when true, hours with zero load are excluded before
            computing percentiles.  The paper normalizes by the median of all
            hours; dropping zeros is useful for short traces where idle hours
            would make the median zero (the ratio is undefined then).

    Raises:
        AnalysisError: if the series is empty or its median is zero.
    """
    values = np.asarray(list(hourly_values), dtype=float)
    if drop_zero_hours:
        values = values[values > 0]
    if values.size == 0:
        raise AnalysisError("burstiness needs at least one hourly sample")
    # Shared lower nearest-rank percentile convention (see repro.core.stats).
    median = percentile(values, 50.0)
    if median == 0:
        raise AnalysisError(
            "hourly median is zero; burstiness ratio undefined "
            "(consider drop_zero_hours=True)"
        )
    curve = percentile_ratio_curve(values)
    return BurstinessResult(
        curve=curve,
        peak_to_median=float(values.max() / median),
        p99_to_median=float(percentile(values, 99.0) / median),
        p90_to_median=float(percentile(values, 90.0) / median),
        hours=int(values.size),
    )


def analyze_burstiness(trace, drop_zero_hours: bool = True) -> BurstinessResult:
    """Burstiness of a trace's hourly task-time series (the Figure-8 metric).

    Accepts any :class:`~repro.engine.source.TraceSource`-wrappable
    representation (chunked stores included).
    """
    return burstiness_curve(hourly_task_seconds(trace), drop_zero_hours=drop_zero_hours)
