"""One-scan workload profiles: the shared substrate of §4.1, §5 and §7.

:func:`workload_features` (cross-workload comparison, §7) and
:func:`compare_evolution` (snapshot evolution, §4.1) read the same handful of
per-workload quantities — size distributions, the hourly submission series,
burstiness, diurnality, naming — but historically each recomputed them with
its own scans.  :func:`profile_source` folds all of them over **one** pass of
the source and returns a :class:`WorkloadProfile` both layers (and the
federation layer, :mod:`repro.core.federation`) read from.  Per paper §7 this
is exactly the per-cluster row the seven-cluster comparison needs.

Equality contract (same as :mod:`repro.core.sharedscan`): every consumer is
the exact fold its standalone entry point runs, so a profile's fields match
the per-analysis results bit-for-bit — serial or parallel, cold or resumed
from a checkpoint.  Materialized sources keep their exact whole-column paths
(sorting-based CDFs and exact medians); store-backed sources fold mergeable
sketches with memory bounded by chunk size.

Store-backed profiles are **checkpointable** exactly like the
characterization scan: ``checkpoint_to=`` persists every consumer's fold
state with the store's chunk watermark, and after an append ``resume_from=``
folds only the new chunks — bit-identical to a cold rescan.  The federation
layer uses this to keep per-member incremental comparisons cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..engine.pipeline import (
    ChunkConsumer,
    ScanChunk,
    SummaryConsumer,
    run_resumable_scan,
)
from ..engine.source import TraceSource
from ..traces.trace import TraceSummary
from ..errors import AnalysisError
from ..units import GB
from .burstiness import BurstinessResult, analyze_burstiness, burstiness_curve
from .datasizes import DataSizeConsumer, DataSizeDistributions, analyze_data_sizes
from .naming import NamingAnalysis, NamingConsumer, analyze_naming
from .temporal import (
    HOURLY_DIMENSION_SPECS,
    CorrelationResult,
    DiurnalAnalysis,
    HourlyDimensions,
    HourlyTotalsConsumer,
    dimension_correlations,
    diurnal_strength,
    hourly_dimensions,
    hourly_dimensions_from_groups,
)

__all__ = [
    "DEFAULT_SMALL_JOB_THRESHOLD_BYTES",
    "SmallJobCountConsumer",
    "WorkloadProfile",
    "profile_consumers",
    "profile_from_scan",
    "profile_source",
]

#: The paper's small-job byte threshold (total I/O at or below 10 GB).
DEFAULT_SMALL_JOB_THRESHOLD_BYTES = 10 * GB


class SmallJobCountConsumer(ChunkConsumer):
    """Shared-scan fold for the small-job fraction: exact threshold count.

    Counts jobs whose derived ``total_bytes`` is at or below the threshold
    (unrecorded sizes count as 0, exactly like ``Job.total_bytes``).  Both
    counts are exact integers, so the finalized fraction is bit-identical to
    the per-job loop regardless of chunking or merge order.
    """

    columns = ("total_bytes",)
    resumable = True

    def __init__(self, threshold_bytes: float, name: str = "small_jobs"):
        self.name = name
        self.threshold_bytes = float(threshold_bytes)

    def make_state(self):
        return {"n_small": 0, "n_rows": 0}

    def snapshot(self, state) -> Dict[str, object]:
        return {"n_small": int(state["n_small"]), "n_rows": int(state["n_rows"]),
                "threshold_bytes": float(self.threshold_bytes)}

    def restore(self, payload: Dict[str, object]):
        threshold = payload.get("threshold_bytes")
        if threshold is None or float(threshold) != self.threshold_bytes:
            raise AnalysisError(
                "small-job count was checkpointed at threshold %r, not %r"
                % (threshold, self.threshold_bytes))
        return {"n_small": int(payload["n_small"]), "n_rows": int(payload["n_rows"])}

    def fold(self, state, chunk: ScanChunk):
        if chunk.n_rows:
            state["n_small"] += int(np.count_nonzero(
                chunk.column("total_bytes") <= self.threshold_bytes))
            state["n_rows"] += chunk.n_rows
        return state

    def merge(self, a, b):
        a["n_small"] += b["n_small"]
        a["n_rows"] += b["n_rows"]
        return a

    def finalize(self, state) -> Dict[str, int]:
        return {"n_small": int(state["n_small"]), "n_rows": int(state["n_rows"])}


@dataclass
class WorkloadProfile:
    """Everything one workload contributes to a cross-workload comparison.

    Attributes:
        workload: profile name (a catalog member name for federated scans —
            may differ from the store's own workload name).
        n_jobs: job count.
        summary: the Table-1 summary (time bounds, byte/task-second totals).
        sizes: Figure-1 per-job size distributions.
        hourly: Figure-7 hourly submission series.
        burstiness: Figure-8 burstiness of the task-second series
            (``drop_zero_hours=True``, the comparison convention).
        correlations: Figure-9 correlation triplet, ``None`` when the trace
            spans fewer than two hours.
        diurnal: Fourier diurnality of the task-second series.
        naming: Figure-10 naming analysis, ``None`` when the trace records no
            job names (the comparison then scores ``framework_share`` 0).
        small_job_fraction: fraction of jobs at or below the threshold.
        small_job_threshold_bytes: the threshold the fraction was counted at.
        resume: checkpoint-resume report (see
            :class:`~repro.core.sharedscan.CharacterizationAnalyses`), or
            ``None`` for a plain full scan.
        checkpoint_path: where the post-scan checkpoint was saved, if asked.
        chunks_scanned / rows_scanned: decode work metered by the scan (0 for
            materialized sources).
    """

    workload: str
    n_jobs: int
    summary: TraceSummary
    sizes: DataSizeDistributions
    hourly: HourlyDimensions
    burstiness: BurstinessResult
    correlations: Optional[CorrelationResult]
    diurnal: DiurnalAnalysis
    naming: Optional[NamingAnalysis]
    small_job_fraction: float
    small_job_threshold_bytes: float
    resume: Optional[Dict[str, object]] = None
    checkpoint_path: Optional[str] = None
    chunks_scanned: int = 0
    rows_scanned: int = 0

    @property
    def framework_share(self) -> float:
        """Job-weighted share of query-like frameworks (0 without names)."""
        if self.naming is None:
            return 0.0
        return self.naming.framework_share("jobs")


def profile_source(trace, small_job_threshold_bytes: float = DEFAULT_SMALL_JOB_THRESHOLD_BYTES,
                   name: Optional[str] = None, executor=None,
                   resume_from=None, checkpoint_to: Optional[str] = None) -> WorkloadProfile:
    """Profile one workload in a single shared scan.

    Args:
        trace: any :class:`TraceSource`-wrappable representation.
        small_job_threshold_bytes: byte threshold of the small-job fraction.
        name: profile name override (catalog member names differ from store
            workload names); defaults to the source's own name.
        executor: optional :class:`~repro.engine.parallel.ParallelExecutor`
            fanning the chunk scan over workers (store-backed sources only).
        resume_from: a :class:`~repro.engine.pipeline.Checkpoint` (or path)
            from an earlier profile of the same store; only appended chunks
            are folded.  Results are bit-identical to a cold rescan.
        checkpoint_to: save a fresh checkpoint covering the whole store.

    Raises:
        AnalysisError: for an empty trace, or checkpoint arguments against a
            materialized source.
    """
    source = TraceSource.wrap(trace)
    profile_name = source.name if name is None else str(name)
    if source.is_empty():
        raise AnalysisError("cannot profile the empty trace %r" % (profile_name,))
    if not source.is_streaming:
        if resume_from is not None or checkpoint_to is not None:
            raise AnalysisError(
                "profile checkpoints require a store-backed source; %r is "
                "materialized (there is no chunk watermark to resume from)"
                % (profile_name,))
        return _profile_materialized(source, profile_name, small_job_threshold_bytes)
    return _profile_streaming(source, profile_name, small_job_threshold_bytes,
                              executor, resume_from, checkpoint_to)


def _finish_profile(profile_name: str, summary: TraceSummary,
                    sizes: DataSizeDistributions, dims: HourlyDimensions,
                    burstiness: BurstinessResult, naming: Optional[NamingAnalysis],
                    small_fraction: float, threshold: float) -> WorkloadProfile:
    """Derivations shared by both paths (correlations, diurnality)."""
    correlations = dimension_correlations(dims) if dims.n_hours >= 2 else None
    diurnal = diurnal_strength(dims.task_seconds_per_hour)
    return WorkloadProfile(
        workload=profile_name,
        n_jobs=summary.n_jobs,
        summary=summary,
        sizes=sizes,
        hourly=dims,
        burstiness=burstiness,
        correlations=correlations,
        diurnal=diurnal,
        naming=naming,
        small_job_fraction=small_fraction,
        small_job_threshold_bytes=float(threshold),
    )


# ---------------------------------------------------------------------------
# Materialized: standalone entry points (exact whole-column paths preserved)
# ---------------------------------------------------------------------------
def _profile_materialized(source: TraceSource, profile_name: str,
                          threshold: float) -> WorkloadProfile:
    summary = source.summary()
    sizes = analyze_data_sizes(source)
    burstiness = analyze_burstiness(source, drop_zero_hours=True)
    dims = hourly_dimensions(source)

    small_jobs = 0
    for block in source.iter_chunks(columns=["total_bytes"]):
        if block.n_rows:
            # The derived total_bytes column treats unrecorded sizes as 0,
            # exactly like Job.total_bytes.
            small_jobs += int(np.count_nonzero(block.column("total_bytes") <= threshold))
    small_fraction = small_jobs / len(source)

    try:
        naming = analyze_naming(source)
    except AnalysisError:
        naming = None
    return _finish_profile(profile_name, summary, sizes, dims, burstiness,
                           naming, small_fraction, threshold)


# ---------------------------------------------------------------------------
# Streaming: one pipeline, every quantity a consumer
# ---------------------------------------------------------------------------
def profile_consumers(source: TraceSource, profile_name: str,
                      threshold: float = DEFAULT_SMALL_JOB_THRESHOLD_BYTES) -> List[ChunkConsumer]:
    """Fresh consumer list for one profile scan (the streaming fold set).

    The federation layer hands this (via a picklable partial) to
    :meth:`~repro.engine.federation.FederatedSource.scan` so every member
    store folds its own states; :func:`profile_from_scan` reads the profile
    back out of the member's :class:`~repro.engine.pipeline.PipelineResult`.
    """
    consumers: List[ChunkConsumer] = [
        SummaryConsumer(trace_name=source.name, machines=source.machines),
        DataSizeConsumer(workload=profile_name),
        HourlyTotalsConsumer(HOURLY_DIMENSION_SPECS),
        SmallJobCountConsumer(threshold),
    ]
    if source.has_column("name"):
        consumers.append(NamingConsumer(has_framework=source.has_column("framework"),
                                        workload=profile_name))
    return consumers


def profile_from_scan(merged, profile_name: str, threshold: float) -> WorkloadProfile:
    """Read a :class:`WorkloadProfile` out of a completed profile scan.

    ``merged`` is the :class:`~repro.engine.pipeline.PipelineResult` of a
    scan over the consumers built by :func:`profile_consumers`.  Re-raises
    the recorded error of any required consumer; a missing or errored naming
    fold degrades to ``naming=None`` (framework share 0), matching the
    standalone entry points.
    """
    summary: TraceSummary = merged.value("summary")
    sizes: DataSizeDistributions = merged.value("data_sizes")
    groups = merged.value("hourly")
    dims = hourly_dimensions_from_groups(groups, summary.start_s, summary.end_s)
    burstiness = burstiness_curve(dims.task_seconds_per_hour, drop_zero_hours=True)
    counts = merged.value("small_jobs")
    small_fraction = counts["n_small"] / counts["n_rows"]
    naming: Optional[NamingAnalysis] = None
    if "naming" not in merged.errors:
        naming = merged.results.get("naming")

    profile = _finish_profile(profile_name, summary, sizes, dims, burstiness,
                              naming, small_fraction, threshold)
    profile.chunks_scanned = merged.chunks_scanned
    profile.rows_scanned = merged.rows_scanned
    return profile


def _profile_streaming(source: TraceSource, profile_name: str, threshold: float,
                       executor, resume_from,
                       checkpoint_to: Optional[str]) -> WorkloadProfile:
    consumers = profile_consumers(source, profile_name, threshold)
    merged, resume_report, checkpoint_path = run_resumable_scan(
        source, consumers, executor=executor, resume_from=resume_from,
        checkpoint_to=checkpoint_to, meta={"workload": source.name})
    profile = profile_from_scan(merged, profile_name, threshold)
    profile.resume = resume_report
    profile.checkpoint_path = checkpoint_path
    return profile
