"""Job clustering pipeline (Table 2 of the paper).

This module applies the k-means machinery of :mod:`repro.core.kmeans` to a
trace: it builds the six-dimensional job description (input, shuffle and
output bytes; duration; map and reduce task time), selects k automatically,
and labels each resulting cluster with a human-readable description following
the paper's vocabulary ("Small jobs", "Map only transform", "Aggregate",
"Expand and aggregate", ...), producing a Table-2-style summary.

Any :class:`~repro.engine.source.TraceSource`-wrappable representation is
accepted.  The default (``method="exact"``) gathers the feature matrix from
chunked column batches — 48 bytes/job, three orders of magnitude lighter than
materialized ``Job`` objects — and runs full vectorized k-means, so results
are identical across representations.  ``method="minibatch"`` never holds the
matrix at all: it trains with :func:`~repro.core.kmeans.mini_batch_kmeans`
over streamed batches and reads per-cluster median centroids out of mergeable
log-histogram sketches (bin-resolution accurate), keeping memory bounded by
one chunk for arbitrarily large stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.aggregates import HistogramSketch
from ..engine.pipeline import ChunkConsumer, ScanChunk
from ..engine.source import TraceSource
from ..errors import ClusteringError
from ..traces.schema import FEATURE_DIMENSIONS, NUMERIC_DIMENSIONS
from ..units import GB, HOUR, MINUTE, format_bytes, format_duration
from .kmeans import (
    KMeansResult,
    KSelectionResult,
    assign_labels,
    kmeans,
    log_standardize,
    mini_batch_kmeans,
    select_k,
)

__all__ = ["JobCluster", "ClusteringResult", "FeatureMatrixConsumer", "cluster_jobs",
           "label_centroid", "small_job_fraction"]


class FeatureMatrixConsumer(ChunkConsumer):
    """Shared-scan fold gathering the (n_jobs, 6) k-means feature matrix.

    Chunks contribute ``np.column_stack`` batches (missing values as zero,
    exactly like :meth:`TraceSource.feature_batches`); partials re-assemble in
    chunk order, so the matrix is identical to a standalone gather.  Feed the
    result to :func:`cluster_jobs` via its ``features`` argument to cluster a
    store without a second scan.
    """

    columns = tuple(NUMERIC_DIMENSIONS)
    resumable = True

    def __init__(self, name: str = "features"):
        self.name = name

    def make_state(self):
        return []  # [(chunk index, (rows, 6) batch)]

    def snapshot(self, state) -> Dict[str, object]:
        # The assembled prefix matrix; restored as a single pseudo-batch at
        # index -1 so appended chunks (global indices >= watermark) sort
        # after it and ``finalize`` stacks rows in the original order.
        return {"matrix": self.finalize(state)}

    def restore(self, payload):
        matrix = np.asarray(payload["matrix"], dtype=float)
        return [(-1, matrix.copy())] if matrix.size else []

    def fold(self, state, chunk: ScanChunk):
        batch = np.column_stack([
            np.where(np.isnan(chunk.column(dim)), 0.0, chunk.column(dim))
            for dim in NUMERIC_DIMENSIONS])
        state.append((chunk.index, batch))
        return state

    def merge(self, a, b):
        a.extend(b)
        return a

    def finalize(self, state) -> np.ndarray:
        if not state:
            return np.zeros((0, len(NUMERIC_DIMENSIONS)))
        return np.vstack([batch for _index, batch in sorted(state, key=lambda p: p[0])])


@dataclass
class JobCluster:
    """One Table-2 row: a cluster of similarly behaving jobs.

    Attributes:
        label: human-readable description of the cluster.
        n_jobs: number of jobs in the cluster.
        centroid: per-dimension medians of the member jobs in natural units
            (bytes, seconds, task-seconds) — more robust and more comparable
            to the paper's table than means over heavy-tailed members.
        fraction: cluster size divided by total job count.
    """

    label: str
    n_jobs: int
    centroid: Tuple[float, float, float, float, float, float]
    fraction: float

    def as_row(self) -> List[str]:
        """Render as a Table-2 style row of strings."""
        input_b, shuffle_b, output_b, duration, map_s, reduce_s = self.centroid
        return [
            str(self.n_jobs),
            format_bytes(input_b),
            format_bytes(shuffle_b),
            format_bytes(output_b),
            format_duration(duration),
            "%d" % round(map_s),
            "%d" % round(reduce_s),
            self.label,
        ]


@dataclass
class ClusteringResult:
    """Full clustering output for one workload.

    Attributes:
        workload: workload name.
        clusters: clusters sorted by decreasing size (Table 2 ordering).
        k_selection: the k-sweep record (inertia per k, chosen k).
        small_job_fraction: fraction of jobs in clusters labelled small.
    """

    workload: str
    clusters: List[JobCluster]
    k_selection: KSelectionResult
    small_job_fraction: float

    @property
    def k(self) -> int:
        return len(self.clusters)


def label_centroid(centroid: Sequence[float]) -> str:
    """Assign a paper-style label to a 6-D centroid (natural units).

    The rules follow the vocabulary of Table 2:

    * jobs touching under ~10 GB of total data and finishing within minutes
      are "Small jobs";
    * jobs with no shuffle and no reduce time are "Map only" (summary when the
      output is much smaller than the input, transform otherwise);
    * otherwise the input:output ratio decides between "Aggregate" (output
      much smaller), "Expand" (output much larger) and "Transform";
    * long-duration jobs gain a duration qualifier.
    """
    input_b, shuffle_b, output_b, duration, map_s, reduce_s = [float(v) for v in centroid]
    total_data = input_b + shuffle_b + output_b

    # The paper's own Table 2 labels clusters with centroids of up to ~10 GB of
    # combined data and minutes-scale durations as "Small jobs" (e.g. CC-c);
    # the thresholds below reproduce that labelling.
    if total_data < 30 * GB and duration < 15 * MINUTE:
        return "Small jobs"

    if shuffle_b == 0 and reduce_s == 0:
        if output_b < input_b / 100.0:
            base = "Map only summary"
        else:
            base = "Map only transform"
    else:
        if output_b < input_b / 10.0:
            base = "Aggregate"
        elif output_b > input_b * 10.0:
            base = "Expand"
        else:
            base = "Transform"
        if shuffle_b > 0 and output_b < shuffle_b / 50.0 and base != "Aggregate":
            base = "%s and aggregate" % base

    if duration >= 12 * HOUR:
        return "%s, long (%s)" % (base, format_duration(duration))
    if duration >= 2 * HOUR:
        return "%s, %s" % (base, format_duration(duration))
    return base


def small_job_fraction(result: "ClusteringResult") -> float:
    """Fraction of jobs in clusters labelled "Small jobs" (paper: >92%)."""
    total = sum(cluster.n_jobs for cluster in result.clusters)
    if total == 0:
        return 0.0
    small = sum(cluster.n_jobs for cluster in result.clusters if cluster.label == "Small jobs")
    return small / total


def cluster_jobs(trace, k: Optional[int] = None, max_k: int = 12, seed: int = 0,
                 improvement_threshold: float = 0.10,
                 rng: Optional[np.random.Generator] = None,
                 method: str = "exact",
                 features: Optional[np.ndarray] = None) -> ClusteringResult:
    """Cluster a trace's jobs into Table-2 style job types.

    Args:
        trace: the workload trace, in any :class:`TraceSource`-wrappable
            representation.
        k: fixed number of clusters; when ``None`` the paper's
            diminishing-returns rule picks it automatically.
        max_k: upper bound of the automatic k sweep.
        seed: RNG seed for k-means.
        improvement_threshold: relative inertia-improvement cutoff of the
            automatic rule.
        rng: explicit generator for k-means++ seeding (overrides ``seed``).
        method: ``"exact"`` (default — gather the feature matrix from column
            batches, full k-means, representation-independent results) or
            ``"minibatch"`` (stream batches through mini-batch k-means with
            sketch-backed median centroids; needs an explicit ``k``; memory
            bounded by one chunk).
        features: optional pre-gathered (n_jobs, 6) feature matrix (e.g. from
            a shared-scan :class:`FeatureMatrixConsumer`), skipping the
            feature-gather scan; must match :meth:`TraceSource.feature_matrix`
            of ``trace``.  Ignored by ``method="minibatch"``.

    Raises:
        ClusteringError: for an empty trace, an invalid fixed ``k``, or
            ``method="minibatch"`` without ``k``.
    """
    source = TraceSource.wrap(trace)
    if source.is_empty():
        raise ClusteringError("cannot cluster an empty trace")
    if method == "minibatch":
        return _cluster_jobs_minibatch(source, k, seed=seed, rng=rng)
    if method != "exact":
        raise ClusteringError("unknown clustering method %r" % (method,))

    if features is None:
        features = source.feature_matrix()
    scaled = log_standardize(features)

    if k is not None:
        result = kmeans(scaled, k, seed=seed, rng=rng)
        selection = KSelectionResult(chosen_k=k, inertias=[(k, result.inertia)], result=result)
    else:
        selection = select_k(scaled, max_k=max_k, seed=seed,
                             improvement_threshold=improvement_threshold, rng=rng)
        result = selection.result

    clusters: List[JobCluster] = []
    total_jobs = features.shape[0]
    for cluster_index in range(result.k):
        member_mask = result.labels == cluster_index
        n_members = int(member_mask.sum())
        if n_members == 0:
            continue
        members = features[member_mask]
        centroid = tuple(float(np.median(members[:, dim])) for dim in range(len(FEATURE_DIMENSIONS)))
        clusters.append(
            JobCluster(
                label=label_centroid(centroid),
                n_jobs=n_members,
                centroid=centroid,  # type: ignore[arg-type]
                fraction=n_members / total_jobs,
            )
        )
    clusters.sort(key=lambda cluster: cluster.n_jobs, reverse=True)
    clustering = ClusteringResult(
        workload=source.name,
        clusters=clusters,
        k_selection=selection,
        small_job_fraction=0.0,
    )
    clustering.small_job_fraction = small_job_fraction(clustering)
    return clustering


def _cluster_jobs_minibatch(source: TraceSource, k: Optional[int], seed: int,
                            rng: Optional[np.random.Generator]) -> ClusteringResult:
    """Bounded-memory clustering: mini-batch training + sketch centroids."""
    if k is None:
        raise ClusteringError("method='minibatch' needs an explicit k "
                              "(the elbow sweep would re-stream the store per k)")
    n_dims = len(FEATURE_DIMENSIONS)

    # Pass 1: global log-standardization statistics (exact, one scan).
    count = 0
    sums = np.zeros(n_dims)
    sum_squares = np.zeros(n_dims)
    for batch in source.feature_batches():
        logged = np.log10(np.maximum(batch, 1.0))
        count += logged.shape[0]
        sums += logged.sum(axis=0)
        sum_squares += (logged ** 2).sum(axis=0)
    if count == 0:
        raise ClusteringError("cannot cluster an empty trace")
    if k > count:
        raise ClusteringError("k=%d exceeds the number of points (%d)" % (k, count))
    means = sums / count
    variances = np.maximum(sum_squares / count - means ** 2, 0.0)
    stds = np.sqrt(variances)
    stds[stds == 0] = 1.0

    def scaled_batches():
        for raw in source.feature_batches():
            yield (np.log10(np.maximum(raw, 1.0)) - means) / stds

    # Pass 2: mini-batch training over the scaled stream.
    trained = mini_batch_kmeans(scaled_batches(), k, seed=seed, rng=rng)

    # Pass 3: final assignment — counts plus per-(cluster, dimension) median
    # sketches over the *natural-unit* features.
    counts = np.zeros(k, dtype=np.int64)
    inertia = 0.0
    sketches = [[HistogramSketch() for _ in range(n_dims)] for _ in range(k)]
    for raw in source.feature_batches():
        scaled = (np.log10(np.maximum(raw, 1.0)) - means) / stds
        labels, assigned_sq = assign_labels(scaled, trained.centroids)
        inertia += float(assigned_sq.sum())
        counts += np.bincount(labels, minlength=k)
        for cluster_index in np.unique(labels):
            members = raw[labels == cluster_index]
            for dim in range(n_dims):
                sketches[cluster_index][dim].update(members[:, dim])

    clusters: List[JobCluster] = []
    for cluster_index in range(k):
        n_members = int(counts[cluster_index])
        if n_members == 0:
            continue
        centroid = tuple(
            float(sketches[cluster_index][dim].percentile(50.0) or 0.0)
            for dim in range(n_dims)
        )
        clusters.append(JobCluster(
            label=label_centroid(centroid),
            n_jobs=n_members,
            centroid=centroid,  # type: ignore[arg-type]
            fraction=n_members / count,
        ))
    clusters.sort(key=lambda cluster: cluster.n_jobs, reverse=True)
    final = KMeansResult(
        centroids=trained.centroids,
        labels=np.zeros(0, dtype=int),  # per-point labels are never retained
        inertia=inertia,
        n_iterations=trained.n_batches,
        converged=True,
    )
    clustering = ClusteringResult(
        workload=source.name,
        clusters=clusters,
        k_selection=KSelectionResult(chosen_k=k, inertias=[(k, inertia)], result=final),
        small_job_fraction=0.0,
    )
    clustering.small_job_fraction = small_job_fraction(clustering)
    return clustering
