"""k-means clustering with automatic selection of k (§6.2 of the paper).

The paper groups jobs by their six-dimensional numeric description (input,
shuffle and output bytes; duration; map and reduce task time) using k-means,
choosing k by incrementing it until the decrease in intra-cluster (residual)
variance shows diminishing returns.  This module implements:

* k-means from scratch on numpy arrays with k-means++ seeding;
* the elbow-style k selection rule;
* feature scaling appropriate for job dimensions that span many orders of
  magnitude (log transform + standardization), since raw byte values would
  let the largest dimension dominate Euclidean distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ClusteringError

__all__ = ["KMeansResult", "KSelectionResult", "kmeans", "select_k", "log_standardize"]


@dataclass
class KMeansResult:
    """Result of one k-means run.

    Attributes:
        centroids: (k, d) array of cluster centers in the *input* feature space.
        labels: cluster index of each point.
        inertia: total within-cluster sum of squared distances.
        n_iterations: iterations until convergence.
        converged: whether the assignment stopped changing before the limit.
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iterations: int
    converged: bool

    @property
    def k(self) -> int:
        return int(self.centroids.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each cluster."""
        return np.bincount(self.labels, minlength=self.k)


@dataclass
class KSelectionResult:
    """Result of the automatic k selection sweep.

    Attributes:
        chosen_k: the selected number of clusters.
        inertias: mapping of k -> inertia for every k tried, in order.
        result: the :class:`KMeansResult` at the chosen k.
    """

    chosen_k: int
    inertias: List[Tuple[int, float]]
    result: KMeansResult


def log_standardize(features: np.ndarray, floor: float = 1.0) -> np.ndarray:
    """Log-transform and standardize a feature matrix.

    Byte and second dimensions span 10+ orders of magnitude, so distances in
    raw space are meaningless.  Each column is mapped to
    ``log10(max(x, floor))`` and then standardized to zero mean / unit
    variance (constant columns are left at zero).
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ClusteringError("feature matrix must be 2-D")
    logged = np.log10(np.maximum(features, floor))
    means = logged.mean(axis=0)
    stds = logged.std(axis=0)
    stds[stds == 0] = 1.0
    return (logged - means) / stds


def _kmeans_plus_plus(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to distance²."""
    n_points = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=float)
    first = int(rng.integers(n_points))
    centroids[0] = points[first]
    closest_sq = np.full(n_points, np.inf)
    for index in range(1, k):
        distances = np.sum((points - centroids[index - 1]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, distances)
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with an existing centroid.
            centroids[index:] = points[int(rng.integers(n_points))]
            break
        probabilities = closest_sq / total
        pick = int(rng.choice(n_points, p=probabilities))
        centroids[index] = points[pick]
    return centroids


def kmeans(points: np.ndarray, k: int, seed: int = 0, max_iterations: int = 300,
           tolerance: float = 1e-6, n_init: int = 3) -> KMeansResult:
    """Run k-means with k-means++ seeding; keep the best of ``n_init`` restarts.

    Args:
        points: (n, d) feature matrix (already scaled appropriately).
        k: number of clusters; must not exceed the number of points.
        seed: RNG seed (each restart derives its own stream from it).
        max_iterations: iteration cap per restart.
        tolerance: relative inertia improvement below which a run stops.
        n_init: number of restarts.

    Raises:
        ClusteringError: for an empty matrix, k < 1 or k > n.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ClusteringError("k-means needs a non-empty 2-D feature matrix")
    n_points = points.shape[0]
    if k < 1:
        raise ClusteringError("k must be at least 1")
    if k > n_points:
        raise ClusteringError("k=%d exceeds the number of points (%d)" % (k, n_points))

    best: Optional[KMeansResult] = None
    for restart in range(max(1, n_init)):
        rng = np.random.default_rng(seed + restart * 7919)
        result = _kmeans_single(points, k, rng, max_iterations, tolerance)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def _kmeans_single(points: np.ndarray, k: int, rng: np.random.Generator,
                   max_iterations: int, tolerance: float) -> KMeansResult:
    centroids = _kmeans_plus_plus(points, k, rng)
    labels = np.zeros(points.shape[0], dtype=int)
    previous_inertia = np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # Assignment step.
        distances = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
        labels = np.argmin(distances, axis=1)
        inertia = float(np.sum(distances[np.arange(points.shape[0]), labels] ** 2))
        # Update step; re-seed empty clusters on the farthest points.
        for cluster in range(k):
            members = points[labels == cluster]
            if members.shape[0] == 0:
                farthest = int(np.argmax(distances[np.arange(points.shape[0]), labels]))
                centroids[cluster] = points[farthest]
            else:
                centroids[cluster] = members.mean(axis=0)
        if previous_inertia - inertia <= tolerance * max(previous_inertia, 1e-12):
            converged = True
            previous_inertia = inertia
            break
        previous_inertia = inertia
    return KMeansResult(
        centroids=centroids.copy(),
        labels=labels.copy(),
        inertia=float(previous_inertia),
        n_iterations=iteration,
        converged=converged,
    )


def select_k(points: np.ndarray, max_k: int = 12, seed: int = 0,
             improvement_threshold: float = 0.10, min_k: int = 1) -> KSelectionResult:
    """Choose k by the paper's diminishing-returns rule.

    k is incremented from ``min_k``; for each step the relative decrease in
    residual variance (inertia) is measured, and the sweep stops at the first
    k whose improvement over k-1 falls below ``improvement_threshold`` (the
    previous k is chosen), or at ``max_k``.

    Raises:
        ClusteringError: if the matrix is empty or ``max_k`` < ``min_k``.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ClusteringError("k selection needs a non-empty 2-D feature matrix")
    if max_k < min_k:
        raise ClusteringError("max_k must be >= min_k")
    max_k = min(max_k, points.shape[0])
    min_k = min(min_k, max_k)

    inertias: List[Tuple[int, float]] = []
    results = {}
    chosen = min_k
    previous_inertia: Optional[float] = None
    for k in range(min_k, max_k + 1):
        result = kmeans(points, k, seed=seed)
        results[k] = result
        inertias.append((k, result.inertia))
        if previous_inertia is not None and previous_inertia > 0:
            improvement = (previous_inertia - result.inertia) / previous_inertia
            if improvement < improvement_threshold:
                chosen = k - 1
                break
        chosen = k
        previous_inertia = result.inertia
        if result.inertia == 0.0:
            break
    return KSelectionResult(chosen_k=chosen, inertias=inertias, result=results[chosen])
