"""k-means clustering with automatic selection of k (§6.2 of the paper).

The paper groups jobs by their six-dimensional numeric description (input,
shuffle and output bytes; duration; map and reduce task time) using k-means,
choosing k by incrementing it until the decrease in intra-cluster (residual)
variance shows diminishing returns.  This module implements:

* k-means from scratch on numpy arrays with k-means++ seeding, with the
  assignment and update steps fully vectorized (the (n, k) squared-distance
  matrix comes from the Gram expansion ``|x|² + |c|² - 2x·c`` — no (n, k, d)
  tensor — and per-cluster sums from ``bincount``), so a million-job
  assignment is a handful of BLAS calls rather than per-point Python work;
* mini-batch k-means (:func:`mini_batch_kmeans`) for training on chunked
  column batches streamed from an out-of-core store;
* the elbow-style k selection rule;
* feature scaling appropriate for job dimensions that span many orders of
  magnitude (log transform + standardization), since raw byte values would
  let the largest dimension dominate Euclidean distance.

Randomness: every entry point accepts either a ``seed`` (each restart derives
its own stream, the historical behaviour) or an explicit ``rng``
(:class:`numpy.random.Generator`), which makes k-means++ seeding deterministic
under caller-controlled generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ClusteringError

__all__ = [
    "KMeansResult",
    "KSelectionResult",
    "MiniBatchKMeansResult",
    "kmeans",
    "mini_batch_kmeans",
    "assign_labels",
    "select_k",
    "log_standardize",
]


@dataclass
class KMeansResult:
    """Result of one k-means run.

    Attributes:
        centroids: (k, d) array of cluster centers in the *input* feature space.
        labels: cluster index of each point.
        inertia: total within-cluster sum of squared distances.
        n_iterations: iterations until convergence.
        converged: whether the assignment stopped changing before the limit.
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iterations: int
    converged: bool

    @property
    def k(self) -> int:
        return int(self.centroids.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each cluster."""
        return np.bincount(self.labels, minlength=self.k)


@dataclass
class KSelectionResult:
    """Result of the automatic k selection sweep.

    Attributes:
        chosen_k: the selected number of clusters.
        inertias: mapping of k -> inertia for every k tried, in order.
        result: the :class:`KMeansResult` at the chosen k.
    """

    chosen_k: int
    inertias: List[Tuple[int, float]]
    result: KMeansResult


@dataclass
class MiniBatchKMeansResult:
    """Result of a mini-batch k-means training pass over chunked batches.

    Attributes:
        centroids: (k, d) array of trained cluster centers.
        n_points: total points consumed across all batches.
        n_batches: number of batches processed.
        inertia: sum over batches of the assignment-time squared distances
            (an online proxy for the full inertia — centers move after each
            batch, so this is not the final-assignment inertia).
    """

    centroids: np.ndarray
    n_points: int
    n_batches: int
    inertia: float

    @property
    def k(self) -> int:
        return int(self.centroids.shape[0])


def log_standardize(features: np.ndarray, floor: float = 1.0) -> np.ndarray:
    """Log-transform and standardize a feature matrix.

    Byte and second dimensions span 10+ orders of magnitude, so distances in
    raw space are meaningless.  Each column is mapped to
    ``log10(max(x, floor))`` and then standardized to zero mean / unit
    variance (constant columns are left at zero).
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ClusteringError("feature matrix must be 2-D")
    logged = np.log10(np.maximum(features, floor))
    means = logged.mean(axis=0)
    stds = logged.std(axis=0)
    stds[stds == 0] = 1.0
    return (logged - means) / stds


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """(n, k) squared Euclidean distances via the Gram expansion (no tensor)."""
    point_sq = np.einsum("ij,ij->i", points, points)
    centroid_sq = np.einsum("ij,ij->i", centroids, centroids)
    cross = points @ centroids.T
    distances = point_sq[:, None] + centroid_sq[None, :] - 2.0 * cross
    # The expansion can go a hair negative for near-coincident points.
    np.maximum(distances, 0.0, out=distances)
    return distances


def assign_labels(points: np.ndarray, centroids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Assign each point to its nearest centroid.

    Returns ``(labels, squared_distances_to_assigned)`` — the vectorized
    assignment step shared by batch k-means, mini-batch training, and the
    streaming per-chunk assignment pass in :mod:`repro.core.clustering`.
    """
    points = np.asarray(points, dtype=float)
    distances = _squared_distances(points, np.asarray(centroids, dtype=float))
    labels = np.argmin(distances, axis=1)
    assigned = distances[np.arange(points.shape[0]), labels]
    return labels, assigned


def _kmeans_plus_plus(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to distance²."""
    n_points = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=float)
    first = int(rng.integers(n_points))
    centroids[0] = points[first]
    closest_sq = np.full(n_points, np.inf)
    for index in range(1, k):
        distances = np.sum((points - centroids[index - 1]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, distances)
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with an existing centroid.
            centroids[index:] = points[int(rng.integers(n_points))]
            break
        probabilities = closest_sq / total
        pick = int(rng.choice(n_points, p=probabilities))
        centroids[index] = points[pick]
    return centroids


def kmeans(points: np.ndarray, k: int, seed: int = 0, max_iterations: int = 300,
           tolerance: float = 1e-6, n_init: int = 3,
           rng: Optional[np.random.Generator] = None) -> KMeansResult:
    """Run k-means with k-means++ seeding; keep the best of ``n_init`` restarts.

    Args:
        points: (n, d) feature matrix (already scaled appropriately).
        k: number of clusters; must not exceed the number of points.
        seed: RNG seed (each restart derives its own stream from it).
        max_iterations: iteration cap per restart.
        tolerance: relative inertia improvement below which a run stops.
        n_init: number of restarts.
        rng: explicit generator for the k-means++ seeding.  When given it is
            drawn from sequentially across restarts (and ``seed`` is ignored),
            so callers can make seeding deterministic under their own stream.

    Raises:
        ClusteringError: for an empty matrix, k < 1 or k > n.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ClusteringError("k-means needs a non-empty 2-D feature matrix")
    n_points = points.shape[0]
    if k < 1:
        raise ClusteringError("k must be at least 1")
    if k > n_points:
        raise ClusteringError("k=%d exceeds the number of points (%d)" % (k, n_points))

    best: Optional[KMeansResult] = None
    for restart in range(max(1, n_init)):
        restart_rng = rng if rng is not None else np.random.default_rng(seed + restart * 7919)
        result = _kmeans_single(points, k, restart_rng, max_iterations, tolerance)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def _kmeans_single(points: np.ndarray, k: int, rng: np.random.Generator,
                   max_iterations: int, tolerance: float) -> KMeansResult:
    centroids = _kmeans_plus_plus(points, k, rng)
    labels = np.zeros(points.shape[0], dtype=int)
    dimensions = points.shape[1]
    previous_inertia = np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # Assignment step: one (n, k) distance matrix, no per-point loop.
        labels, assigned_sq = assign_labels(points, centroids)
        inertia = float(assigned_sq.sum())
        # Update step: per-cluster sums via bincount; re-seed empty clusters
        # on the farthest point.
        counts = np.bincount(labels, minlength=k)
        sums = np.empty((k, dimensions), dtype=float)
        for dim in range(dimensions):
            sums[:, dim] = np.bincount(labels, weights=points[:, dim], minlength=k)
        non_empty = counts > 0
        centroids[non_empty] = sums[non_empty] / counts[non_empty, None]
        if not non_empty.all():
            farthest = int(np.argmax(assigned_sq))
            centroids[~non_empty] = points[farthest]
        if previous_inertia - inertia <= tolerance * max(previous_inertia, 1e-12):
            converged = True
            previous_inertia = inertia
            break
        previous_inertia = inertia
    return KMeansResult(
        centroids=centroids.copy(),
        labels=labels.copy(),
        inertia=float(previous_inertia),
        n_iterations=iteration,
        converged=converged,
    )


def mini_batch_kmeans(batches: Iterable[np.ndarray], k: int, seed: int = 0,
                      rng: Optional[np.random.Generator] = None,
                      init_batch: Optional[np.ndarray] = None) -> MiniBatchKMeansResult:
    """Train k-means over a stream of feature batches (Sculley's algorithm).

    Designed for chunked column batches from a
    :class:`~repro.engine.source.TraceSource` (see
    :meth:`TraceSource.feature_batches`): each batch is assigned with the
    vectorized step, then centers take a per-center-learning-rate gradient
    step ``c += (mean of new members - c) * m_c / n_c`` where ``n_c`` is the
    cumulative member count.  Memory is bounded by one batch.

    Args:
        batches: iterable of (m, d) arrays (already scaled); consumed once.
        k: number of clusters.
        seed: RNG seed for k-means++ seeding on the first batch.
        rng: explicit generator (overrides ``seed``).
        init_batch: optional explicit (m, d) array to seed from; defaults to
            the first batch of the stream (which is still also trained on).

    Raises:
        ClusteringError: when the stream is empty or the first batch has
            fewer than ``k`` points.
    """
    if k < 1:
        raise ClusteringError("k must be at least 1")
    generator = rng if rng is not None else np.random.default_rng(seed)
    iterator = iter(batches)
    centroids: Optional[np.ndarray] = None
    cumulative = np.zeros(k, dtype=np.int64)
    n_points = 0
    n_batches = 0
    inertia = 0.0

    if init_batch is not None:
        init = np.asarray(init_batch, dtype=float)
        if init.ndim != 2 or init.shape[0] < k:
            raise ClusteringError("init batch needs at least k=%d points" % k)
        centroids = _kmeans_plus_plus(init, k, generator)

    for batch in iterator:
        batch = np.asarray(batch, dtype=float)
        if batch.ndim != 2 or batch.shape[0] == 0:
            continue
        if centroids is None:
            if batch.shape[0] < k:
                raise ClusteringError(
                    "first batch has %d points but k=%d; provide init_batch"
                    % (batch.shape[0], k))
            centroids = _kmeans_plus_plus(batch, k, generator)
        labels, assigned_sq = assign_labels(batch, centroids)
        inertia += float(assigned_sq.sum())
        counts = np.bincount(labels, minlength=k)
        sums = np.empty_like(centroids)
        for dim in range(centroids.shape[1]):
            sums[:, dim] = np.bincount(labels, weights=batch[:, dim], minlength=k)
        cumulative += counts
        seen = counts > 0
        # Per-center learning rate 1/n_c (Sculley 2010), applied batch-wise.
        step = counts[seen, None] / cumulative[seen, None]
        batch_means = sums[seen] / counts[seen, None]
        centroids[seen] = centroids[seen] + step * (batch_means - centroids[seen])
        n_points += int(batch.shape[0])
        n_batches += 1

    if centroids is None:
        raise ClusteringError("mini-batch k-means needs at least one non-empty batch")
    return MiniBatchKMeansResult(
        centroids=centroids.copy(),
        n_points=n_points,
        n_batches=n_batches,
        inertia=inertia,
    )


def select_k(points: np.ndarray, max_k: int = 12, seed: int = 0,
             improvement_threshold: float = 0.10, min_k: int = 1,
             rng: Optional[np.random.Generator] = None) -> KSelectionResult:
    """Choose k by the paper's diminishing-returns rule.

    k is incremented from ``min_k``; for each step the relative decrease in
    residual variance (inertia) is measured, and the sweep stops at the first
    k whose improvement over k-1 falls below ``improvement_threshold`` (the
    previous k is chosen), or at ``max_k``.  ``rng`` (if given) seeds each
    k's restarts from one shared stream; otherwise ``seed`` reproduces the
    historical per-k derivation.

    Raises:
        ClusteringError: if the matrix is empty or ``max_k`` < ``min_k``.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ClusteringError("k selection needs a non-empty 2-D feature matrix")
    if max_k < min_k:
        raise ClusteringError("max_k must be >= min_k")
    max_k = min(max_k, points.shape[0])
    min_k = min(min_k, max_k)

    inertias: List[Tuple[int, float]] = []
    results = {}
    chosen = min_k
    previous_inertia: Optional[float] = None
    for k in range(min_k, max_k + 1):
        result = kmeans(points, k, seed=seed, rng=rng)
        results[k] = result
        inertias.append((k, result.inertia))
        if previous_inertia is not None and previous_inertia > 0:
            improvement = (previous_inertia - result.inertia) / previous_inertia
            if improvement < improvement_threshold:
                chosen = k - 1
                break
        chosen = k
        previous_inertia = result.inertia
        if result.inertia == 0.0:
            break
    return KSelectionResult(chosen_k=chosen, inertias=inertias, result=results[chosen])
