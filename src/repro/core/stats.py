"""Shared statistical primitives for the characterization pipeline.

Everything in the paper's figures reduces to a handful of operations: empirical
CDFs (Figures 1, 3, 4, 5, 8), log-spaced binning of byte sizes, percentiles and
percentile ratios (Figure 8), hourly aggregation of time series (Figures 7-9)
and Pearson correlation between those series (Figure 9).  This module provides
those primitives with explicit handling of empty inputs and NaNs so the
higher-level analyses stay small.

Percentile convention
---------------------

Every percentile read-out in this library — :func:`percentile`,
:meth:`EmpiricalCDF.quantile`, :meth:`SketchCDF.quantile` and the engine's
:meth:`repro.engine.aggregates.HistogramSketch.percentile` — follows one
shared **lower nearest-rank** convention:

    ``P(q)`` is the smallest observed value ``v`` such that at least
    ``ceil(q / 100 * n)`` of the ``n`` finite samples are ``<= v``.

No interpolation between order statistics is performed, so an exact percentile
is always an observed sample value, and the sketch-backed read-out is the same
rank rule evaluated at histogram-bin granularity (its value resolution is one
part in ``10 ** (1/32)`` — about 7.5% — and it is clamped to the observed
min/max).  ``tests/core/test_percentile_convention.py`` pins the exact paths
to each other bit-for-bit and the sketch path to within bin resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError

__all__ = [
    "EmpiricalCDF",
    "SketchCDF",
    "empirical_cdf",
    "sketch_cdf",
    "log_bins",
    "percentile",
    "percentile_ratio_curve",
    "hourly_series",
    "pearson_correlation",
    "coefficient_of_variation",
    "geometric_mean",
    "SKETCH_RELATIVE_RESOLUTION",
]

#: Relative value resolution of sketch-backed percentiles: one part in
#: ``10 ** (1 / BINS_PER_DECADE)`` (32 bins per decade), i.e. about 7.5%.
SKETCH_RELATIVE_RESOLUTION = 10.0 ** (1.0 / 32.0) - 1.0


def _as_float_array(samples: Sequence[float]) -> np.ndarray:
    """Coerce samples to a float array without copying NumPy inputs.

    The columnar engine hands these functions million-element arrays; the old
    ``np.asarray(list(samples))`` round-trip through a Python list dominated
    the runtime.  Arrays pass through as (possibly casted) views; other
    iterables take the list path as before.
    """
    if isinstance(samples, np.ndarray):
        return samples.astype(float, copy=False)
    return np.asarray(list(samples), dtype=float)


@dataclass
class EmpiricalCDF:
    """An empirical cumulative distribution function.

    Attributes:
        values: sorted sample values.
        fractions: cumulative fraction of samples ≤ the corresponding value.
    """

    values: np.ndarray
    fractions: np.ndarray

    def __post_init__(self):
        self.values = np.asarray(self.values, dtype=float)
        self.fractions = np.asarray(self.fractions, dtype=float)
        if self.values.shape != self.fractions.shape:
            raise AnalysisError("CDF values and fractions must have the same shape")

    @property
    def n(self) -> int:
        return int(self.values.size)

    def quantile(self, q: float) -> float:
        """Value below which a fraction ``q`` of the samples fall."""
        if not 0.0 <= q <= 1.0:
            raise AnalysisError("quantile fraction must be in [0, 1], got %r" % (q,))
        if self.n == 0:
            raise AnalysisError("cannot take a quantile of an empty CDF")
        index = int(np.searchsorted(self.fractions, q, side="left"))
        index = min(index, self.n - 1)
        return float(self.values[index])

    def fraction_at_or_below(self, value: float) -> float:
        """Fraction of samples ≤ ``value`` (0 for an empty CDF)."""
        if self.n == 0:
            return 0.0
        index = int(np.searchsorted(self.values, value, side="right"))
        if index == 0:
            return 0.0
        return float(self.fractions[index - 1])

    def median(self) -> float:
        return self.quantile(0.5)

    def as_points(self) -> "list[tuple[float, float]]":
        """(value, cumulative fraction) pairs, e.g. for plotting or reports."""
        return list(zip(self.values.tolist(), self.fractions.tolist()))


def empirical_cdf(samples: Sequence[float], drop_nan: bool = True) -> EmpiricalCDF:
    """Build an :class:`EmpiricalCDF` from raw samples.

    Args:
        samples: the sample values.
        drop_nan: silently drop NaNs (used for traces missing a dimension).

    Raises:
        AnalysisError: when no finite samples remain.
    """
    array = _as_float_array(samples)
    if drop_nan:
        array = array[np.isfinite(array)]
    if array.size == 0:
        raise AnalysisError("cannot build a CDF from an empty sample")
    array = np.sort(array)
    fractions = np.arange(1, array.size + 1, dtype=float) / array.size
    return EmpiricalCDF(values=array, fractions=fractions)


class SketchCDF:
    """A CDF backed by the engine's mergeable log-histogram sketch.

    Exposes the same read-out API as :class:`EmpiricalCDF` (``quantile``,
    ``median``, ``fraction_at_or_below``, ``as_points``, ``n``) so the
    streaming analysis paths can hand one to any consumer of exact CDFs.
    Quantiles follow the shared lower nearest-rank convention at histogram-bin
    granularity (about 7.5% relative value resolution, clamped to the observed
    min/max); fractions are exact counts at bin-edge granularity.
    """

    def __init__(self, sketch):
        # `sketch` is a repro.engine.aggregates.HistogramSketch (imported
        # lazily by sketch_cdf to keep this module importable standalone).
        self.sketch = sketch

    @property
    def n(self) -> int:
        return int(self.sketch.n)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise AnalysisError("quantile fraction must be in [0, 1], got %r" % (q,))
        if self.n == 0:
            raise AnalysisError("cannot take a quantile of an empty CDF")
        value = self.sketch.percentile(100.0 * q)
        assert value is not None  # n > 0 guarantees a read-out
        return float(value)

    def median(self) -> float:
        return self.quantile(0.5)

    def fraction_at_or_below(self, value: float) -> float:
        """Fraction of samples ≤ ``value``, at bin granularity (0 when empty)."""
        if self.n == 0:
            return 0.0
        if self.sketch.low is not None and value < self.sketch.low:
            return 0.0
        if self.sketch.high is not None and value >= self.sketch.high:
            return 1.0
        points = self.sketch.cdf_points(max_points=1 << 30)
        fraction = 0.0
        for point_value, cumulative_fraction in points:
            if point_value <= value:
                fraction = cumulative_fraction
            else:
                break
        return float(fraction)

    def as_points(self) -> "list[tuple[float, float]]":
        """(value, cumulative fraction) pairs over the non-empty bins."""
        return self.sketch.cdf_points()


def sketch_cdf(samples: Sequence[float]) -> SketchCDF:
    """Build a :class:`SketchCDF` from raw samples (NaNs dropped).

    Raises:
        AnalysisError: when no finite samples remain (matching
        :func:`empirical_cdf`) or when samples are negative.
    """
    from ..engine.aggregates import HistogramSketch

    sketch = HistogramSketch()
    array = _as_float_array(samples)
    sketch.update(array)
    if sketch.n == 0:
        raise AnalysisError("cannot build a CDF from an empty sample")
    return SketchCDF(sketch)


def log_bins(low: float, high: float, bins_per_decade: int = 4) -> np.ndarray:
    """Logarithmically spaced bin edges covering ``[low, high]``.

    Used for the log-scale size axes of Figures 1, 3 and 4.

    Raises:
        AnalysisError: if the bounds are not positive or are inverted.
    """
    if low <= 0 or high <= 0:
        raise AnalysisError("log bins need positive bounds")
    if high < low:
        raise AnalysisError("log bins: high < low")
    decades = np.log10(high) - np.log10(low)
    n_edges = max(2, int(np.ceil(decades * bins_per_decade)) + 1)
    return np.logspace(np.log10(low), np.log10(high), n_edges)


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of the finite samples.

    Uses the library-wide lower nearest-rank convention (see the module
    docstring): the smallest sample value with at least ``ceil(q/100 * n)``
    samples at or below it.  This matches :meth:`EmpiricalCDF.quantile`
    exactly and the engine's sketch percentile at bin resolution.
    """
    array = _as_float_array(samples)
    array = array[np.isfinite(array)]
    if array.size == 0:
        raise AnalysisError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise AnalysisError("percentile must be in [0, 100], got %r" % (q,))
    rank = int(np.ceil(q / 100.0 * array.size))
    rank = min(max(rank, 1), int(array.size))
    return float(np.partition(array, rank - 1)[rank - 1])


def percentile_ratio_curve(samples: Sequence[float],
                           percentiles: Optional[Sequence[float]] = None) -> "list[tuple[float, float]]":
    """The (nth-percentile / median, n) curve that defines Figure 8 burstiness.

    Returns a list of ``(ratio, n)`` pairs where ``ratio`` is the nth
    percentile of the samples divided by their median.  A vertical curve
    (ratios all ≈ 1) is a constant signal; a long horizontal tail is a bursty
    one.

    Raises:
        AnalysisError: when the sample is empty or its median is zero.
    """
    array = _as_float_array(samples)
    array = array[np.isfinite(array)]
    if array.size == 0:
        raise AnalysisError("cannot compute a percentile curve of an empty sample")
    median = percentile(array, 50.0)
    if median == 0:
        raise AnalysisError("percentile-ratio curve undefined: median is zero")
    if percentiles is None:
        percentiles = list(range(1, 100)) + [99.5, 100.0]
    array = np.sort(array)
    curve = []
    for n in percentiles:
        rank = min(max(int(np.ceil(n / 100.0 * array.size)), 1), int(array.size))
        curve.append((float(array[rank - 1]) / median, float(n)))
    return curve


def hourly_series(times_s: Sequence[float], weights: Optional[Sequence[float]] = None,
                  horizon_s: Optional[float] = None) -> np.ndarray:
    """Aggregate events into per-hour totals.

    Args:
        times_s: event times in seconds from the trace origin.
        weights: per-event weight (bytes, task-seconds, ...); defaults to 1
            per event, which yields hourly counts.
        horizon_s: total horizon; defaults to the last event time.  The result
            always covers ``ceil(horizon / 3600)`` hours, including empty ones.

    Returns:
        A float array of hourly totals (possibly all zeros).
    """
    times = _as_float_array(times_s)
    if weights is None:
        weight_array = np.ones_like(times)
    else:
        weight_array = _as_float_array(weights)
        if weight_array.shape != times.shape:
            raise AnalysisError("weights must have the same length as times")
    if times.size == 0:
        return np.zeros(max(1, int(np.ceil((horizon_s or 3600.0) / 3600.0))), dtype=float)
    if np.any(times < 0):
        raise AnalysisError("event times must be non-negative")
    horizon = float(horizon_s) if horizon_s is not None else float(times.max()) + 1.0
    n_hours = max(1, int(np.ceil(horizon / 3600.0)))
    buckets = np.minimum((times // 3600.0).astype(int), n_hours - 1)
    series = np.zeros(n_hours, dtype=float)
    np.add.at(series, buckets, weight_array)
    return series


def pearson_correlation(series_a: Sequence[float], series_b: Sequence[float]) -> float:
    """Pearson correlation between two equal-length series.

    Returns 0.0 when either series is constant (correlation undefined), which
    matches how the paper treats uninformative dimensions.
    """
    a = _as_float_array(series_a)
    b = _as_float_array(series_b)
    if a.shape != b.shape:
        raise AnalysisError("correlation needs equal-length series")
    if a.size < 2:
        raise AnalysisError("correlation needs at least two points")
    if np.std(a) == 0 or np.std(b) == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def coefficient_of_variation(samples: Sequence[float]) -> float:
    """Standard deviation divided by mean (0 for an all-zero sample)."""
    array = _as_float_array(samples)
    array = array[np.isfinite(array)]
    if array.size == 0:
        raise AnalysisError("cannot compute CoV of an empty sample")
    mean = array.mean()
    if mean == 0:
        return 0.0
    return float(array.std() / mean)


def geometric_mean(samples: Sequence[float], floor: float = 1e-12) -> float:
    """Geometric mean of positive samples (values below ``floor`` are clamped)."""
    array = _as_float_array(samples)
    array = array[np.isfinite(array)]
    if array.size == 0:
        raise AnalysisError("cannot compute a geometric mean of an empty sample")
    return float(np.exp(np.mean(np.log(np.maximum(array, floor)))))
