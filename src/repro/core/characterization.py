"""Top-level workload characterization.

:class:`WorkloadCharacterizer` orchestrates every analysis in the paper's
methodology against a single trace and collects the results into a
:class:`~repro.core.report.WorkloadReport`.  Analyses that a trace cannot
support (no job names, no file paths, trace too short for a diurnal test) are
skipped with a note instead of failing the whole run — exactly how the paper
omits workloads from individual figures when a dimension is missing.

The characterizer accepts any :class:`~repro.engine.source.TraceSource`-
wrappable representation.  Handing it a
:class:`~repro.engine.store.ChunkedTraceStore` runs the whole pipeline
out-of-core: every statistic is computed by chunked engine scans (sums,
counts and dictionary statistics exact; percentile-shaped read-outs backed by
mergeable log-histogram sketches), with peak memory bounded by chunk size
plus the k-means feature matrix.
"""

from __future__ import annotations

from typing import Optional

from ..engine.source import TraceSource
from ..errors import AnalysisError
from .access import analyze_access_patterns
from .burstiness import analyze_burstiness
from .clustering import cluster_jobs
from .datasizes import analyze_data_sizes
from .naming import analyze_naming
from .report import WorkloadReport
from .temporal import dimension_correlations, diurnal_strength, hourly_dimensions

__all__ = ["WorkloadCharacterizer", "characterize"]


class WorkloadCharacterizer:
    """Runs the full characterization pipeline on traces.

    Args:
        max_k: upper bound for the automatic cluster-count selection.
        seed: RNG seed used by k-means.
        cluster: set to False to skip the (comparatively expensive) Table-2
            clustering step.
    """

    def __init__(self, max_k: int = 12, seed: int = 0, cluster: bool = True):
        self.max_k = int(max_k)
        self.seed = int(seed)
        self.cluster = bool(cluster)

    def characterize(self, trace) -> WorkloadReport:
        """Characterize one trace and return its :class:`WorkloadReport`.

        ``trace`` may be a :class:`Trace`, :class:`ColumnarTrace`,
        :class:`ChunkedTraceStore` or :class:`TraceSource`.

        Raises:
            AnalysisError: only when the trace is empty; everything else
                degrades to a note in the report.
        """
        source = TraceSource.wrap(trace)
        if source.is_empty():
            raise AnalysisError("cannot characterize an empty trace")

        report = WorkloadReport(workload=source.name, summary=source.summary())

        # §4.1 per-job data sizes (Figure 1).
        report.data_sizes = analyze_data_sizes(source)

        # §4.2-4.3 access patterns (Figures 2-6).
        report.access = analyze_access_patterns(source)
        if report.access.input_ranks is None:
            report.notes.append("no input paths recorded; Figures 2-6 unavailable for inputs")
        if report.access.output_ranks is None:
            report.notes.append("no output paths recorded; Figure 2/4 unavailable for outputs")

        # §5 temporal behaviour (Figures 7-9).
        report.hourly = hourly_dimensions(source)
        try:
            report.burstiness = analyze_burstiness(source)
        except AnalysisError as exc:
            report.notes.append("burstiness unavailable: %s" % exc)
        try:
            report.correlations = dimension_correlations(report.hourly)
        except AnalysisError as exc:
            report.notes.append("correlations unavailable: %s" % exc)
        report.diurnal = diurnal_strength(report.hourly.jobs_per_hour)

        # §6.1 job names (Figure 10).
        try:
            report.naming = analyze_naming(source)
        except AnalysisError as exc:
            report.notes.append(str(exc))

        # §6.2 job clustering (Table 2).
        if self.cluster:
            report.clustering = cluster_jobs(source, max_k=self.max_k, seed=self.seed)

        return report


def characterize(trace, max_k: int = 12, seed: int = 0, cluster: bool = True) -> WorkloadReport:
    """Convenience wrapper: run :class:`WorkloadCharacterizer` on one trace."""
    return WorkloadCharacterizer(max_k=max_k, seed=seed, cluster=cluster).characterize(trace)
