"""Top-level workload characterization.

:class:`WorkloadCharacterizer` orchestrates every analysis in the paper's
methodology against a single trace and collects the results into a
:class:`~repro.core.report.WorkloadReport`.  Analyses that a trace cannot
support (no job names, no file paths, trace too short for a diurnal test) are
skipped with a note instead of failing the whole run — exactly how the paper
omits workloads from individual figures when a dimension is missing.

The characterizer accepts any :class:`~repro.engine.source.TraceSource`-
wrappable representation.  Handing it a
:class:`~repro.engine.store.ChunkedTraceStore` runs the whole pipeline
out-of-core **in one shared scan** (see :mod:`repro.core.sharedscan`): every
statistic registers its chunk-consumer fold on a single
:class:`~repro.engine.pipeline.ScanPipeline`, so each chunk is decoded
exactly once for the full report instead of once per analysis, and
``processes`` fans the chunks across worker processes.  Sums, counts and
dictionary statistics are exact; percentile-shaped read-outs are backed by
mergeable log-histogram sketches; peak memory is bounded by chunk size plus
the k-means feature matrix.
"""

from __future__ import annotations

from typing import Optional

from ..engine.parallel import ParallelExecutor
from ..engine.source import TraceSource
from ..errors import AnalysisError
from .access import AccessPatternResult, eighty_x_from_profile
from .burstiness import burstiness_curve
from .clustering import cluster_jobs
from .report import WorkloadReport
from .sharedscan import run_characterization_scan
from .temporal import dimension_correlations, diurnal_strength

__all__ = ["WorkloadCharacterizer", "characterize"]


class WorkloadCharacterizer:
    """Runs the full characterization pipeline on traces.

    Args:
        max_k: upper bound for the automatic cluster-count selection.
        seed: RNG seed used by k-means.
        cluster: set to False to skip the (comparatively expensive) Table-2
            clustering step.
        processes: fan the shared scan of a store-backed trace out over this
            many worker processes (``None`` = serial).
        resume_from: a :class:`~repro.engine.pipeline.Checkpoint` (or its
            path) from an earlier run over the same store: resumable analyses
            fold only the chunks appended since, the rest rescan, and the
            report's notes say which did what.  Store-backed traces only.
        checkpoint_to: save a checkpoint covering the whole store after the
            scan (JSON at the path, arrays at ``<path>.npz``).
    """

    def __init__(self, max_k: int = 12, seed: int = 0, cluster: bool = True,
                 processes: Optional[int] = None, resume_from=None,
                 checkpoint_to: Optional[str] = None):
        self.max_k = int(max_k)
        self.seed = int(seed)
        self.cluster = bool(cluster)
        self.processes = processes
        self.resume_from = resume_from
        self.checkpoint_to = checkpoint_to

    def characterize(self, trace) -> WorkloadReport:
        """Characterize one trace and return its :class:`WorkloadReport`.

        ``trace`` may be a :class:`Trace`, :class:`ColumnarTrace`,
        :class:`ChunkedTraceStore` or :class:`TraceSource`.

        Raises:
            AnalysisError: only when the trace is empty; everything else
                degrades to a note in the report.
        """
        source = TraceSource.wrap(trace)
        if source.is_empty():
            raise AnalysisError("cannot characterize an empty trace")

        executor = ParallelExecutor(processes=self.processes) if self.processes else None
        analyses = run_characterization_scan(
            source, experiments=None, seed=self.seed, cluster_sample_cap=None,
            include_features=self.cluster, executor=executor,
            resume_from=self.resume_from, checkpoint_to=self.checkpoint_to)

        report = WorkloadReport(workload=source.name, summary=analyses.value("summary"))
        if analyses.resume is not None:
            resume = analyses.resume
            report.notes.append(
                "resumed %d analysis fold(s) from checkpoint over %d appended "
                "chunk(s): %s" % (len(resume["resumed"]), resume["new_chunks"],
                                  ", ".join(resume["resumed"]) or "(none)"))
            for name, reason in sorted(resume["rescanned"].items()):
                report.notes.append("full rescan for %s: %s" % (name, reason))
        if analyses.checkpoint_path is not None:
            report.notes.append("checkpoint saved to %s" % analyses.checkpoint_path)

        # §4.1 per-job data sizes (Figure 1).
        report.data_sizes = analyses.value("data_sizes")

        # §4.2-4.3 access patterns (Figures 2-6).
        input_profile = analyses.get("input_profile")
        eighty_x_input = None
        if input_profile is not None:
            try:
                eighty_x_input = eighty_x_from_profile(input_profile)
            except AnalysisError:
                eighty_x_input = None
        report.access = AccessPatternResult(
            workload=source.name,
            input_ranks=analyses.get("input_ranks"),
            output_ranks=analyses.get("output_ranks"),
            input_profile=input_profile,
            output_profile=analyses.get("output_profile"),
            intervals=analyses.get("reaccess_intervals"),
            fractions=analyses.get("reaccess_fractions"),
            eighty_x_input=eighty_x_input,
        )
        if report.access.input_ranks is None:
            report.notes.append("no input paths recorded; Figures 2-6 unavailable for inputs")
        if report.access.output_ranks is None:
            report.notes.append("no output paths recorded; Figure 2/4 unavailable for outputs")

        # §5 temporal behaviour (Figures 7-9).
        report.hourly = analyses.value("hourly")
        try:
            report.burstiness = burstiness_curve(report.hourly.task_seconds_per_hour,
                                                 drop_zero_hours=True)
        except AnalysisError as exc:
            report.notes.append("burstiness unavailable: %s" % exc)
        try:
            report.correlations = dimension_correlations(report.hourly)
        except AnalysisError as exc:
            report.notes.append("correlations unavailable: %s" % exc)
        report.diurnal = diurnal_strength(report.hourly.jobs_per_hour)

        # §6.1 job names (Figure 10).
        naming_error = analyses.error("naming")
        if naming_error is not None:
            report.notes.append(str(naming_error))
        else:
            report.naming = analyses.get("naming")

        # §6.2 job clustering (Table 2).
        if self.cluster:
            report.clustering = cluster_jobs(source, max_k=self.max_k, seed=self.seed,
                                             features=analyses.get("features"))

        return report


def characterize(trace, max_k: int = 12, seed: int = 0, cluster: bool = True,
                 processes: Optional[int] = None, resume_from=None,
                 checkpoint_to: Optional[str] = None) -> WorkloadReport:
    """Convenience wrapper: run :class:`WorkloadCharacterizer` on one trace."""
    return WorkloadCharacterizer(max_k=max_k, seed=seed, cluster=cluster,
                                 processes=processes, resume_from=resume_from,
                                 checkpoint_to=checkpoint_to).characterize(trace)
