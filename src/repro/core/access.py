"""File access pattern analysis (§4.2-4.3, Figures 2-6 of the paper).

Given a trace whose jobs carry hashed input/output path names, this module
computes:

* access frequency versus rank and the Zipf slope (Figure 2);
* the fraction of jobs versus accessed file size, and the fraction of stored
  bytes versus file size (Figures 3 and 4), from which the "80-x rule" of
  §4.2 is derived;
* re-access interval distributions: input→input (a file read again) and
  output→input (a job reading what an earlier job wrote) (Figure 5);
* the fraction of jobs whose input re-accesses pre-existing input or output
  (Figure 6).

Every analysis consumes a :class:`~repro.engine.source.TraceSource`-wrappable
representation and streams the path/size/time columns chunk by chunk, so the
whole §4 pipeline runs over an out-of-core store with memory bounded by the
chunk size plus the distinct-path dictionaries.  All results here are exact
(dictionary- and counter-based) — identical across representations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..engine.source import TraceSource
from ..errors import AnalysisError
from ..units import GB
from .stats import EmpiricalCDF, empirical_cdf
from .zipf import RankFrequency, column_rank_frequencies

__all__ = [
    "SizeAccessProfile",
    "ReaccessIntervals",
    "ReaccessFractions",
    "AccessPatternResult",
    "input_rank_frequencies",
    "output_rank_frequencies",
    "size_access_profile",
    "reaccess_intervals",
    "reaccess_fractions",
    "eighty_x_rule",
    "analyze_access_patterns",
]


# ---------------------------------------------------------------------------
# Figure 2: rank-frequency
# ---------------------------------------------------------------------------
def input_rank_frequencies(trace) -> RankFrequency:
    """Access frequency vs rank for input paths (Figure 2, top)."""
    return column_rank_frequencies(trace, "input_path")


def output_rank_frequencies(trace) -> RankFrequency:
    """Access frequency vs rank for output paths (Figure 2, bottom)."""
    return column_rank_frequencies(trace, "output_path")


# ---------------------------------------------------------------------------
# Figures 3 and 4: jobs and stored bytes versus file size
# ---------------------------------------------------------------------------
@dataclass
class SizeAccessProfile:
    """Access behaviour versus file size for one path kind (input or output).

    Attributes:
        jobs_cdf: CDF of per-job accessed-file size (fraction of jobs whose
            file is at most a given size) — the top panel of Figures 3/4.
        stored_bytes_cdf: CDF of stored bytes versus file size (fraction of
            all stored bytes contributed by files at most a given size) —
            the bottom panel of Figures 3/4.
        file_sizes: size of each distinct file (bytes).
        jobs_below_gb_fraction: fraction of jobs accessing files ≤ a few GB
            (the paper's 90% observation); computed at 4 GB.
        bytes_below_gb_fraction: fraction of stored bytes in those files
            (the paper's ≤16% observation); computed at 4 GB.
    """

    jobs_cdf: EmpiricalCDF
    stored_bytes_cdf: EmpiricalCDF
    file_sizes: np.ndarray
    jobs_below_gb_fraction: float
    bytes_below_gb_fraction: float


def _path_size_chunks(source: TraceSource, kind: str) -> Iterator[Tuple[List[str], List[float]]]:
    """Yield per-chunk (paths, reported bytes) lists for one path kind."""
    path_column = "%s_path" % kind
    bytes_column = "%s_bytes" % kind
    for block in source.iter_chunks(columns=[path_column, bytes_column]):
        if block.n_rows == 0:
            continue
        paths = block.column(path_column).tolist()
        sizes = np.nan_to_num(block.column(bytes_column), nan=0.0).tolist()
        yield paths, sizes


def _file_size_estimates(source: TraceSource, kind: str) -> Tuple[Dict[str, float], List[float]]:
    """Distinct file sizes plus the per-access size sequence for a path kind.

    The size of a file is estimated as the largest input (or output) bytes any
    job reported against that path — traces only record per-job volumes, not
    catalog sizes, and the maximum over accesses is the closest observable
    proxy.  Two chunked scans: the first resolves the per-file maxima, the
    second maps every access to its file's size.
    """
    if kind not in ("input", "output"):
        raise AnalysisError("kind must be 'input' or 'output'")
    if not source.has_column("%s_path" % kind):
        raise AnalysisError("trace has no recorded %s paths" % kind)
    sizes: Dict[str, float] = {}
    for paths, reported in _path_size_chunks(source, kind):
        for path, size in zip(paths, reported):
            if path:
                sizes[path] = max(sizes.get(path, 0.0), size)
    if not sizes:
        raise AnalysisError("trace has no recorded %s paths" % kind)
    per_access: List[float] = []
    for block in source.iter_chunks(columns=["%s_path" % kind]):
        for path in block.column("%s_path" % kind).tolist():
            if path:
                per_access.append(sizes[path])
    return sizes, per_access


def size_access_profile(trace, kind: str = "input",
                        small_file_threshold: float = 4 * GB) -> SizeAccessProfile:
    """Compute the Figure-3 (input) or Figure-4 (output) profile for a trace."""
    source = TraceSource.wrap(trace)
    sizes, per_access_sizes = _file_size_estimates(source, kind)
    jobs_cdf = empirical_cdf(per_access_sizes)

    file_size_array = np.array(sorted(sizes.values()), dtype=float)
    total_stored = float(file_size_array.sum())
    if total_stored <= 0:
        stored_cdf = EmpiricalCDF(values=file_size_array,
                                  fractions=np.linspace(1.0 / max(1, file_size_array.size), 1.0,
                                                        file_size_array.size))
    else:
        stored_cdf = EmpiricalCDF(values=file_size_array,
                                  fractions=np.cumsum(file_size_array) / total_stored)
    return SizeAccessProfile(
        jobs_cdf=jobs_cdf,
        stored_bytes_cdf=stored_cdf,
        file_sizes=file_size_array,
        jobs_below_gb_fraction=jobs_cdf.fraction_at_or_below(small_file_threshold),
        bytes_below_gb_fraction=stored_cdf.fraction_at_or_below(small_file_threshold),
    )


def eighty_x_rule(trace, kind: str = "input", job_fraction: float = 0.8) -> float:
    """The "80-x" rule of §4.2: x such that 80% of accesses go to x% of bytes.

    Following how the paper derives the rule from Figures 3 and 4, the
    computation is size-threshold based: find the file size below which
    ``job_fraction`` of all jobs' accesses fall (top panel), then return the
    percentage of stored bytes held by files up to that size (bottom panel).
    The paper reports values between 1 and 8 — an "80-1" to "80-8" rule.
    """
    if not 0.0 < job_fraction < 1.0:
        raise AnalysisError("job_fraction must be in (0, 1)")
    profile = size_access_profile(trace, kind)
    size_threshold = profile.jobs_cdf.quantile(job_fraction)
    return 100.0 * profile.stored_bytes_cdf.fraction_at_or_below(size_threshold)


# ---------------------------------------------------------------------------
# Figure 5: re-access intervals
# ---------------------------------------------------------------------------
@dataclass
class ReaccessIntervals:
    """Distributions of data re-access intervals (Figure 5).

    Attributes:
        input_input: CDF of intervals between successive reads of the same
            input path (``None`` when no such re-reads exist).
        output_input: CDF of intervals between a job writing a path and a
            later job reading it (``None`` when absent).
        fraction_within_6h: fraction of all re-accesses (both kinds pooled)
            that happen within six hours — the paper reports 75%.
    """

    input_input: Optional[EmpiricalCDF]
    output_input: Optional[EmpiricalCDF]
    fraction_within_6h: float


def _iter_path_time_rows(source: TraceSource) -> Iterator[Tuple[float, Optional[str], Optional[str]]]:
    """Stream (submit time, input path, output path) rows in submit order.

    Submit-time order is verified as the chunks stream (the re-access logic is
    stateful and order-sensitive); an unsorted store raises instead of
    silently producing wrong intervals.
    """
    has_input = source.has_column("input_path")
    has_output = source.has_column("output_path")
    for block in source.iter_chunks_sorted(["submit_time_s"]
                                           + (["input_path"] if has_input else [])
                                           + (["output_path"] if has_output else [])):
        n_rows = block.n_rows
        if n_rows == 0:
            continue
        times = block.column("submit_time_s").tolist()
        inputs = block.column("input_path").tolist() if has_input else [""] * n_rows
        outputs = block.column("output_path").tolist() if has_output else [""] * n_rows
        for row in range(n_rows):
            yield times[row], inputs[row] or None, outputs[row] or None


def reaccess_intervals(trace) -> ReaccessIntervals:
    """Compute re-access interval distributions for a trace.

    Jobs are processed in submission order.  For input→input intervals the
    reference time is the previous *read* of the path; for output→input it is
    the most recent earlier *write*.
    """
    source = TraceSource.wrap(trace)
    last_read: Dict[str, float] = {}
    last_write: Dict[str, float] = {}
    input_input: List[float] = []
    output_input: List[float] = []
    for t, input_path, output_path in _iter_path_time_rows(source):
        if input_path is not None:
            path = input_path
            if path in last_write and (path not in last_read or last_write[path] >= last_read[path]):
                output_input.append(max(0.0, t - last_write[path]))
            elif path in last_read:
                input_input.append(max(0.0, t - last_read[path]))
            last_read[path] = t
        if output_path is not None:
            last_write[output_path] = t

    pooled = input_input + output_input
    fraction_6h = (
        float(np.mean(np.asarray(pooled) <= 6 * 3600.0)) if pooled else 0.0
    )
    return ReaccessIntervals(
        input_input=empirical_cdf(input_input) if input_input else None,
        output_input=empirical_cdf(output_input) if output_input else None,
        fraction_within_6h=fraction_6h,
    )


# ---------------------------------------------------------------------------
# Figure 6: fraction of jobs re-accessing existing data
# ---------------------------------------------------------------------------
@dataclass
class ReaccessFractions:
    """Fractions of jobs whose input re-accesses pre-existing data (Figure 6).

    Attributes:
        input_reaccess: fraction of jobs reading a path some earlier job read.
        output_reaccess: fraction of jobs reading a path some earlier job wrote.
        any_reaccess: fraction of jobs doing either.
        jobs_with_paths: number of jobs that recorded an input path at all.
    """

    input_reaccess: float
    output_reaccess: float
    any_reaccess: float
    jobs_with_paths: int


def reaccess_fractions(trace) -> ReaccessFractions:
    """Compute the Figure-6 fractions for one trace."""
    source = TraceSource.wrap(trace)
    seen_inputs: set = set()
    seen_outputs: set = set()
    jobs_with_paths = 0
    input_hits = 0
    output_hits = 0
    any_hits = 0
    for _t, input_path, output_path in _iter_path_time_rows(source):
        if input_path is not None:
            jobs_with_paths += 1
            is_input_hit = input_path in seen_inputs
            is_output_hit = input_path in seen_outputs
            if is_output_hit:
                output_hits += 1
            elif is_input_hit:
                input_hits += 1
            if is_input_hit or is_output_hit:
                any_hits += 1
            seen_inputs.add(input_path)
        if output_path is not None:
            seen_outputs.add(output_path)
    if jobs_with_paths == 0:
        raise AnalysisError("trace has no recorded input paths")
    return ReaccessFractions(
        input_reaccess=input_hits / jobs_with_paths,
        output_reaccess=output_hits / jobs_with_paths,
        any_reaccess=any_hits / jobs_with_paths,
        jobs_with_paths=jobs_with_paths,
    )


# ---------------------------------------------------------------------------
# Combined result
# ---------------------------------------------------------------------------
@dataclass
class AccessPatternResult:
    """All §4 access-pattern analyses for one trace.

    Any component that cannot be computed because the trace lacks the required
    path dimension is ``None`` — mirroring how the paper omits workloads from
    figures when their traces miss the needed fields.
    """

    workload: str
    input_ranks: Optional[RankFrequency]
    output_ranks: Optional[RankFrequency]
    input_profile: Optional[SizeAccessProfile]
    output_profile: Optional[SizeAccessProfile]
    intervals: Optional[ReaccessIntervals]
    fractions: Optional[ReaccessFractions]
    eighty_x_input: Optional[float]


def analyze_access_patterns(trace) -> AccessPatternResult:
    """Run every §4 analysis that the trace's recorded dimensions permit."""
    source = TraceSource.wrap(trace)
    if source.is_empty():
        raise AnalysisError("cannot analyze access patterns of an empty trace")

    def attempt(function, *args, **kwargs):
        try:
            return function(*args, **kwargs)
        except AnalysisError:
            return None

    return AccessPatternResult(
        workload=source.name,
        input_ranks=attempt(input_rank_frequencies, source),
        output_ranks=attempt(output_rank_frequencies, source),
        input_profile=attempt(size_access_profile, source, "input"),
        output_profile=attempt(size_access_profile, source, "output"),
        intervals=attempt(reaccess_intervals, source),
        fractions=attempt(reaccess_fractions, source),
        eighty_x_input=attempt(eighty_x_rule, source, "input"),
    )
