"""File access pattern analysis (§4.2-4.3, Figures 2-6 of the paper).

Given a trace whose jobs carry hashed input/output path names, this module
computes:

* access frequency versus rank and the Zipf slope (Figure 2);
* the fraction of jobs versus accessed file size, and the fraction of stored
  bytes versus file size (Figures 3 and 4), from which the "80-x rule" of
  §4.2 is derived;
* re-access interval distributions: input→input (a file read again) and
  output→input (a job reading what an earlier job wrote) (Figure 5);
* the fraction of jobs whose input re-accesses pre-existing input or output
  (Figure 6).

Every analysis is a shared-scan **chunk consumer**
(:class:`~repro.engine.pipeline.ChunkConsumer`): :class:`PathStatsConsumer`
folds per-path maxima and access counts in one vectorized pass (one fold
feeds Figure 2's rank-frequencies *and* the Figure 3/4 size profiles *and*
the 80-x rule), and :class:`ReaccessConsumer` — order-sensitive, so it runs
in the pipeline's sequential lane — folds the Figure 5 intervals and Figure 6
fractions in a single pass of its own.  The standalone entry points below run
the same consumers as degenerate one-consumer pipelines, so a statistic
computed standalone and inside the full characterization scan is identical by
construction.  All results here are exact (dictionary- and counter-based) —
identical across representations, chunkings and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..engine.pipeline import ChunkConsumer, ScanChunk, ScanPipeline, fold_consumer
from ..engine.source import TraceSource
from ..errors import AnalysisError
from ..units import GB
from .stats import EmpiricalCDF, empirical_cdf
from .zipf import RankFrequency, column_rank_frequencies, rank_frequencies_from_counts

__all__ = [
    "SizeAccessProfile",
    "ReaccessIntervals",
    "ReaccessFractions",
    "ReaccessResult",
    "AccessPatternResult",
    "PathStatsConsumer",
    "ReaccessConsumer",
    "input_rank_frequencies",
    "output_rank_frequencies",
    "path_stats",
    "rank_frequencies_from_path_stats",
    "size_access_profile",
    "profile_from_path_stats",
    "reaccess_intervals",
    "reaccess_fractions",
    "eighty_x_rule",
    "eighty_x_from_profile",
    "analyze_access_patterns",
]


# ---------------------------------------------------------------------------
# Figure 2: rank-frequency
# ---------------------------------------------------------------------------
def input_rank_frequencies(trace) -> RankFrequency:
    """Access frequency vs rank for input paths (Figure 2, top)."""
    return column_rank_frequencies(trace, "input_path")


def output_rank_frequencies(trace) -> RankFrequency:
    """Access frequency vs rank for output paths (Figure 2, bottom)."""
    return column_rank_frequencies(trace, "output_path")


# ---------------------------------------------------------------------------
# Shared path-statistics fold (Figures 2, 3, 4 and the 80-x rule)
# ---------------------------------------------------------------------------
def _assign_global_ids(state, unique_paths: np.ndarray) -> np.ndarray:
    """Map a chunk's **sorted** distinct paths to global ids, admitting new ones.

    ``state`` carries ``known_paths`` (a sorted array of every path seen so
    far) plus parallel value arrays listed in ``state["arrays"]``, indexed by
    the path's position in ``known_paths``.  New paths are merged in with one
    ``np.insert`` per array (value arrays shift consistently, so positions
    stay aligned).  Everything is vectorized sorted-merge work — no per-path
    Python at all — which keeps the per-chunk carry cost proportional to the
    *distinct* paths of the chunk.
    """
    known = state["known_paths"]
    if known.size:
        positions = np.searchsorted(known, unique_paths)
        clipped = np.minimum(positions, known.size - 1)
        new_mask = known[clipped] != unique_paths
    else:
        new_mask = np.ones(unique_paths.size, dtype=bool)
    if new_mask.any():
        new_paths = unique_paths[new_mask]
        insert_at = np.searchsorted(known, new_paths)
        # Scatter-merge two sorted arrays in O(n) — no re-sort, and the
        # string dtype widens when a new path is longer than every known one.
        total = known.size + new_paths.size
        merged = np.empty(total, dtype=np.promote_types(known.dtype, new_paths.dtype))
        new_positions = insert_at + np.arange(new_paths.size)
        is_new = np.zeros(total, dtype=bool)
        is_new[new_positions] = True
        merged[is_new] = new_paths
        merged[~is_new] = known
        state["known_paths"] = known = merged
        for key in state["arrays"]:
            state[key] = np.insert(state[key], insert_at, state["fill"][key])
    return np.searchsorted(known, unique_paths)


class PathStatsConsumer(ChunkConsumer):
    """Per-path (max reported bytes, access count) fold for one path kind.

    The size of a file is estimated as the largest input (or output) bytes
    any job reported against that path — traces only record per-job volumes,
    not catalog sizes, and the maximum over accesses is the closest
    observable proxy.  One vectorized pass per chunk (shared ``unique`` +
    ``np.maximum.at`` + ``bincount``, scattered into global-id arrays)
    replaces the former two scans; maxima and integer counts are
    order-independent, so serial, merged and per-row results coincide
    exactly.
    """

    resumable = True

    def __init__(self, kind: str, name: Optional[str] = None):
        if kind not in ("input", "output"):
            raise AnalysisError("kind must be 'input' or 'output'")
        self.kind = kind
        self.name = name or ("path_stats_%s" % kind)
        self.columns = ("%s_path" % kind, "%s_bytes" % kind)

    def make_state(self):
        return {
            "known_paths": np.array([], dtype=np.str_),
            "maxima": np.zeros(0),
            "counts": np.zeros(0, dtype=np.int64),
            "arrays": ("maxima", "counts"),
            "fill": {"maxima": 0.0, "counts": 0},
        }

    def snapshot(self, state) -> Dict[str, object]:
        return {"known_paths": state["known_paths"],
                "maxima": state["maxima"], "counts": state["counts"]}

    def restore(self, payload: Dict[str, object]):
        state = self.make_state()
        state["known_paths"] = np.asarray(payload["known_paths"], dtype=np.str_)
        state["maxima"] = np.asarray(payload["maxima"], dtype=float).copy()
        state["counts"] = np.asarray(payload["counts"], dtype=np.int64).copy()
        return state

    def fold(self, state, chunk: ScanChunk):
        sizes = np.nan_to_num(chunk.column(self.columns[1]), nan=0.0)
        unique, inverse = chunk.unique(self.columns[0])
        if unique.size == 0:
            return state
        # Reported sizes clamp at zero, matching the historical
        # max(0.0, size) accumulation.
        maxima = np.zeros(unique.size)
        np.maximum.at(maxima, inverse, sizes)
        counts = np.bincount(inverse, minlength=unique.size)
        if unique[0] == "":  # sorted: the "not recorded" marker is first
            unique, maxima, counts = unique[1:], maxima[1:], counts[1:]
            if unique.size == 0:
                return state
        ids = _assign_global_ids(state, unique)
        np.maximum.at(state["maxima"], ids, maxima)
        state["counts"][ids] += counts
        return state

    def merge(self, a, b):
        if b["known_paths"].size:
            a_ids = _assign_global_ids(a, b["known_paths"])
            np.maximum.at(a["maxima"], a_ids, b["maxima"])
            a["counts"][a_ids] += b["counts"]
        return a

    def finalize(self, state) -> Dict[str, List[float]]:
        if not state["known_paths"].size:
            raise AnalysisError("trace has no recorded %s paths" % self.kind)
        return {path: [high, count]
                for path, high, count in zip(state["known_paths"].tolist(),
                                             state["maxima"].tolist(),
                                             state["counts"].tolist())}


def path_stats(trace, kind: str) -> Dict[str, List[float]]:
    """Per-path [max bytes, access count] for one path kind (one fold).

    Raises:
        AnalysisError: when the trace records no paths of that kind.
    """
    source = TraceSource.wrap(trace)
    consumer = PathStatsConsumer(kind)
    if not source.has_column(consumer.columns[0]):
        raise AnalysisError("trace has no recorded %s paths" % kind)
    return fold_consumer(source, consumer)


def rank_frequencies_from_path_stats(stats: Dict[str, List[float]],
                                     min_items: int = 2) -> RankFrequency:
    """The Figure-2 rank-frequency curve from a path-statistics fold.

    The access counts of :class:`PathStatsConsumer` are exactly the counts
    :func:`~repro.core.zipf.column_rank_frequencies` would tally, so the
    shared scan derives Figure 2 from the same fold as Figures 3/4.
    """
    return rank_frequencies_from_counts(
        {path: int(entry[1]) for path, entry in stats.items()}, min_items=min_items)


# ---------------------------------------------------------------------------
# Figures 3 and 4: jobs and stored bytes versus file size
# ---------------------------------------------------------------------------
@dataclass
class SizeAccessProfile:
    """Access behaviour versus file size for one path kind (input or output).

    Attributes:
        jobs_cdf: CDF of per-job accessed-file size (fraction of jobs whose
            file is at most a given size) — the top panel of Figures 3/4.
        stored_bytes_cdf: CDF of stored bytes versus file size (fraction of
            all stored bytes contributed by files at most a given size) —
            the bottom panel of Figures 3/4.
        file_sizes: size of each distinct file (bytes).
        jobs_below_gb_fraction: fraction of jobs accessing files ≤ a few GB
            (the paper's 90% observation); computed at 4 GB.
        bytes_below_gb_fraction: fraction of stored bytes in those files
            (the paper's ≤16% observation); computed at 4 GB.
    """

    jobs_cdf: EmpiricalCDF
    stored_bytes_cdf: EmpiricalCDF
    file_sizes: np.ndarray
    jobs_below_gb_fraction: float
    bytes_below_gb_fraction: float


def profile_from_path_stats(stats: Dict[str, List[float]],
                            small_file_threshold: float = 4 * GB) -> SizeAccessProfile:
    """Build the Figure-3/4 profile from a per-path statistics fold.

    The per-access size multiset is each file's size repeated by its access
    count — the CDF sorts it anyway, so expanding counts is equivalent to the
    historical per-access second scan.
    """
    if not stats:
        raise AnalysisError("trace has no recorded paths")
    sizes = np.array([entry[0] for entry in stats.values()], dtype=float)
    counts = np.array([entry[1] for entry in stats.values()], dtype=np.int64)
    # Sort the distinct file sizes once and expand by access count: the
    # expansion of a sorted sequence is sorted, so the per-access CDF needs
    # no million-element sort (identical values to sorting the expansion).
    order = np.argsort(sizes)
    per_access = np.repeat(sizes[order], counts[order])
    jobs_cdf = EmpiricalCDF(
        values=per_access,
        fractions=np.arange(1, per_access.size + 1, dtype=float) / per_access.size)

    file_size_array = sizes[order]
    total_stored = float(file_size_array.sum())
    if total_stored <= 0:
        stored_cdf = EmpiricalCDF(values=file_size_array,
                                  fractions=np.linspace(1.0 / max(1, file_size_array.size), 1.0,
                                                        file_size_array.size))
    else:
        stored_cdf = EmpiricalCDF(values=file_size_array,
                                  fractions=np.cumsum(file_size_array) / total_stored)
    return SizeAccessProfile(
        jobs_cdf=jobs_cdf,
        stored_bytes_cdf=stored_cdf,
        file_sizes=file_size_array,
        jobs_below_gb_fraction=jobs_cdf.fraction_at_or_below(small_file_threshold),
        bytes_below_gb_fraction=stored_cdf.fraction_at_or_below(small_file_threshold),
    )


def size_access_profile(trace, kind: str = "input",
                        small_file_threshold: float = 4 * GB) -> SizeAccessProfile:
    """Compute the Figure-3 (input) or Figure-4 (output) profile for a trace."""
    return profile_from_path_stats(path_stats(trace, kind),
                                   small_file_threshold=small_file_threshold)


def eighty_x_from_profile(profile: SizeAccessProfile,
                          job_fraction: float = 0.8) -> float:
    """The "80-x" rule of §4.2 read off an already-computed size profile.

    Following how the paper derives the rule from Figures 3 and 4, the
    computation is size-threshold based: find the file size below which
    ``job_fraction`` of all jobs' accesses fall (top panel), then return the
    percentage of stored bytes held by files up to that size (bottom panel).
    The paper reports values between 1 and 8 — an "80-1" to "80-8" rule.
    """
    if not 0.0 < job_fraction < 1.0:
        raise AnalysisError("job_fraction must be in (0, 1)")
    size_threshold = profile.jobs_cdf.quantile(job_fraction)
    return 100.0 * profile.stored_bytes_cdf.fraction_at_or_below(size_threshold)


def eighty_x_rule(trace, kind: str = "input", job_fraction: float = 0.8) -> float:
    """The "80-x" rule computed directly from a trace (one path-stats fold)."""
    if not 0.0 < job_fraction < 1.0:
        raise AnalysisError("job_fraction must be in (0, 1)")
    return eighty_x_from_profile(size_access_profile(trace, kind), job_fraction)


# ---------------------------------------------------------------------------
# Figures 5 and 6: re-access intervals and fractions (order-sensitive)
# ---------------------------------------------------------------------------
@dataclass
class ReaccessIntervals:
    """Distributions of data re-access intervals (Figure 5).

    Attributes:
        input_input: CDF of intervals between successive reads of the same
            input path (``None`` when no such re-reads exist).
        output_input: CDF of intervals between a job writing a path and a
            later job reading it (``None`` when absent).
        fraction_within_6h: fraction of all re-accesses (both kinds pooled)
            that happen within six hours — the paper reports 75%.
    """

    input_input: Optional[EmpiricalCDF]
    output_input: Optional[EmpiricalCDF]
    fraction_within_6h: float


@dataclass
class ReaccessFractions:
    """Fractions of jobs whose input re-accesses pre-existing data (Figure 6).

    Attributes:
        input_reaccess: fraction of jobs reading a path some earlier job read.
        output_reaccess: fraction of jobs reading a path some earlier job wrote.
        any_reaccess: fraction of jobs doing either.
        jobs_with_paths: number of jobs that recorded an input path at all.
    """

    input_reaccess: float
    output_reaccess: float
    any_reaccess: float
    jobs_with_paths: int


@dataclass
class ReaccessResult:
    """Joint result of the single re-access fold (Figures 5 and 6).

    ``fractions`` is ``None`` when no job recorded an input path (the
    standalone :func:`reaccess_fractions` raises for that case).
    """

    intervals: ReaccessIntervals
    fractions: Optional[ReaccessFractions]


class ReaccessConsumer(ChunkConsumer):
    """Order-sensitive fold of the Figure-5 intervals and Figure-6 fractions.

    The semantics are the paper's sequential row walk: for each job reading a
    path, the governing earlier access is the most recent *write* of that
    path when one exists at least as recent as the last read (output→input),
    else the most recent *read* (input→input); a job re-accesses data when
    its input path was read or written by any earlier job.  The fold declares
    ``ordered=True`` and runs in the pipeline's sequential lane (an unsorted
    store raises instead of silently producing wrong intervals).

    Each chunk is evaluated vectorized instead of row by row: reads and
    writes become ``(path code, row)`` events, the most recent in-chunk
    predecessor of each read is a ``searchsorted`` over the packed event
    keys (a read at row *i* never sees row *i*'s own write, exactly like the
    sequential walk), and per-path carry times from earlier chunks fill the
    segment starts.  Every derived quantity is order-free (interval
    *multisets* feed sorted CDFs; hit counters are sums), so the results are
    identical to the row walk.
    """

    ordered = True
    #: Resumable *when the appended data follows the old data in time* (the
    #: store's sorted flag survives the append) — the per-path carry arrays
    #: are exactly the walk's state after the checkpointed prefix.  When new
    #: data interleaves in time, the shared scan falls back to a full rescan
    #: for this consumer (and says so).
    resumable = True

    def __init__(self, has_input: bool, has_output: bool, name: str = "reaccess"):
        self.name = name
        self.has_input = has_input
        self.has_output = has_output
        columns = ["submit_time_s"]
        if has_input:
            columns.append("input_path")
        if has_output:
            columns.append("output_path")
        self.columns = tuple(columns)

    def make_state(self):
        return {
            # Last read/write times live in arrays aligned with the sorted
            # known-path set, so per-chunk carry state is one vectorized
            # gather instead of per-path dict probes.
            "known_paths": np.array([], dtype=np.str_),
            "read_t": np.zeros(0),
            "write_t": np.zeros(0),
            "arrays": ("read_t", "write_t"),
            "fill": {"read_t": -np.inf, "write_t": -np.inf},
            "input_input": [], "output_input": [],  # lists of per-chunk arrays
            "jobs_with_paths": 0, "input_hits": 0, "output_hits": 0, "any_hits": 0,
        }

    def snapshot(self, state) -> Dict[str, object]:
        return {
            "known_paths": state["known_paths"],
            "read_t": state["read_t"], "write_t": state["write_t"],
            # Interval lists concatenate once here; finalize concatenates
            # anyway, so the restored single-array form folds on identically.
            "input_input": (np.concatenate(state["input_input"])
                            if state["input_input"] else np.zeros(0)),
            "output_input": (np.concatenate(state["output_input"])
                             if state["output_input"] else np.zeros(0)),
            "jobs_with_paths": int(state["jobs_with_paths"]),
            "input_hits": int(state["input_hits"]),
            "output_hits": int(state["output_hits"]),
            "any_hits": int(state["any_hits"]),
        }

    def restore(self, payload: Dict[str, object]):
        state = self.make_state()
        state["known_paths"] = np.asarray(payload["known_paths"], dtype=np.str_)
        state["read_t"] = np.asarray(payload["read_t"], dtype=float).copy()
        state["write_t"] = np.asarray(payload["write_t"], dtype=float).copy()
        for key in ("input_input", "output_input"):
            intervals = np.asarray(payload[key], dtype=float)
            state[key] = [intervals] if intervals.size else []
        for key in ("jobs_with_paths", "input_hits", "output_hits", "any_hits"):
            state[key] = int(payload[key])
        return state

    def fold(self, state, chunk: ScanChunk):
        if not self.has_input:
            return state  # no reads: nothing re-accesses, writes are never consulted
        times = np.asarray(chunk.column("submit_time_s"), dtype=float)
        # recorded_mask compares dictionary codes on a v3 store — the
        # per-row path strings are never materialized in this fold.
        read_mask = chunk.recorded_mask("input_path")
        n_reads = int(read_mask.sum())
        if self.has_output:
            write_mask = chunk.recorded_mask("output_path")
        else:
            write_mask = np.zeros(times.size, dtype=bool)
        state["jobs_with_paths"] += n_reads
        if n_reads == 0 and not write_mask.any():
            return state

        read_rows = np.nonzero(read_mask)[0]
        write_rows = np.nonzero(write_mask)[0]
        # Joint path codes from the cached per-column uniques: merging two
        # sorted unique sets (and remapping through searchsorted) replaces a
        # fresh string sort over all rows of both columns.
        unique_in, inverse_in = chunk.unique("input_path")
        if self.has_output:
            unique_out, inverse_out = chunk.unique("output_path")
            unique_paths = np.union1d(unique_in, unique_out)
            out_positions = np.searchsorted(unique_paths, unique_out)
            write_codes = out_positions[inverse_out[write_rows]]
        else:
            unique_paths = unique_in
            write_codes = np.zeros(0, dtype=np.int64)
        in_positions = np.searchsorted(unique_paths, unique_in)
        read_codes = in_positions[inverse_in[read_rows]]

        global_ids = _assign_global_ids(state, unique_paths)
        carry_read = state["read_t"][global_ids]
        carry_write = state["write_t"][global_ids]

        # Events packed as code * stride + row sort by (path, row); row order
        # stands in for time order because the ordered lane verified
        # non-decreasing submit times.
        stride = times.size + 1
        read_keys = read_codes * stride + read_rows
        write_keys = write_codes * stride + write_rows
        read_order = np.argsort(read_keys)
        sorted_read_keys = read_keys[read_order]
        sorted_read_times = times[read_rows[read_order]]
        sorted_read_codes = read_codes[read_order]
        write_order = np.argsort(write_keys)
        sorted_write_keys = write_keys[write_order]
        sorted_write_times = times[write_rows[write_order]]

        if n_reads:
            # Most recent earlier write of the same path: the predecessor in
            # the packed write keys ('left' excludes the read's own row).
            position = np.searchsorted(sorted_write_keys, sorted_read_keys,
                                       side="left") - 1
            in_chunk = position >= 0
            if in_chunk.any():
                same_path = np.zeros(n_reads, dtype=bool)
                same_path[in_chunk] = (
                    sorted_write_keys[position[in_chunk]] // stride
                    == sorted_read_codes[in_chunk])
                previous_write = np.where(
                    same_path, sorted_write_times[np.maximum(position, 0)],
                    carry_write[sorted_read_codes])
            else:
                previous_write = carry_write[sorted_read_codes]
            # Most recent earlier read: the previous packed read of the path.
            previous_read = carry_read[sorted_read_codes]
            same_prev = np.zeros(n_reads, dtype=bool)
            same_prev[1:] = sorted_read_codes[1:] == sorted_read_codes[:-1]
            previous_read[same_prev] = sorted_read_times[
                np.nonzero(same_prev)[0] - 1]

            has_write = previous_write > -np.inf
            has_read = previous_read > -np.inf
            write_governs = has_write & (~has_read | (previous_write >= previous_read))
            read_governs = has_read & ~write_governs
            if write_governs.any():
                state["output_input"].append(
                    sorted_read_times[write_governs] - previous_write[write_governs])
            if read_governs.any():
                state["input_input"].append(
                    sorted_read_times[read_governs] - previous_read[read_governs])
            state["output_hits"] += int(has_write.sum())
            state["input_hits"] += int((has_read & ~has_write).sum())
            state["any_hits"] += int((has_read | has_write).sum())

            unique_read_codes = np.unique(sorted_read_codes)
            final_read = np.searchsorted(sorted_read_codes, unique_read_codes,
                                         side="right") - 1
            state["read_t"][global_ids[unique_read_codes]] = sorted_read_times[final_read]
        if write_rows.size:
            sorted_write_codes = sorted_write_keys // stride
            unique_write_codes = np.unique(sorted_write_codes)
            final_write = np.searchsorted(sorted_write_codes, unique_write_codes,
                                          side="right") - 1
            state["write_t"][global_ids[unique_write_codes]] = sorted_write_times[final_write]
        return state

    def finalize(self, state) -> ReaccessResult:
        input_input = (np.concatenate(state["input_input"])
                       if state["input_input"] else np.zeros(0))
        output_input = (np.concatenate(state["output_input"])
                        if state["output_input"] else np.zeros(0))
        pooled = np.concatenate([input_input, output_input])
        fraction_6h = float(np.mean(pooled <= 6 * 3600.0)) if pooled.size else 0.0
        intervals = ReaccessIntervals(
            input_input=empirical_cdf(input_input) if input_input.size else None,
            output_input=empirical_cdf(output_input) if output_input.size else None,
            fraction_within_6h=fraction_6h,
        )
        fractions = None
        if state["jobs_with_paths"]:
            fractions = ReaccessFractions(
                input_reaccess=state["input_hits"] / state["jobs_with_paths"],
                output_reaccess=state["output_hits"] / state["jobs_with_paths"],
                any_reaccess=state["any_hits"] / state["jobs_with_paths"],
                jobs_with_paths=state["jobs_with_paths"],
            )
        return ReaccessResult(intervals=intervals, fractions=fractions)


def _reaccess(source: TraceSource) -> ReaccessResult:
    consumer = ReaccessConsumer(has_input=source.has_column("input_path"),
                                has_output=source.has_column("output_path"))
    return fold_consumer(source, consumer)


def reaccess_intervals(trace) -> ReaccessIntervals:
    """Compute re-access interval distributions for a trace.

    Jobs are processed in submission order.  For input→input intervals the
    reference time is the previous *read* of the path; for output→input it is
    the most recent earlier *write*.
    """
    return _reaccess(TraceSource.wrap(trace)).intervals


def reaccess_fractions(trace) -> ReaccessFractions:
    """Compute the Figure-6 fractions for one trace."""
    fractions = _reaccess(TraceSource.wrap(trace)).fractions
    if fractions is None:
        raise AnalysisError("trace has no recorded input paths")
    return fractions


# ---------------------------------------------------------------------------
# Combined result
# ---------------------------------------------------------------------------
@dataclass
class AccessPatternResult:
    """All §4 access-pattern analyses for one trace.

    Any component that cannot be computed because the trace lacks the required
    path dimension is ``None`` — mirroring how the paper omits workloads from
    figures when their traces miss the needed fields.
    """

    workload: str
    input_ranks: Optional[RankFrequency]
    output_ranks: Optional[RankFrequency]
    input_profile: Optional[SizeAccessProfile]
    output_profile: Optional[SizeAccessProfile]
    intervals: Optional[ReaccessIntervals]
    fractions: Optional[ReaccessFractions]
    eighty_x_input: Optional[float]


def analyze_access_patterns(trace) -> AccessPatternResult:
    """Run every §4 analysis that the trace's recorded dimensions permit.

    One shared scan: the two path-statistics folds (feeding Figure 2,
    Figures 3/4 and the 80-x rule) and the ordered re-access fold (Figures
    5/6) all register on a single :class:`ScanPipeline`, so the trace is
    decoded once for the whole section.
    """
    source = TraceSource.wrap(trace)
    if source.is_empty():
        raise AnalysisError("cannot analyze access patterns of an empty trace")

    pipeline = ScanPipeline(source)
    pipeline.add(PathStatsConsumer("input"))
    pipeline.add(PathStatsConsumer("output"))
    pipeline.add(ReaccessConsumer(has_input=source.has_column("input_path"),
                                  has_output=source.has_column("output_path")))
    scan = pipeline.run()
    input_stats = scan.get("path_stats_input")
    output_stats = scan.get("path_stats_output")
    reaccess = scan.get("reaccess")

    def attempt(function, *args):
        try:
            return function(*args)
        except AnalysisError:
            return None

    input_profile = (attempt(profile_from_path_stats, input_stats)
                     if input_stats is not None else None)
    return AccessPatternResult(
        workload=source.name,
        input_ranks=(attempt(rank_frequencies_from_path_stats, input_stats)
                     if input_stats is not None else None),
        output_ranks=(attempt(rank_frequencies_from_path_stats, output_stats)
                      if output_stats is not None else None),
        input_profile=input_profile,
        output_profile=(attempt(profile_from_path_stats, output_stats)
                        if output_stats is not None else None),
        intervals=reaccess.intervals if reaccess is not None else None,
        fractions=reaccess.fractions if reaccess is not None else None,
        eighty_x_input=(attempt(eighty_x_from_profile, input_profile)
                        if input_profile is not None else None),
    )
