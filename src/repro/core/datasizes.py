"""Per-job data size analysis (§4.1 and Figure 1 of the paper).

Figure 1 plots the cumulative distribution of per-job input, shuffle and
output sizes for every workload.  The headline observations are that median
sizes differ across workloads by 6 / 8 / 4 orders of magnitude (input /
shuffle / output), and that most jobs move megabytes to gigabytes — far below
the terabyte scale assumed by earlier micro-benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..errors import AnalysisError
from ..units import GB, MB
from .stats import EmpiricalCDF, empirical_cdf

__all__ = ["DataSizeDistributions", "analyze_data_sizes", "median_spread_orders"]

#: Per-job size dimensions, in Figure 1 column order.
SIZE_DIMENSIONS = ("input_bytes", "shuffle_bytes", "output_bytes")


@dataclass
class DataSizeDistributions:
    """CDFs of per-job input, shuffle and output size for one workload.

    Attributes:
        workload: workload name.
        cdfs: mapping of dimension name -> :class:`EmpiricalCDF`.
        medians: mapping of dimension name -> median bytes.
        fraction_below_gb: mapping of dimension name -> fraction of jobs whose
            size is below 1 GB (the "MB to GB range" observation of §4.1).
        map_only_fraction: fraction of jobs with zero shuffle and reduce time.
    """

    workload: str
    cdfs: Dict[str, EmpiricalCDF]
    medians: Dict[str, float]
    fraction_below_gb: Dict[str, float]
    map_only_fraction: float

    def median(self, dimension: str) -> float:
        if dimension not in self.medians:
            raise AnalysisError("unknown size dimension %r" % (dimension,))
        return self.medians[dimension]


def analyze_data_sizes(trace) -> DataSizeDistributions:
    """Compute Figure-1 style per-job size distributions for one trace.

    Accepts either representation — a job-list :class:`Trace` or a
    :class:`repro.engine.ColumnarTrace` — since both expose the same
    ``dimension`` accessor.  The map-only fraction is computed from the
    dimension arrays directly (NaN counts as zero, matching
    :attr:`Job.is_map_only`), so no per-job Python loop runs either way.
    """
    if trace.is_empty():
        raise AnalysisError("cannot analyze data sizes of an empty trace")
    cdfs: Dict[str, EmpiricalCDF] = {}
    medians: Dict[str, float] = {}
    below_gb: Dict[str, float] = {}
    for dimension in SIZE_DIMENSIONS:
        values = trace.dimension(dimension)
        cdf = empirical_cdf(values)
        cdfs[dimension] = cdf
        medians[dimension] = cdf.median()
        below_gb[dimension] = cdf.fraction_at_or_below(float(GB))
    shuffle = np.nan_to_num(trace.dimension("shuffle_bytes"), nan=0.0)
    reduce_s = np.nan_to_num(trace.dimension("reduce_task_seconds"), nan=0.0)
    map_only = float(np.mean((shuffle == 0.0) & (reduce_s == 0.0)))
    return DataSizeDistributions(
        workload=trace.name,
        cdfs=cdfs,
        medians=medians,
        fraction_below_gb=below_gb,
        map_only_fraction=float(map_only),
    )


def median_spread_orders(distributions: Iterable[DataSizeDistributions],
                         dimension: str) -> float:
    """Spread (in orders of magnitude) of median job size across workloads.

    The paper reports spreads of 6, 8 and 4 orders of magnitude for input,
    shuffle and output respectively.  Zero medians (e.g. the all-map-only
    shuffle medians) are clamped to 1 byte before taking logarithms.

    Raises:
        AnalysisError: when fewer than two workloads are provided.
    """
    medians: List[float] = []
    for dist in distributions:
        medians.append(max(1.0, dist.median(dimension)))
    if len(medians) < 2:
        raise AnalysisError("median spread needs at least two workloads")
    return float(np.log10(max(medians)) - np.log10(min(medians)))
