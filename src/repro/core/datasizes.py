"""Per-job data size analysis (§4.1 and Figure 1 of the paper).

Figure 1 plots the cumulative distribution of per-job input, shuffle and
output sizes for every workload.  The headline observations are that median
sizes differ across workloads by 6 / 8 / 4 orders of magnitude (input /
shuffle / output), and that most jobs move megabytes to gigabytes — far below
the terabyte scale assumed by earlier micro-benchmarks.

The analysis consumes any :class:`~repro.engine.source.TraceSource`-wrappable
representation.  Materialized sources get exact sorting-based CDFs; streaming
sources (a :class:`~repro.engine.store.ChunkedTraceStore`) are folded in one
chunked scan into mergeable log-histogram sketches, so the whole Figure-1
pipeline runs with memory bounded by chunk size.  Counts (the map-only
fraction) are exact either way; sketch medians and below-1GB fractions are
accurate to histogram-bin resolution (about 7.5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from ..engine.aggregates import HistogramSketch
from ..engine.pipeline import ChunkConsumer, ScanChunk, fold_consumer
from ..engine.source import TraceSource
from ..errors import AnalysisError
from ..units import GB
from .stats import SketchCDF, empirical_cdf

__all__ = ["DataSizeDistributions", "DataSizeConsumer", "analyze_data_sizes",
           "median_spread_orders"]

#: Per-job size dimensions, in Figure 1 column order.
SIZE_DIMENSIONS = ("input_bytes", "shuffle_bytes", "output_bytes")


@dataclass
class DataSizeDistributions:
    """CDFs of per-job input, shuffle and output size for one workload.

    Attributes:
        workload: workload name.
        cdfs: mapping of dimension name -> CDF.  Exact
            :class:`~repro.core.stats.EmpiricalCDF` for materialized sources,
            sketch-backed :class:`~repro.core.stats.SketchCDF` for streaming
            ones; both expose the same read-out API.
        medians: mapping of dimension name -> median bytes.
        fraction_below_gb: mapping of dimension name -> fraction of jobs whose
            size is below 1 GB (the "MB to GB range" observation of §4.1).
        map_only_fraction: fraction of jobs with zero shuffle and reduce time
            (always exact).
    """

    workload: str
    cdfs: Dict[str, object]
    medians: Dict[str, float]
    fraction_below_gb: Dict[str, float]
    map_only_fraction: float

    def median(self, dimension: str) -> float:
        if dimension not in self.medians:
            raise AnalysisError("unknown size dimension %r" % (dimension,))
        return self.medians[dimension]


def analyze_data_sizes(trace) -> DataSizeDistributions:
    """Compute Figure-1 style per-job size distributions for one trace.

    Accepts a :class:`Trace`, :class:`ColumnarTrace`, :class:`ChunkedTraceStore`
    or :class:`TraceSource`.  Materialized representations keep the exact
    empirical CDFs; streaming ones are scanned chunk by chunk into percentile
    sketches without materializing any column.
    """
    source = TraceSource.wrap(trace)
    if source.is_empty():
        raise AnalysisError("cannot analyze data sizes of an empty trace")
    if source.is_streaming:
        return _analyze_streaming(source)
    return _analyze_materialized(source)


def _analyze_materialized(source: TraceSource) -> DataSizeDistributions:
    cdfs: Dict[str, object] = {}
    medians: Dict[str, float] = {}
    below_gb: Dict[str, float] = {}
    for dimension in SIZE_DIMENSIONS:
        cdf = empirical_cdf(source.dimension(dimension))
        cdfs[dimension] = cdf
        medians[dimension] = cdf.median()
        below_gb[dimension] = cdf.fraction_at_or_below(float(GB))
    shuffle = np.nan_to_num(source.dimension("shuffle_bytes"), nan=0.0)
    reduce_s = np.nan_to_num(source.dimension("reduce_task_seconds"), nan=0.0)
    map_only = float(np.mean((shuffle == 0.0) & (reduce_s == 0.0)))
    return DataSizeDistributions(
        workload=source.name,
        cdfs=cdfs,
        medians=medians,
        fraction_below_gb=below_gb,
        map_only_fraction=map_only,
    )


class DataSizeConsumer(ChunkConsumer):
    """Shared-scan fold for the Figure-1 size distributions (streaming form).

    One pass over the size columns accumulates three mergeable log-histogram
    sketches plus the exact map-only count; ``finalize`` reads out the
    sketch-backed :class:`DataSizeDistributions`.
    """

    columns = SIZE_DIMENSIONS + ("reduce_task_seconds",)
    resumable = True

    def __init__(self, name: str = "data_sizes", workload: str = "trace"):
        self.name = name
        self.workload = workload

    def make_state(self):
        return {"sketches": {dimension: HistogramSketch() for dimension in SIZE_DIMENSIONS},
                "n_rows": 0, "n_map_only": 0}

    def snapshot(self, state) -> Dict[str, object]:
        payload: Dict[str, object] = {"n_rows": int(state["n_rows"]),
                                      "n_map_only": int(state["n_map_only"])}
        for dimension in SIZE_DIMENSIONS:
            sketch = state["sketches"][dimension]
            payload["%s.counts" % dimension] = sketch.counts
            payload["%s.zero_count" % dimension] = int(sketch.zero_count)
            payload["%s.n" % dimension] = int(sketch.n)
            payload["%s.low" % dimension] = sketch.low
            payload["%s.high" % dimension] = sketch.high
        return payload

    def restore(self, payload: Dict[str, object]):
        state = self.make_state()
        state["n_rows"] = int(payload["n_rows"])
        state["n_map_only"] = int(payload["n_map_only"])
        for dimension in SIZE_DIMENSIONS:
            sketch = state["sketches"][dimension]
            sketch.counts = np.asarray(payload["%s.counts" % dimension],
                                       dtype=np.int64).copy()
            sketch.zero_count = int(payload["%s.zero_count" % dimension])
            sketch.n = int(payload["%s.n" % dimension])
            low = payload["%s.low" % dimension]
            high = payload["%s.high" % dimension]
            sketch.low = None if low is None else float(low)
            sketch.high = None if high is None else float(high)
        return state

    def fold(self, state, chunk: ScanChunk):
        state["n_rows"] += chunk.n_rows
        for dimension in SIZE_DIMENSIONS:
            state["sketches"][dimension].update(chunk.column(dimension))
        shuffle = np.nan_to_num(chunk.column("shuffle_bytes"), nan=0.0)
        reduce_s = np.nan_to_num(chunk.column("reduce_task_seconds"), nan=0.0)
        state["n_map_only"] += int(((shuffle == 0.0) & (reduce_s == 0.0)).sum())
        return state

    def merge(self, a, b):
        for dimension in SIZE_DIMENSIONS:
            a["sketches"][dimension].merge(b["sketches"][dimension])
        a["n_rows"] += b["n_rows"]
        a["n_map_only"] += b["n_map_only"]
        return a

    def finalize(self, state) -> DataSizeDistributions:
        if state["n_rows"] == 0:
            raise AnalysisError("cannot analyze data sizes of an empty trace")
        cdfs: Dict[str, object] = {}
        medians: Dict[str, float] = {}
        below_gb: Dict[str, float] = {}
        for dimension in SIZE_DIMENSIONS:
            sketch = state["sketches"][dimension]
            if sketch.n == 0:
                raise AnalysisError("dimension %r records no finite samples" % (dimension,))
            cdf = SketchCDF(sketch)
            cdfs[dimension] = cdf
            medians[dimension] = cdf.median()
            below_gb[dimension] = cdf.fraction_at_or_below(float(GB))
        return DataSizeDistributions(
            workload=self.workload,
            cdfs=cdfs,
            medians=medians,
            fraction_below_gb=below_gb,
            map_only_fraction=state["n_map_only"] / state["n_rows"],
        )


def _analyze_streaming(source: TraceSource) -> DataSizeDistributions:
    """One chunked scan: three percentile sketches plus the map-only count."""
    return fold_consumer(source, DataSizeConsumer(workload=source.name))


def median_spread_orders(distributions: Iterable[DataSizeDistributions],
                         dimension: str) -> float:
    """Spread (in orders of magnitude) of median job size across workloads.

    The paper reports spreads of 6, 8 and 4 orders of magnitude for input,
    shuffle and output respectively.  Zero medians (e.g. the all-map-only
    shuffle medians) are clamped to 1 byte before taking logarithms.

    Raises:
        AnalysisError: when fewer than two workloads are provided.
    """
    medians: List[float] = []
    for dist in distributions:
        medians.append(max(1.0, dist.median(dimension)))
    if len(medians) < 2:
        raise AnalysisError("median spread needs at least two workloads")
    return float(np.log10(max(medians)) - np.log10(min(medians)))
