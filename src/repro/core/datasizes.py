"""Per-job data size analysis (§4.1 and Figure 1 of the paper).

Figure 1 plots the cumulative distribution of per-job input, shuffle and
output sizes for every workload.  The headline observations are that median
sizes differ across workloads by 6 / 8 / 4 orders of magnitude (input /
shuffle / output), and that most jobs move megabytes to gigabytes — far below
the terabyte scale assumed by earlier micro-benchmarks.

The analysis consumes any :class:`~repro.engine.source.TraceSource`-wrappable
representation.  Materialized sources get exact sorting-based CDFs; streaming
sources (a :class:`~repro.engine.store.ChunkedTraceStore`) are folded in one
chunked scan into mergeable log-histogram sketches, so the whole Figure-1
pipeline runs with memory bounded by chunk size.  Counts (the map-only
fraction) are exact either way; sketch medians and below-1GB fractions are
accurate to histogram-bin resolution (about 7.5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from ..engine.aggregates import HistogramSketch
from ..engine.source import TraceSource
from ..errors import AnalysisError
from ..units import GB
from .stats import SketchCDF, empirical_cdf

__all__ = ["DataSizeDistributions", "analyze_data_sizes", "median_spread_orders"]

#: Per-job size dimensions, in Figure 1 column order.
SIZE_DIMENSIONS = ("input_bytes", "shuffle_bytes", "output_bytes")


@dataclass
class DataSizeDistributions:
    """CDFs of per-job input, shuffle and output size for one workload.

    Attributes:
        workload: workload name.
        cdfs: mapping of dimension name -> CDF.  Exact
            :class:`~repro.core.stats.EmpiricalCDF` for materialized sources,
            sketch-backed :class:`~repro.core.stats.SketchCDF` for streaming
            ones; both expose the same read-out API.
        medians: mapping of dimension name -> median bytes.
        fraction_below_gb: mapping of dimension name -> fraction of jobs whose
            size is below 1 GB (the "MB to GB range" observation of §4.1).
        map_only_fraction: fraction of jobs with zero shuffle and reduce time
            (always exact).
    """

    workload: str
    cdfs: Dict[str, object]
    medians: Dict[str, float]
    fraction_below_gb: Dict[str, float]
    map_only_fraction: float

    def median(self, dimension: str) -> float:
        if dimension not in self.medians:
            raise AnalysisError("unknown size dimension %r" % (dimension,))
        return self.medians[dimension]


def analyze_data_sizes(trace) -> DataSizeDistributions:
    """Compute Figure-1 style per-job size distributions for one trace.

    Accepts a :class:`Trace`, :class:`ColumnarTrace`, :class:`ChunkedTraceStore`
    or :class:`TraceSource`.  Materialized representations keep the exact
    empirical CDFs; streaming ones are scanned chunk by chunk into percentile
    sketches without materializing any column.
    """
    source = TraceSource.wrap(trace)
    if source.is_empty():
        raise AnalysisError("cannot analyze data sizes of an empty trace")
    if source.is_streaming:
        return _analyze_streaming(source)
    return _analyze_materialized(source)


def _analyze_materialized(source: TraceSource) -> DataSizeDistributions:
    cdfs: Dict[str, object] = {}
    medians: Dict[str, float] = {}
    below_gb: Dict[str, float] = {}
    for dimension in SIZE_DIMENSIONS:
        cdf = empirical_cdf(source.dimension(dimension))
        cdfs[dimension] = cdf
        medians[dimension] = cdf.median()
        below_gb[dimension] = cdf.fraction_at_or_below(float(GB))
    shuffle = np.nan_to_num(source.dimension("shuffle_bytes"), nan=0.0)
    reduce_s = np.nan_to_num(source.dimension("reduce_task_seconds"), nan=0.0)
    map_only = float(np.mean((shuffle == 0.0) & (reduce_s == 0.0)))
    return DataSizeDistributions(
        workload=source.name,
        cdfs=cdfs,
        medians=medians,
        fraction_below_gb=below_gb,
        map_only_fraction=map_only,
    )


def _analyze_streaming(source: TraceSource) -> DataSizeDistributions:
    """One chunked scan: three percentile sketches plus the map-only count."""
    sketches = {dimension: HistogramSketch() for dimension in SIZE_DIMENSIONS}
    n_rows = 0
    n_map_only = 0
    columns = list(SIZE_DIMENSIONS) + ["reduce_task_seconds"]
    for block in source.iter_chunks(columns=columns):
        if block.n_rows == 0:
            continue
        n_rows += block.n_rows
        for dimension in SIZE_DIMENSIONS:
            sketches[dimension].update(block.column(dimension))
        shuffle = np.nan_to_num(block.column("shuffle_bytes"), nan=0.0)
        reduce_s = np.nan_to_num(block.column("reduce_task_seconds"), nan=0.0)
        n_map_only += int(((shuffle == 0.0) & (reduce_s == 0.0)).sum())

    cdfs: Dict[str, object] = {}
    medians: Dict[str, float] = {}
    below_gb: Dict[str, float] = {}
    for dimension in SIZE_DIMENSIONS:
        sketch = sketches[dimension]
        if sketch.n == 0:
            raise AnalysisError("dimension %r records no finite samples" % (dimension,))
        cdf = SketchCDF(sketch)
        cdfs[dimension] = cdf
        medians[dimension] = cdf.median()
        below_gb[dimension] = cdf.fraction_at_or_below(float(GB))
    return DataSizeDistributions(
        workload=source.name,
        cdfs=cdfs,
        medians=medians,
        fraction_below_gb=below_gb,
        map_only_fraction=(n_map_only / n_rows) if n_rows else 0.0,
    )


def median_spread_orders(distributions: Iterable[DataSizeDistributions],
                         dimension: str) -> float:
    """Spread (in orders of magnitude) of median job size across workloads.

    The paper reports spreads of 6, 8 and 4 orders of magnitude for input,
    shuffle and output respectively.  Zero medians (e.g. the all-map-only
    shuffle medians) are clamped to 1 byte before taking logarithms.

    Raises:
        AnalysisError: when fewer than two workloads are provided.
    """
    medians: List[float] = []
    for dist in distributions:
        medians.append(max(1.0, dist.median(dimension)))
    if len(medians) < 2:
        raise AnalysisError("median spread needs at least two workloads")
    return float(np.log10(max(medians)) - np.log10(min(medians)))
