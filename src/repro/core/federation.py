"""Cross-store workload comparison: the seven-cluster argument as one call.

§7 of the paper puts seven clusters side by side and concludes that no single
workload is representative; §4.1 tracks one deployment across two yearly
snapshots.  :func:`compare_catalog` runs both studies store-natively over a
:class:`~repro.engine.catalog.StoreCatalog`: every member store is profiled
in one shared chunk scan (fanned over worker processes per member with a
:class:`~repro.engine.parallel.ParallelExecutor`, bit-identical to the serial
per-store walk), the per-member feature vectors feed the §7 pairwise
distances and greedy suite selection, and members of the same cluster are
chained epoch-over-epoch into §4.1 evolution reports.  The resulting
:class:`FederationReport` is what ``repro engine compare --catalog`` prints
and what the service daemon's ``/v1/catalog/compare`` endpoint serializes.

Features, distances and drift rows are keyed by **catalog member name** (not
the store's internal workload name), so two members ingested from the same
workload never collide in the distance lookup.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.catalog import CatalogEntry, StoreCatalog
from ..engine.federation import FederatedSource
from ..errors import AnalysisError
from .comparison import (
    FEATURE_NAMES,
    WorkloadFeatures,
    WorkloadSuite,
    features_from_profile,
    select_workload_suite,
    workload_distance,
)
from .datasizes import SIZE_DIMENSIONS
from .evolution import EvolutionReport, evolution_from_profiles
from .profile import (
    DEFAULT_SMALL_JOB_THRESHOLD_BYTES,
    WorkloadProfile,
    profile_consumers,
    profile_from_scan,
)
from .report import render_table

__all__ = ["PairComparison", "FederationReport", "compare_catalog"]


def _member_profile_consumers(source, member_name: str,
                              threshold: float = DEFAULT_SMALL_JOB_THRESHOLD_BYTES):
    """Module-level (picklable) consumer factory for federated profile scans."""
    return profile_consumers(source, member_name, threshold)


@dataclass
class PairComparison:
    """One focus pair of the cross-cluster comparison.

    Attributes:
        a / b: member names.
        distance: population-scaled feature distance (see
            :func:`~repro.core.comparison.workload_distance`).
        deltas: per-feature raw value difference, ``b - a``, in
            ``FEATURE_NAMES`` order.
    """

    a: str
    b: str
    distance: float
    deltas: Dict[str, float] = field(default_factory=dict)

    def top_deltas(self, n: int = 3) -> List[Tuple[str, float]]:
        """The ``n`` features that differ most (by absolute delta)."""
        ranked = sorted(self.deltas.items(),
                        key=lambda item: (-abs(item[1]), item[0]))
        return ranked[:n]


@dataclass
class FederationReport:
    """Everything one federated catalog comparison produced.

    Attributes:
        catalog_directory: the catalog root the members came from.
        members: the compared entries, in comparison order.
        profiles: per-member :class:`WorkloadProfile`, keyed by member name.
        features: per-member §7 feature vectors, keyed by member name.
        distances: full pairwise population-scaled distances keyed by
            ``(name, name)`` (symmetric, zero diagonal).
        pairs: the focus pairs (every unordered pair unless the caller
            narrowed them), with per-feature deltas.
        suite: greedy k-center representative suite, when one was requested.
        drift: per-cluster epoch-over-epoch §4.1 evolution chains, keyed by
            cluster name — only clusters with at least two compared epochs
            appear.
        small_job_threshold_bytes: threshold the small-job features used.
    """

    catalog_directory: str
    members: List[CatalogEntry]
    profiles: Dict[str, WorkloadProfile]
    features: Dict[str, WorkloadFeatures]
    distances: Dict[Tuple[str, str], float]
    pairs: List[PairComparison]
    suite: Optional[WorkloadSuite]
    drift: Dict[str, List[EvolutionReport]]
    small_job_threshold_bytes: float

    def member_names(self) -> List[str]:
        return [entry.name for entry in self.members]

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-safe form (the service endpoint and ``--json`` CLI output)."""
        members = []
        for entry in self.members:
            profile = self.profiles[entry.name]
            members.append({
                "name": entry.name,
                "cluster": entry.cluster,
                "epoch": entry.epoch,
                "n_jobs": profile.n_jobs,
                "small_job_fraction": profile.small_job_fraction,
                "map_only_fraction": profile.sizes.map_only_fraction,
                "peak_to_median": profile.burstiness.peak_to_median,
                "medians": {dimension: profile.sizes.median(dimension)
                            for dimension in SIZE_DIMENSIONS},
            })
        names = self.member_names()
        return {
            "catalog": self.catalog_directory,
            "small_job_threshold_bytes": self.small_job_threshold_bytes,
            "members": members,
            "features": {name: dict(self.features[name].values) for name in names},
            "distances": [{"a": a, "b": b, "distance": self.distances[(a, b)]}
                          for i, a in enumerate(names)
                          for b in names[i + 1:]],
            "pairs": [{"a": pair.a, "b": pair.b, "distance": pair.distance,
                       "deltas": dict(pair.deltas)} for pair in self.pairs],
            "suite": None if self.suite is None else {
                "selected": list(self.suite.selected),
                "coverage_radius": self.suite.coverage_radius,
                "assignment": dict(self.suite.assignment),
            },
            "drift": {cluster: [_evolution_to_dict(report) for report in chain]
                      for cluster, chain in self.drift.items()},
        }

    # -- rendering ---------------------------------------------------------
    def render(self) -> str:
        """Human-readable report: members, distances, suite, drift."""
        sections: List[str] = []
        rows = []
        for entry in self.members:
            profile = self.profiles[entry.name]
            rows.append([
                entry.name, entry.cluster, entry.epoch or "-",
                "%d" % profile.n_jobs,
                _bytes_label(profile.sizes.median("input_bytes")),
                "%.1f%%" % (100 * profile.small_job_fraction),
                "%.1f%%" % (100 * profile.sizes.map_only_fraction),
                "%.0f:1" % profile.burstiness.peak_to_median,
            ])
        sections.append(render_table(
            ["member", "cluster", "epoch", "jobs", "median input",
             "small jobs", "map-only", "peak:median"],
            rows,
            title="Federated comparison over %d member stores (%s)"
                  % (len(self.members), self.catalog_directory)))

        pair_rows = []
        for pair in self.pairs:
            top = ", ".join("%s %+.2f" % (name, delta)
                            for name, delta in pair.top_deltas(3))
            pair_rows.append([pair.a, pair.b, "%.3f" % pair.distance, top])
        if pair_rows:
            sections.append(render_table(
                ["A", "B", "distance", "largest feature deltas (B - A)"],
                pair_rows, title="Cross-cluster distances (population-scaled)"))

        if self.suite is not None:
            lines = ["Representative suite (greedy k-center):"]
            lines.append("  selected: %s" % ", ".join(self.suite.selected))
            lines.append("  coverage radius: %.3f" % self.suite.coverage_radius)
            for name in self.member_names():
                lines.append("  %s -> %s" % (name, self.suite.assignment[name]))
            sections.append("\n".join(lines))

        if self.drift:
            lines = ["Epoch-over-epoch drift:"]
            for cluster in sorted(self.drift):
                for report in self.drift[cluster]:
                    lines.extend(report.summary_lines())
            sections.append("\n".join(lines))
        else:
            sections.append("Epoch-over-epoch drift: no cluster has two or "
                            "more compared epochs")
        return "\n\n".join(sections)


def _bytes_label(value: float) -> str:
    for unit, scale in (("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if value >= scale:
            return "%.1f %s" % (value / scale, unit)
    return "%.0f B" % value


def _evolution_to_dict(report: EvolutionReport) -> Dict:
    return {
        "before": report.before_name,
        "after": report.after_name,
        "shifts": {dimension: {
            "median_before": shift.median_before,
            "median_after": shift.median_after,
            "orders_of_magnitude": shift.orders_of_magnitude,
        } for dimension, shift in report.shifts.items()},
        "peak_to_median_before": report.peak_to_median_before,
        "peak_to_median_after": report.peak_to_median_after,
        "burstiness_reduction": report.burstiness_reduction,
        "small_job_fraction_before": report.small_job_fraction_before,
        "small_job_fraction_after": report.small_job_fraction_after,
        "map_only_fraction_before": report.map_only_fraction_before,
        "map_only_fraction_after": report.map_only_fraction_after,
        "job_count_growth": report.job_count_growth,
        "summary": report.summary_lines(),
    }


def _epoch_chains(members: Sequence[CatalogEntry]) -> Dict[str, List[CatalogEntry]]:
    """Per-cluster members in epoch order (same key as ``StoreCatalog.epochs``)."""
    chains: Dict[str, List[CatalogEntry]] = {}
    for entry in members:
        chains.setdefault(entry.cluster, []).append(entry)
    ordered = {}
    for cluster, entries in chains.items():
        entries = sorted(entries, key=lambda entry: (entry.epoch is not None,
                                                     entry.epoch or "", entry.name))
        if len(entries) >= 2:
            ordered[cluster] = entries
    return ordered


def compare_catalog(catalog, members: Optional[Sequence[str]] = None,
                    pairs: Optional[Sequence[Tuple[str, str]]] = None,
                    suite_size: Optional[int] = None,
                    small_job_threshold_bytes: float = DEFAULT_SMALL_JOB_THRESHOLD_BYTES,
                    executor=None, checkpoint_dir: Optional[str] = None,
                    profiles: Optional[Dict[str, WorkloadProfile]] = None) -> FederationReport:
    """Compare every member store of a catalog in one federated pass.

    Args:
        catalog: a :class:`StoreCatalog`, :class:`FederatedSource`, or a
            catalog directory path.
        members: member names to compare (default: every catalog member).
            Needs at least two.
        pairs: focus pairs to detail with per-feature deltas (default: every
            unordered pair of the compared members).
        suite_size: when given, also select a representative suite of this
            size by greedy k-center.
        small_job_threshold_bytes: threshold of the small-job features.
        executor: optional :class:`~repro.engine.parallel.ParallelExecutor`
            profiling members in parallel, one member per worker task.
            Results are bit-identical to the serial walk.
        checkpoint_dir: per-member profile checkpoints live here
            (``<dir>/<member>.checkpoint.json``); reruns after appends fold
            only the new chunks per member.
        profiles: precomputed per-member profiles keyed by member name (the
            service daemon passes profiles computed under shared-scan
            admission); members without one are profiled here.

    Raises:
        AnalysisError: for fewer than two members, an unknown pair name, or
            an empty member store.
    """
    if isinstance(catalog, FederatedSource):
        federated = catalog if members is None else FederatedSource(
            [catalog.entry(name) for name in members])
        catalog_directory = os.path.commonpath(
            [entry.directory for entry in federated.members]) if federated.members else ""
    else:
        if not isinstance(catalog, StoreCatalog):
            catalog = StoreCatalog(os.fspath(catalog))
        catalog_directory = catalog.directory
        federated = FederatedSource.from_catalog(catalog, names=members)

    names = federated.names()
    if len(names) < 2:
        raise AnalysisError(
            "federated comparison needs at least two member stores "
            "(catalog %s has %d)" % (catalog_directory, len(names)))

    have = dict(profiles or {})
    missing = [entry for entry in federated.members if entry.name not in have]
    if missing:
        factory = functools.partial(_member_profile_consumers,
                                    threshold=small_job_threshold_bytes)
        scans = FederatedSource(missing).scan(factory, executor=executor,
                                              checkpoint_dir=checkpoint_dir)
        for name, scan in scans.items():
            profile = profile_from_scan(scan.result, name, small_job_threshold_bytes)
            profile.resume = scan.resume
            profile.checkpoint_path = scan.checkpoint_path
            have[name] = profile
    member_profiles = {name: have[name] for name in names}

    features = {name: features_from_profile(member_profiles[name]) for name in names}
    population = [features[name] for name in names]
    distances = {(a, b): workload_distance(features[a], features[b], population)
                 for a in names for b in names}

    if pairs is None:
        focus = [(a, b) for i, a in enumerate(names) for b in names[i + 1:]]
    else:
        focus = []
        for a, b in pairs:
            for name in (a, b):
                if name not in features:
                    raise AnalysisError(
                        "unknown member %r in comparison pair %s,%s (have: %s)"
                        % (name, a, b, ", ".join(names)))
            focus.append((a, b))
    pair_reports = []
    for a, b in focus:
        deltas = {feature: features[b].values[feature] - features[a].values[feature]
                  for feature in FEATURE_NAMES}
        pair_reports.append(PairComparison(a=a, b=b, distance=distances[(a, b)],
                                           deltas=deltas))

    suite = (select_workload_suite(population, suite_size)
             if suite_size is not None else None)

    drift: Dict[str, List[EvolutionReport]] = {}
    for cluster, chain in _epoch_chains(federated.members).items():
        reports = []
        for earlier, later in zip(chain, chain[1:]):
            reports.append(evolution_from_profiles(member_profiles[earlier.name],
                                                   member_profiles[later.name]))
        drift[cluster] = reports

    return FederationReport(
        catalog_directory=catalog_directory,
        members=list(federated.members),
        profiles=member_profiles,
        features=features,
        distances=distances,
        pairs=pair_reports,
        suite=suite,
        drift=drift,
        small_job_threshold_bytes=float(small_job_threshold_bytes),
    )
