"""Workload consolidation (multiplexing) analysis (§5.2 of the paper).

The paper observes that between 2009 and 2010 Facebook's peak-to-median load
ratio dropped from 31:1 to 9:1 as more internal organizations started sharing
the cluster: "multiplexing many workloads helps decrease burstiness.  However,
the workload remains bursty."  This module makes that effect measurable for
arbitrary combinations of traces:

* :func:`consolidate` merges several traces onto one timeline (jobs get
  workload-prefixed ids so the merged trace stays analyzable per source);
* :func:`consolidation_study` computes each source's burstiness, the merged
  workload's burstiness, and the reduction factors — the numbers behind the
  "does sharing a cluster smooth the load" question that drives consolidation
  and capacity-planning decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..engine.pipeline import ChunkConsumer, ScanChunk, fold_consumer
from ..engine.source import TraceSource
from ..errors import AnalysisError
from ..traces.schema import Job
from ..traces.trace import Trace
from .burstiness import BurstinessResult, analyze_burstiness, burstiness_curve

__all__ = ["consolidate", "ConsolidationStudy", "ShiftedHourlyTaskSecondsConsumer",
           "consolidation_study"]


def consolidate(traces: Sequence[Trace], name: str = "consolidated",
                align_starts: bool = True) -> Trace:
    """Merge several traces into one consolidated workload.

    Job ids are prefixed with their source workload name so the merged trace
    keeps one unique id per job and per-source analyses remain possible
    through the ``workload`` field.

    Args:
        traces: the source traces (at least two).
        name: name of the merged trace.
        align_starts: when true every source is shifted so its first
            submission lands at time zero before merging — the consolidation
            question is about concurrent sharing, not about calendar overlap
            of trace collection windows.

    Raises:
        AnalysisError: with fewer than two non-empty traces.
    """
    non_empty = [trace for trace in traces if not trace.is_empty()]
    if len(non_empty) < 2:
        raise AnalysisError("consolidation needs at least two non-empty traces")

    merged_jobs: List[Job] = []
    machines = 0
    for trace in non_empty:
        offset = -trace.jobs[0].submit_time_s if align_starts else 0.0
        machines += trace.machines or 0
        for job in trace:
            data = job.to_dict()
            data["job_id"] = "%s/%s" % (trace.name, job.job_id)
            data["submit_time_s"] = job.submit_time_s + offset
            data["workload"] = data.get("workload") or trace.name
            merged_jobs.append(Job.from_dict(data))
    return Trace(merged_jobs, name=name, machines=machines or None)


@dataclass
class ConsolidationStudy:
    """Burstiness before and after consolidating several workloads.

    Attributes:
        source_burstiness: per-source :class:`BurstinessResult`.
        consolidated_burstiness: burstiness of the merged workload.
        peak_to_median_reduction: mean source peak-to-median divided by the
            consolidated peak-to-median (>1 means consolidation smoothed the load).
        p99_reduction: same ratio at the 99th percentile.
        remains_bursty: whether the consolidated peak-to-median still exceeds
            the ``bursty_threshold`` used for the study (the paper's point:
            multiplexing helps, but the workload *remains* bursty).
        bursty_threshold: the peak-to-median ratio above which a workload is
            called bursty.
    """

    source_burstiness: Dict[str, BurstinessResult]
    consolidated_burstiness: BurstinessResult
    peak_to_median_reduction: float
    p99_reduction: float
    remains_bursty: bool
    bursty_threshold: float


class ShiftedHourlyTaskSecondsConsumer(ChunkConsumer):
    """Start-aligned hourly task-second fold for one consolidation source.

    Each source's submissions are shifted so its first submission lands at
    hour zero; the fold accumulates into a fixed ``n_hours`` bucket array
    (events past the shared horizon clamp into the final hour).  The
    per-source arrays are summed by the consolidation study — the streaming
    equivalent of ``hourly_task_seconds(consolidate(traces))``, with no
    merged job list ever materialized.
    """

    columns = ("submit_time_s", "total_task_seconds")

    def __init__(self, start_s: float, n_hours: int, name: str = "shifted_hourly"):
        self.name = name
        self.start_s = float(start_s)
        self.n_hours = int(n_hours)

    def make_state(self) -> np.ndarray:
        return np.zeros(self.n_hours, dtype=float)

    def fold(self, state, chunk: ScanChunk):
        shifted = chunk.column("submit_time_s") - self.start_s
        buckets = np.minimum((shifted // 3600.0).astype(int), self.n_hours - 1)
        np.add.at(state, buckets, np.nan_to_num(chunk.column("total_task_seconds"), nan=0.0))
        return state

    def merge(self, a, b):
        return a + b

    def finalize(self, state) -> np.ndarray:
        return state


def _consolidated_hourly_task_seconds(sources: Sequence[TraceSource]) -> np.ndarray:
    """Hourly task-seconds of the start-aligned union of several sources.

    Bucket boundaries match the materialized path exactly; only the
    floating-point summation order differs (per-source partial arrays are
    summed instead of folding every source into one shared array).
    """
    starts = []
    horizon = 0.0
    for source in sources:
        start_s, end_s = source.time_bounds()
        starts.append(start_s)
        horizon = max(horizon, end_s - start_s)
    n_hours = max(1, int(np.ceil(horizon / 3600.0)))
    series = np.zeros(n_hours, dtype=float)
    for source, start_s in zip(sources, starts):
        series += fold_consumer(
            source, ShiftedHourlyTaskSecondsConsumer(start_s=start_s, n_hours=n_hours))
    return series


def consolidation_study(traces: Sequence, bursty_threshold: float = 3.0,
                        drop_zero_hours: bool = True) -> ConsolidationStudy:
    """Quantify how much consolidating the given workloads reduces burstiness.

    Args:
        traces: source traces (at least two non-empty ones), in any
            :class:`TraceSource`-wrappable representation.  Materialized
            inputs take the exact job-merge path; when any input is an
            out-of-core store, the consolidated hourly series is folded
            streamingly instead of materializing the merged job list.
        bursty_threshold: peak-to-median ratio above which the consolidated
            workload is still called bursty.
        drop_zero_hours: passed through to the burstiness metric (idle hours
            make the median zero for short or sparse traces).

    Raises:
        AnalysisError: with fewer than two non-empty traces.
    """
    sources = [TraceSource.wrap(trace) for trace in traces]
    non_empty = [source for source in sources if not source.is_empty()]
    if len(non_empty) < 2:
        raise AnalysisError("a consolidation study needs at least two non-empty traces")

    per_source = {
        source.name: analyze_burstiness(source, drop_zero_hours=drop_zero_hours)
        for source in non_empty
    }
    if any(source.is_streaming for source in non_empty):
        combined = burstiness_curve(_consolidated_hourly_task_seconds(non_empty),
                                    drop_zero_hours=drop_zero_hours)
    else:
        merged = consolidate([source.materialize() for source in non_empty])
        combined = analyze_burstiness(merged, drop_zero_hours=drop_zero_hours)

    mean_source_peak = float(np.mean([result.peak_to_median for result in per_source.values()]))
    mean_source_p99 = float(np.mean([result.p99_to_median for result in per_source.values()]))
    peak_reduction = mean_source_peak / combined.peak_to_median if combined.peak_to_median > 0 else float("inf")
    p99_reduction = mean_source_p99 / combined.p99_to_median if combined.p99_to_median > 0 else float("inf")
    return ConsolidationStudy(
        source_burstiness=per_source,
        consolidated_burstiness=combined,
        peak_to_median_reduction=peak_reduction,
        p99_reduction=p99_reduction,
        remains_bursty=combined.peak_to_median > bursty_threshold,
        bursty_threshold=bursty_threshold,
    )
