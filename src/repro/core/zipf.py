"""Zipf / power-law rank-frequency analysis (Figure 2 of the paper).

The paper plots file-access frequency against frequency rank on log-log axes
and observes approximately straight lines — Zipf-like behaviour — with a slope
of about 5/6 for every workload and for both inputs and outputs.  This module
fits that slope from observed access counts and exposes the points needed to
regenerate the figure.

:func:`column_rank_frequencies` is the out-of-core entry point: it streams one
string column (``input_path`` / ``output_path``) chunk by chunk from any
:class:`~repro.engine.source.TraceSource`-wrappable representation, so memory
is bounded by the number of *distinct* paths rather than the number of jobs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.pipeline import ChunkConsumer, ScanChunk
from ..errors import AnalysisError

__all__ = [
    "RankFrequency",
    "RankFrequencyConsumer",
    "rank_frequencies",
    "rank_frequencies_from_counts",
    "column_rank_frequencies",
    "fit_zipf_slope",
    "zipf_goodness_of_fit",
]


@dataclass
class RankFrequency:
    """Rank-frequency data plus the fitted Zipf slope.

    Attributes:
        ranks: 1-based ranks in decreasing order of frequency.
        frequencies: access count at each rank.
        slope: magnitude of the fitted log-log slope (``None`` if unfittable).
        intercept: fitted log10 intercept (``None`` if unfittable).
        r_squared: coefficient of determination of the log-log fit.
    """

    ranks: np.ndarray
    frequencies: np.ndarray
    slope: Optional[float]
    intercept: Optional[float]
    r_squared: Optional[float]

    @property
    def n_items(self) -> int:
        return int(self.ranks.size)

    @property
    def total_accesses(self) -> int:
        return int(self.frequencies.sum())

    def top_share(self, fraction_of_items: float) -> float:
        """Fraction of all accesses captured by the top ``fraction_of_items``.

        ``top_share(0.2)`` answers the classic 80-20 question (§4.2): how much
        of the access volume goes to the most popular 20% of files.
        """
        if not 0.0 < fraction_of_items <= 1.0:
            raise AnalysisError("fraction_of_items must be in (0, 1]")
        count = max(1, int(round(self.n_items * fraction_of_items)))
        return float(self.frequencies[:count].sum() / max(1, self.total_accesses))

    def as_points(self) -> List[Tuple[int, int]]:
        """(rank, frequency) pairs in rank order (the Figure-2 series)."""
        return list(zip(self.ranks.astype(int).tolist(), self.frequencies.astype(int).tolist()))


def rank_frequencies(paths: Iterable[Optional[str]], min_items: int = 2) -> RankFrequency:
    """Count accesses per path and fit the Zipf slope.

    Args:
        paths: one entry per access; ``None`` entries (unrecorded paths) are
            skipped.
        min_items: minimum number of distinct paths needed for a slope fit;
            below it the slope is reported as ``None``.

    Raises:
        AnalysisError: when no recorded paths are present at all.
    """
    counts = Counter(path for path in paths if path is not None)
    return rank_frequencies_from_counts(counts, min_items=min_items)


def rank_frequencies_from_counts(counts: Dict[str, int], min_items: int = 2) -> RankFrequency:
    """Build a :class:`RankFrequency` from item -> access-count totals.

    This is the finalize step shared by every counting path: the iterable
    front-end above, the chunked :class:`RankFrequencyConsumer`, and the
    shared-scan path-statistics fold (whose per-path counts double as the
    Figure-2 frequencies).

    Raises:
        AnalysisError: when ``counts`` is empty.
    """
    if not counts:
        raise AnalysisError("no recorded file paths to analyze")
    frequencies = np.array(sorted(counts.values(), reverse=True), dtype=float)
    ranks = np.arange(1, frequencies.size + 1, dtype=float)
    if frequencies.size >= min_items and frequencies.max() > frequencies.min():
        fit_ranks, fit_frequencies = _log_spaced_points(ranks, frequencies)
        slope, intercept, r_squared = fit_zipf_slope(fit_ranks, fit_frequencies)
    else:
        slope, intercept, r_squared = None, None, None
    return RankFrequency(
        ranks=ranks, frequencies=frequencies, slope=slope, intercept=intercept,
        r_squared=r_squared,
    )


class RankFrequencyConsumer(ChunkConsumer):
    """Shared-scan fold counting accesses per distinct value of one column.

    Each chunk contributes its ``np.unique`` counts (empty strings — the
    trace encoding of "not recorded" — are skipped), so the fold cost is one
    vectorized pass per chunk and memory stays bounded by the distinct-value
    dictionary.  Counts are integers: serial, merged, and per-row results are
    all exactly equal.
    """

    def __init__(self, column: str, name: Optional[str] = None, min_items: int = 2):
        self.name = name or ("ranks_%s" % column)
        self.column = column
        self.columns = (column,)
        self.min_items = min_items

    def make_state(self) -> Dict[str, int]:
        return {}

    def fold(self, state, chunk: ScanChunk):
        # value_counts is code-native on a v3 store: the counting happens as
        # a bincount over dictionary codes and only the chunk's *distinct*
        # values are ever decoded to strings.
        values, counts = chunk.value_counts(self.column)
        for value, count in zip(values.tolist(), counts.tolist()):
            if value:
                state[value] = state.get(value, 0) + count
        return state

    def merge(self, a, b):
        for value, count in b.items():
            a[value] = a.get(value, 0) + count
        return a

    def finalize(self, state) -> RankFrequency:
        return rank_frequencies_from_counts(state, min_items=self.min_items)


def column_rank_frequencies(source, column: str, min_items: int = 2) -> RankFrequency:
    """Access frequency vs rank for one string column of a trace source.

    Folds the column chunk by chunk (empty strings — the trace encoding of
    "not recorded" — are skipped), so arbitrarily large stores are counted
    with memory bounded by the distinct-path dictionary.

    Raises:
        AnalysisError: when the source does not record the column at all.
    """
    from ..engine.pipeline import fold_consumer
    from ..engine.source import TraceSource

    src = TraceSource.wrap(source)
    if not src.has_column(column):
        raise AnalysisError("trace %r records no %s values" % (src.name, column))
    return fold_consumer(src, RankFrequencyConsumer(column, min_items=min_items))


def _log_spaced_points(ranks: np.ndarray, frequencies: np.ndarray,
                       points: int = 25) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the rank-frequency curve at log-spaced ranks before fitting.

    A plain least-squares fit over every rank is dominated by the long tail of
    files accessed exactly once (most of the points), whereas the paper's
    "slope ≈ 5/6" describes the straight line the curve traces on the log-log
    axes of Figure 2.  Fitting on log-spaced rank samples weights each decade
    of rank equally, which matches that visual/graphical slope.
    """
    positions = np.unique(np.round(np.logspace(0.0, np.log10(ranks.size), points)).astype(int))
    positions = positions[(positions >= 1) & (positions <= ranks.size)]
    return ranks[positions - 1], frequencies[positions - 1]


def fit_zipf_slope(ranks: Sequence[float], frequencies: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares fit of ``log10(frequency) = intercept - slope * log10(rank)``.

    Returns ``(slope, intercept, r_squared)`` where ``slope`` is reported as a
    positive magnitude (the paper quotes "slope ≈ 5/6" in this sense).

    Raises:
        AnalysisError: with fewer than two points or non-positive values.
    """
    ranks = np.asarray(list(ranks), dtype=float)
    frequencies = np.asarray(list(frequencies), dtype=float)
    if ranks.size != frequencies.size:
        raise AnalysisError("ranks and frequencies must have the same length")
    if ranks.size < 2:
        raise AnalysisError("Zipf fit needs at least two points")
    if np.any(ranks <= 0) or np.any(frequencies <= 0):
        raise AnalysisError("Zipf fit needs positive ranks and frequencies")
    log_rank = np.log10(ranks)
    log_freq = np.log10(frequencies)
    slope, intercept = np.polyfit(log_rank, log_freq, 1)
    predicted = intercept + slope * log_rank
    residual = log_freq - predicted
    total = log_freq - log_freq.mean()
    denominator = float(np.dot(total, total))
    r_squared = 1.0 - float(np.dot(residual, residual)) / denominator if denominator > 0 else 1.0
    return float(-slope), float(intercept), float(r_squared)


def zipf_goodness_of_fit(rank_frequency: RankFrequency) -> Dict[str, float]:
    """Simple goodness-of-fit summary for a fitted rank-frequency curve.

    Returns a dict with the fitted ``slope``, ``r_squared`` and the relative
    error between the observed and Zipf-predicted share of accesses going to
    the top 10% of files.  Raises when no slope could be fitted.
    """
    if rank_frequency.slope is None:
        raise AnalysisError("rank-frequency data has no fitted slope")
    observed_share = rank_frequency.top_share(0.1)
    # Predicted share under a pure Zipf law with the fitted slope.
    weights = rank_frequency.ranks ** (-rank_frequency.slope)
    top = max(1, int(round(rank_frequency.n_items * 0.1)))
    predicted_share = float(weights[:top].sum() / weights.sum())
    return {
        "slope": float(rank_frequency.slope),
        "r_squared": float(rank_frequency.r_squared if rank_frequency.r_squared is not None else 0.0),
        "top10_share_observed": observed_share,
        "top10_share_predicted": predicted_share,
        "top10_share_abs_error": abs(observed_share - predicted_share),
    }
