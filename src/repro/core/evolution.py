"""Workload evolution analysis: comparing two snapshots of one deployment.

Section 4.1 of the paper compares the Facebook workload across 2009 and 2010:
per-job input and shuffle size distributions shift right (grow) by several
orders of magnitude while the output size distribution shifts left (shrinks);
§5.2 adds that the peak-to-median load ratio dropped from 31:1 to 9:1 as more
organizations shared the cluster; §6.2 finds that the Table-2 job types
changed substantially over the same year, so "any policy parameters need to be
periodically revisited."

:func:`compare_evolution` packages those comparisons for any pair of traces
from the same deployment, producing the quantities the paper quotes: median
shifts per dimension in orders of magnitude, the burstiness change, and the
change in small-job and map-only fractions.  It accepts any
:class:`~repro.engine.source.TraceSource`-wrappable representation —
store-backed snapshots are profiled in one chunked scan each, never
materialized — and :func:`evolution_from_profiles` builds the same report
from two already-computed :class:`~repro.core.profile.WorkloadProfile`\\ s
(the federation layer's epoch-over-epoch drift rows come from there, with no
extra scanning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..engine.source import TraceSource
from ..errors import AnalysisError
from ..units import GB
from .datasizes import SIZE_DIMENSIONS
from .profile import WorkloadProfile, profile_source

__all__ = ["DimensionShift", "EvolutionReport", "compare_evolution",
           "evolution_from_profiles"]


@dataclass
class DimensionShift:
    """Shift of one per-job size dimension between two snapshots.

    Attributes:
        dimension: ``"input_bytes"``, ``"shuffle_bytes"`` or ``"output_bytes"``.
        median_before: median per-job size in the earlier snapshot (bytes).
        median_after: median per-job size in the later snapshot (bytes).
        orders_of_magnitude: ``log10(after) - log10(before)`` with zero medians
            clamped to one byte — positive means the distribution shifted right
            (grew), negative means it shifted left (shrank).
    """

    dimension: str
    median_before: float
    median_after: float
    orders_of_magnitude: float

    @property
    def grew(self) -> bool:
        return self.orders_of_magnitude > 0

    @property
    def shrank(self) -> bool:
        return self.orders_of_magnitude < 0


@dataclass
class EvolutionReport:
    """Comparison of two snapshots of one deployment's workload.

    Attributes:
        before_name / after_name: names of the two traces.
        shifts: per-dimension :class:`DimensionShift` keyed by dimension.
        peak_to_median_before / peak_to_median_after: Figure-8 burstiness
            summaries of each snapshot.
        burstiness_reduction: before divided by after (>1 means the later
            snapshot is less bursty — the paper's 31:1 → 9:1 observation).
        small_job_fraction_before / small_job_fraction_after: fraction of jobs
            at or below the small-job byte threshold.
        map_only_fraction_before / map_only_fraction_after: fraction of
            map-only jobs.
        job_count_growth: later job count divided by earlier job count.
    """

    before_name: str
    after_name: str
    shifts: Dict[str, DimensionShift]
    peak_to_median_before: float
    peak_to_median_after: float
    burstiness_reduction: float
    small_job_fraction_before: float
    small_job_fraction_after: float
    map_only_fraction_before: float
    map_only_fraction_after: float
    job_count_growth: float

    def shift(self, dimension: str) -> DimensionShift:
        """The shift record of one size dimension.

        Raises:
            AnalysisError: for an unknown dimension.
        """
        if dimension not in self.shifts:
            raise AnalysisError("unknown size dimension %r" % (dimension,))
        return self.shifts[dimension]

    def summary_lines(self) -> list:
        """Human-readable summary, one line per finding."""
        lines = ["Evolution %s -> %s:" % (self.before_name, self.after_name)]
        for dimension in SIZE_DIMENSIONS:
            shift = self.shifts[dimension]
            direction = "grew" if shift.grew else ("shrank" if shift.shrank else "held steady")
            lines.append("  %s median %s by %.1f orders of magnitude"
                         % (dimension, direction, abs(shift.orders_of_magnitude)))
        lines.append("  peak-to-median %.0f:1 -> %.0f:1 (reduction %.1fx)"
                     % (self.peak_to_median_before, self.peak_to_median_after,
                        self.burstiness_reduction))
        lines.append("  small-job fraction %.1f%% -> %.1f%%"
                     % (100 * self.small_job_fraction_before, 100 * self.small_job_fraction_after))
        lines.append("  map-only fraction %.1f%% -> %.1f%%"
                     % (100 * self.map_only_fraction_before, 100 * self.map_only_fraction_after))
        return lines


def evolution_from_profiles(before: WorkloadProfile,
                            after: WorkloadProfile) -> EvolutionReport:
    """Build the §4.1 evolution report from two already-computed profiles.

    Pure read-out — no further scanning — so callers that already profiled
    each snapshot (the federation layer's per-cluster epoch chains) pay for
    each scan exactly once however many consecutive pairs they compare.
    """
    shifts: Dict[str, DimensionShift] = {}
    for dimension in SIZE_DIMENSIONS:
        median_before = before.sizes.median(dimension)
        median_after = after.sizes.median(dimension)
        orders = float(np.log10(max(1.0, median_after)) - np.log10(max(1.0, median_before)))
        shifts[dimension] = DimensionShift(
            dimension=dimension,
            median_before=median_before,
            median_after=median_after,
            orders_of_magnitude=orders,
        )

    reduction = (before.burstiness.peak_to_median / after.burstiness.peak_to_median
                 if after.burstiness.peak_to_median > 0 else float("inf"))

    return EvolutionReport(
        before_name=before.workload,
        after_name=after.workload,
        shifts=shifts,
        peak_to_median_before=before.burstiness.peak_to_median,
        peak_to_median_after=after.burstiness.peak_to_median,
        burstiness_reduction=reduction,
        small_job_fraction_before=before.small_job_fraction,
        small_job_fraction_after=after.small_job_fraction,
        map_only_fraction_before=before.sizes.map_only_fraction,
        map_only_fraction_after=after.sizes.map_only_fraction,
        job_count_growth=after.n_jobs / before.n_jobs,
    )


def compare_evolution(before, after,
                      small_job_threshold_bytes: float = 10 * GB) -> EvolutionReport:
    """Compare an earlier and a later trace of the same deployment.

    Args:
        before: the earlier snapshot (e.g. FB-2009) — any
            :class:`TraceSource`-wrappable representation, chunked stores
            included (scanned chunk by chunk, never materialized).
        after: the later snapshot (e.g. FB-2010).
        small_job_threshold_bytes: byte threshold used for the small-job
            fraction comparison.

    Raises:
        AnalysisError: when either trace is empty.
    """
    source_before = TraceSource.wrap(before)
    source_after = TraceSource.wrap(after)
    if source_before.is_empty() or source_after.is_empty():
        raise AnalysisError("evolution comparison needs two non-empty traces")
    return evolution_from_profiles(
        profile_source(source_before, small_job_threshold_bytes=small_job_threshold_bytes),
        profile_source(source_after, small_job_threshold_bytes=small_job_threshold_bytes),
    )
