"""Cross-workload comparison and workload-suite selection (§7 of the paper).

The paper's closing argument is that MapReduce workloads are so diverse that
no single workload is "representative"; a TPC-style benchmark would instead
need "a small suite of workload classes that cover a large range of behavior".
This module provides the machinery for that argument:

* :func:`workload_features` condenses one trace into a fixed-length numeric
  feature vector covering the three analysis axes (data, temporal, compute);
* :func:`cdf_distance` and :func:`workload_distance` quantify how different
  two workloads are (Kolmogorov-Smirnov distance on per-job size
  distributions, normalized L2 on the feature vectors);
* :func:`select_workload_suite` picks the smallest set of workloads that
  covers the observed behavior range, using greedy k-center selection — the
  "workload suites" recommendation of §7 made executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.source import TraceSource
from ..errors import AnalysisError
from ..units import GB
from .profile import WorkloadProfile, profile_source

__all__ = [
    "WorkloadFeatures",
    "features_from_profile",
    "workload_features",
    "cdf_distance",
    "workload_distance",
    "WorkloadSuite",
    "select_workload_suite",
]

#: Order of the scalar features in :meth:`WorkloadFeatures.vector`.
FEATURE_NAMES = (
    "log_median_input_bytes",
    "log_median_shuffle_bytes",
    "log_median_output_bytes",
    "small_job_fraction",
    "map_only_fraction",
    "log_peak_to_median",
    "diurnal_strength",
    "bytes_compute_correlation",
    "framework_share",
)


@dataclass
class WorkloadFeatures:
    """Fixed-length numeric description of one workload.

    Attributes:
        workload: workload name.
        values: mapping of feature name -> value; see ``FEATURE_NAMES`` for
            the canonical ordering.
    """

    workload: str
    values: Dict[str, float]

    def vector(self) -> np.ndarray:
        """The features as a numpy vector in ``FEATURE_NAMES`` order."""
        return np.array([self.values[name] for name in FEATURE_NAMES], dtype=float)


def features_from_profile(profile: WorkloadProfile) -> WorkloadFeatures:
    """Read the comparison feature vector out of a computed profile.

    Pure read-out — no further scanning — so a federation layer that already
    profiled each member store gets every member's features for free.
    """
    sizes = profile.sizes
    values = {
        "log_median_input_bytes": float(np.log10(max(1.0, sizes.median("input_bytes")))),
        "log_median_shuffle_bytes": float(np.log10(max(1.0, sizes.median("shuffle_bytes")))),
        "log_median_output_bytes": float(np.log10(max(1.0, sizes.median("output_bytes")))),
        "small_job_fraction": profile.small_job_fraction,
        "map_only_fraction": sizes.map_only_fraction,
        "log_peak_to_median": float(np.log10(max(1.0, profile.burstiness.peak_to_median))),
        "diurnal_strength": profile.diurnal.diurnal_strength,
        "bytes_compute_correlation": (profile.correlations.bytes_task_seconds
                                      if profile.correlations else 0.0),
        "framework_share": profile.framework_share,
    }
    return WorkloadFeatures(workload=profile.workload, values=values)


def workload_features(trace, small_job_threshold_bytes: float = 10 * GB) -> WorkloadFeatures:
    """Condense a trace into the scalar features used for workload comparison.

    The features deliberately mirror the quantities the paper's summary
    (§8) reports per workload: median job sizes, the dominance of small jobs,
    the map-only share, burstiness, diurnality, the bytes-compute correlation,
    and the share of query-like frameworks (0 when the trace records no names).

    Accepts any :class:`TraceSource`-wrappable representation; store-backed
    sources are folded in **one** shared chunk scan (via
    :func:`~repro.core.profile.profile_source` — the service daemon's
    workload-drift subscriptions recompute this on every append).

    Raises:
        AnalysisError: for an empty trace.
    """
    source = TraceSource.wrap(trace)
    if source.is_empty():
        raise AnalysisError("cannot compute features of an empty trace")
    return features_from_profile(
        profile_source(source, small_job_threshold_bytes=small_job_threshold_bytes))


def cdf_distance(values_a: Sequence[float], values_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov distance between two samples.

    Used to compare per-job size distributions of two workloads (Figure 1
    shows they can differ by many orders of magnitude).  Returns a value in
    [0, 1]; 0 means identical empirical distributions.

    Raises:
        AnalysisError: when either sample is empty.
    """
    a = np.sort(np.asarray(list(values_a), dtype=float))
    b = np.sort(np.asarray(list(values_b), dtype=float))
    if a.size == 0 or b.size == 0:
        raise AnalysisError("KS distance needs two non-empty samples")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def _normalize_matrix(vectors: np.ndarray) -> np.ndarray:
    """Scale each feature column to [0, 1] range (constant columns become 0)."""
    mins = vectors.min(axis=0)
    spans = vectors.max(axis=0) - mins
    spans[spans == 0] = 1.0
    return (vectors - mins) / spans


def workload_distance(features_a: WorkloadFeatures, features_b: WorkloadFeatures,
                      all_features: Optional[Sequence[WorkloadFeatures]] = None) -> float:
    """Normalized Euclidean distance between two workloads' feature vectors.

    When ``all_features`` is given, each feature dimension is rescaled to the
    [0, 1] range observed across that whole population before measuring, so no
    single dimension dominates; otherwise the raw vectors are compared.
    """
    if all_features:
        population = list(all_features)
        names = [feature.workload for feature in population]
        matrix = np.vstack([feature.vector() for feature in population])
        scaled = _normalize_matrix(matrix)
        lookup = {name: scaled[index] for index, name in enumerate(names)}
        vec_a = lookup.get(features_a.workload, features_a.vector())
        vec_b = lookup.get(features_b.workload, features_b.vector())
    else:
        vec_a, vec_b = features_a.vector(), features_b.vector()
    return float(np.linalg.norm(np.asarray(vec_a) - np.asarray(vec_b)))


@dataclass
class WorkloadSuite:
    """A representative subset of workloads (§7 "Workload suites").

    Attributes:
        selected: names of the chosen workloads, in selection order.
        coverage_radius: largest distance from any workload to its nearest
            selected representative (smaller is better coverage).
        assignment: mapping of every workload to its nearest representative.
        distances: full pairwise distance matrix keyed by (name, name).
    """

    selected: List[str]
    coverage_radius: float
    assignment: Dict[str, str]
    distances: Dict[Tuple[str, str], float] = field(default_factory=dict)


def select_workload_suite(features: Sequence[WorkloadFeatures], suite_size: int,
                          first: Optional[str] = None) -> WorkloadSuite:
    """Pick ``suite_size`` representative workloads by greedy k-center selection.

    The first representative is the workload closest to the population centroid
    (or the one named by ``first``); each subsequent pick is the workload
    farthest from all representatives chosen so far.  This is the classic
    2-approximation to the k-center cover and directly operationalizes the
    paper's suggestion to "identify a small suite of workload classes that
    cover a large range of behavior".

    The selection is deterministic under permutation of the input: the
    centroid is summed in name-sorted row order and every greedy pick breaks
    exact distance ties by workload name, so equal populations presented in
    any order select the same suite (pinned by the federation property tests).

    Raises:
        AnalysisError: when the suite size is invalid or ``first`` is unknown.
    """
    population = list(features)
    if not population:
        raise AnalysisError("cannot select a suite from zero workloads")
    if not 1 <= suite_size <= len(population):
        raise AnalysisError("suite_size must be between 1 and %d" % len(population))

    names = [feature.workload for feature in population]
    matrix = _normalize_matrix(np.vstack([feature.vector() for feature in population]))
    n = len(names)
    distance = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = float(np.linalg.norm(matrix[i] - matrix[j]))
            distance[i, j] = distance[j, i] = d

    def pick(scores: np.ndarray, target: float) -> int:
        """Index whose score equals ``target``; exact ties break by name."""
        candidates = [index for index in range(n) if scores[index] == target]
        return min(candidates, key=lambda index: (names[index], index))

    if first is not None:
        if first not in names:
            raise AnalysisError("unknown workload %r for the first representative" % (first,))
        start = names.index(first)
    else:
        # Sum in name-sorted row order so the centroid (and therefore the
        # whole greedy selection) is invariant under input permutation.
        name_order = sorted(range(n), key=lambda index: (names[index], index))
        centroid = matrix[name_order].mean(axis=0)
        gaps = np.linalg.norm(matrix - centroid, axis=1)
        start = pick(gaps, float(gaps.min()))

    selected = [start]
    nearest = distance[start].copy()
    while len(selected) < suite_size:
        candidate = pick(nearest, float(nearest.max()))
        if nearest[candidate] == 0:
            break
        selected.append(candidate)
        nearest = np.minimum(nearest, distance[candidate])

    assignment = {}
    for index, name in enumerate(names):
        representative = min(selected, key=lambda s: distance[index, s])
        assignment[name] = names[representative]
    distances = {(names[i], names[j]): float(distance[i, j]) for i in range(n) for j in range(n)}
    return WorkloadSuite(
        selected=[names[index] for index in selected],
        coverage_radius=float(nearest.max()),
        assignment=assignment,
        distances=distances,
    )
