"""Workload report dataclasses and text rendering.

:class:`WorkloadReport` is the structured output of
:class:`~repro.core.characterization.WorkloadCharacterizer`: one object per
workload holding every analysis the paper's methodology defines (data access,
temporal, compute).  ``render()`` turns it into a readable plain-text summary
for the CLI, the examples, and EXPERIMENTS.md generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..traces.trace import TraceSummary
from ..units import format_bytes, format_duration
from .access import AccessPatternResult
from .burstiness import BurstinessResult
from .clustering import ClusteringResult
from .datasizes import DataSizeDistributions
from .naming import NamingAnalysis
from .temporal import CorrelationResult, DiurnalAnalysis, HourlyDimensions

__all__ = ["WorkloadReport", "render_table"]


def render_table(headers: List[str], rows: List[List[str]], title: Optional[str] = None) -> str:
    """Render an ASCII table with column widths fitted to the content."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class WorkloadReport:
    """Every paper analysis for one workload, plus a text renderer.

    Attributes mirror the paper's sections: ``summary`` (Table 1 row),
    ``data_sizes`` (Figure 1), ``access`` (Figures 2-6), ``hourly`` and
    ``correlations`` and ``diurnal`` (Figures 7 and 9), ``burstiness``
    (Figure 8), ``naming`` (Figure 10) and ``clustering`` (Table 2).
    Components the trace cannot support (missing names or paths) are ``None``.
    """

    workload: str
    summary: TraceSummary
    data_sizes: Optional[DataSizeDistributions] = None
    access: Optional[AccessPatternResult] = None
    hourly: Optional[HourlyDimensions] = None
    correlations: Optional[CorrelationResult] = None
    diurnal: Optional[DiurnalAnalysis] = None
    burstiness: Optional[BurstinessResult] = None
    naming: Optional[NamingAnalysis] = None
    clustering: Optional[ClusteringResult] = None
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render the report as readable plain text."""
        sections = [self._render_summary()]
        if self.data_sizes is not None:
            sections.append(self._render_data_sizes())
        if self.access is not None:
            sections.append(self._render_access())
        if self.burstiness is not None or self.correlations is not None:
            sections.append(self._render_temporal())
        if self.naming is not None:
            sections.append(self._render_naming())
        if self.clustering is not None:
            sections.append(self._render_clustering())
        if self.notes:
            sections.append("Notes:\n" + "\n".join("  - %s" % note for note in self.notes))
        return "\n\n".join(sections)

    # -- individual sections ------------------------------------------------
    def _render_summary(self) -> str:
        summary = self.summary
        return (
            "Workload %s: %d jobs over %s, %s moved, %s machines"
            % (
                self.workload,
                summary.n_jobs,
                format_duration(summary.length_s),
                format_bytes(summary.bytes_moved),
                summary.machines if summary.machines is not None else "?",
            )
        )

    def _render_data_sizes(self) -> str:
        assert self.data_sizes is not None
        rows = []
        for dimension in ("input_bytes", "shuffle_bytes", "output_bytes"):
            rows.append([
                dimension.replace("_bytes", ""),
                format_bytes(self.data_sizes.medians[dimension]),
                "%.0f%%" % (100 * self.data_sizes.fraction_below_gb[dimension]),
            ])
        table = render_table(["dimension", "median/job", "jobs < 1 GB"], rows,
                             title="Per-job data sizes (Figure 1)")
        return table + "\nMap-only jobs: %.0f%%" % (100 * self.data_sizes.map_only_fraction)

    def _render_access(self) -> str:
        assert self.access is not None
        lines = ["Data access patterns (Figures 2-6)"]
        if self.access.input_ranks is not None and self.access.input_ranks.slope is not None:
            lines.append("  input access Zipf slope: %.2f (paper: ~0.83)"
                         % self.access.input_ranks.slope)
        if self.access.output_ranks is not None and self.access.output_ranks.slope is not None:
            lines.append("  output access Zipf slope: %.2f" % self.access.output_ranks.slope)
        if self.access.eighty_x_input is not None:
            lines.append("  80-x rule: 80%% of accesses hit %.1f%% of stored bytes"
                         % self.access.eighty_x_input)
        if self.access.fractions is not None:
            lines.append("  jobs re-accessing existing data: %.0f%%"
                         % (100 * self.access.fractions.any_reaccess))
        if self.access.intervals is not None:
            lines.append("  re-accesses within 6 hours: %.0f%%"
                         % (100 * self.access.intervals.fraction_within_6h))
        if len(lines) == 1:
            lines.append("  (trace records no file paths)")
        return "\n".join(lines)

    def _render_temporal(self) -> str:
        lines = ["Temporal behaviour (Figures 7-9)"]
        if self.burstiness is not None:
            lines.append("  peak-to-median hourly task-time: %.1f:1"
                         % self.burstiness.peak_to_median)
        if self.diurnal is not None:
            lines.append("  diurnal strength: %.2f (%s)"
                         % (self.diurnal.diurnal_strength,
                            "daily pattern" if self.diurnal.has_diurnal_pattern else "no clear daily pattern"))
        if self.correlations is not None:
            lines.append("  correlations: jobs-bytes %.2f, jobs-compute %.2f, bytes-compute %.2f"
                         % (self.correlations.jobs_bytes, self.correlations.jobs_task_seconds,
                            self.correlations.bytes_task_seconds))
        return "\n".join(lines)

    def _render_naming(self) -> str:
        assert self.naming is not None
        rows = [[word, "%.0f%%" % (100 * share)] for word, share in self.naming.by_jobs.top(6)]
        table = render_table(["first word", "share of jobs"], rows,
                             title="Job names (Figure 10)")
        frameworks = ", ".join(self.naming.dominant_frameworks("jobs", 2))
        return table + "\nDominant frameworks: %s" % frameworks

    def _render_clustering(self) -> str:
        assert self.clustering is not None
        headers = ["# Jobs", "Input", "Shuffle", "Output", "Duration", "Map time", "Reduce time", "Label"]
        rows = [cluster.as_row() for cluster in self.clustering.clusters]
        table = render_table(headers, rows, title="Job types (Table 2), k=%d" % self.clustering.k)
        return table + "\nSmall-job fraction: %.1f%%" % (100 * self.clustering.small_job_fraction)
