"""`TraceSource`: one uniform handle over every trace representation.

The analysis layer (``repro.core`` and ``repro.bench``) historically consumed
fully materialized job-list :class:`~repro.traces.trace.Trace` objects, which
at FB-2010 scale (1.17M jobs) costs gigabytes of resident Python objects.
:class:`TraceSource` wraps any of the three representations —

* a job-list :class:`~repro.traces.trace.Trace` (materialized),
* an in-memory :class:`~repro.engine.columnar.ColumnarTrace` (materialized),
* an on-disk :class:`~repro.engine.store.ChunkedTraceStore` (streaming),

behind one protocol: chunked column scans (:meth:`iter_chunks`), engine
:class:`~repro.engine.operators.Query` execution (:meth:`query`), whole-column
access for the exact in-memory paths (:meth:`dimension`), and Table-1 style
summaries computed by a single scan (:meth:`summary`).  Analyses written
against this class run identically on a 100-job fixture and a 100-GB store,
with memory bounded by chunk size in the streaming case.

The :attr:`is_streaming` flag is the exactness switch documented in
``docs/architecture.md``: materialized sources allow whole-column exact
statistics (sorting-based CDFs and medians), while streaming sources answer
percentile-shaped questions through the engine's mergeable log-histogram
sketches.  Counts, sums, means, min/max and every dictionary-based statistic
(Zipf ranks, re-access fractions, naming shares) are exact for **all**
representations.

Usage::

    >>> from repro.engine import TraceSource, Query
    >>> from repro.traces import Job, Trace
    >>> trace = Trace([Job(job_id="a", submit_time_s=0.0, duration_s=50.0,
    ...                    input_bytes=5e9, shuffle_bytes=0.0, output_bytes=1e8,
    ...                    map_task_seconds=100.0, reduce_task_seconds=0.0)],
    ...               name="tiny")
    >>> source = TraceSource.wrap(trace)
    >>> source.is_streaming, len(source)
    (False, 1)
    >>> result = source.query(Query().aggregate(bytes=("sum", "input_bytes")))
    >>> result.aggregates["bytes"]
    5000000000.0
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..traces.schema import Job, NUMERIC_DIMENSIONS
from ..traces.trace import Trace, TraceSummary
from .columnar import DEFAULT_CHUNK_ROWS, ColumnBlock, ColumnarTrace
from .operators import Query, QueryResult, execute
from .store import ChunkedTraceStore

__all__ = ["TraceSource"]


def _nan_to_zero(array: np.ndarray) -> np.ndarray:
    return np.where(np.isnan(array), 0.0, array)


class TraceSource:
    """Uniform, lazily-evaluated view over a trace in any representation.

    Construct with :meth:`wrap` (idempotent — wrapping a ``TraceSource``
    returns it unchanged).  The wrapped object is available as
    :attr:`backing`; materialized backings are converted to columnar form on
    first columnar access and the conversion is cached.
    """

    def __init__(self, backing):
        if isinstance(backing, TraceSource):
            backing = backing.backing
        if not isinstance(backing, (Trace, ColumnarTrace, ChunkedTraceStore)):
            raise AnalysisError(
                "TraceSource wraps a Trace, ColumnarTrace or ChunkedTraceStore, "
                "got %r" % type(backing).__name__)
        self.backing = backing
        self._columnar: Optional[ColumnarTrace] = (
            backing if isinstance(backing, ColumnarTrace) else None)

    @classmethod
    def wrap(cls, source) -> "TraceSource":
        """Wrap any supported representation (no-op for a ``TraceSource``)."""
        if isinstance(source, cls):
            return source
        return cls(source)

    # -- identity ----------------------------------------------------------
    @property
    def name(self) -> str:
        return self.backing.name

    @property
    def machines(self) -> Optional[int]:
        return self.backing.machines

    @property
    def is_streaming(self) -> bool:
        """True when data lives out of core (a :class:`ChunkedTraceStore`)."""
        return isinstance(self.backing, ChunkedTraceStore)

    def __len__(self) -> int:
        return len(self.backing)

    @property
    def n_jobs(self) -> int:
        return len(self)

    def is_empty(self) -> bool:
        return len(self) == 0

    def __repr__(self) -> str:
        return "TraceSource(%r, n_jobs=%d, streaming=%s)" % (
            self.name, len(self), self.is_streaming)

    # -- representation access ---------------------------------------------
    def columnar(self) -> ColumnarTrace:
        """The data as an in-memory :class:`ColumnarTrace`.

        For a materialized backing this converts once and caches; for a
        streaming backing it loads the **whole** store — only call it on paths
        that have decided to pay for materialization.
        """
        if self._columnar is None:
            if isinstance(self.backing, Trace):
                self._columnar = self.backing.to_columnar()
            else:  # ChunkedTraceStore
                self._columnar = self.backing.load_columnar()
        return self._columnar

    def materialize(self) -> Trace:
        """The data as a job-list :class:`Trace` (identity for Trace backings).

        Used by the replay-simulation experiments that need real ``Job``
        objects; the characterization statistics never call this.
        """
        if isinstance(self.backing, Trace):
            return self.backing
        return self.backing.to_trace()

    # -- the scan protocol ---------------------------------------------------
    def iter_chunks(self, columns: Optional[Sequence[str]] = None,
                    chunk_rows: int = DEFAULT_CHUNK_ROWS,
                    predicates: Optional[Sequence] = None) -> Iterator[ColumnBlock]:
        """Yield the trace as :class:`ColumnBlock` batches.

        Streaming backings read one chunk (only the requested columns) at a
        time; materialized backings yield view-backed slices of the cached
        columnar form.  Requesting a column the source does not record raises
        :class:`AnalysisError` via the block/chunk readers.

        ``predicates`` (a sequence of :class:`~repro.engine.operators.Predicate`)
        filters the stream: store backings first skip whole chunks whose zone
        maps cannot match — including on the derived ``submit_hour`` column,
        whose zone resolves through the stored ``submit_time_s`` range — and
        the surviving chunks are row-filtered before being yielded.
        """
        if predicates:
            return self._iter_filtered_chunks(columns, chunk_rows, tuple(predicates))
        if self.is_streaming:
            return self.backing.iter_chunks(columns=columns)
        return self.columnar().iter_chunks(columns=columns, chunk_rows=chunk_rows)

    def _iter_filtered_chunks(self, columns, chunk_rows, predicates) -> Iterator[ColumnBlock]:
        from .operators import _apply_filters

        wanted = None
        if columns is not None:
            wanted = list(columns)
            for predicate in predicates:
                if predicate.column not in wanted:
                    wanted.append(predicate.column)
        if self.is_streaming:
            store = self.backing
            for index in range(store.n_chunks):
                if not all(predicate.admits_zone(store.chunk_zone(index, predicate.column))
                           for predicate in predicates):
                    continue  # zone map proves no row can match: never read
                yield _apply_filters(store.read_chunk(index, columns=wanted), predicates)
        else:
            for block in self.columnar().iter_chunks(columns=wanted, chunk_rows=chunk_rows):
                yield _apply_filters(block, predicates)

    def has_column(self, name: str) -> bool:
        """Whether the source records ``name`` (derived columns included)."""
        if self.is_streaming:
            return self.backing.has_column(name)
        return self.columnar().block.has_column(name)

    def iter_chunks_sorted(self, columns: Sequence[str],
                           chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Iterator[ColumnBlock]:
        """Like :meth:`iter_chunks`, verifying submit-time order as it streams.

        The order-sensitive analyses (re-access intervals, windowed replays)
        depend on rows arriving in non-decreasing ``submit_time_s`` order.
        ``Trace``/``ColumnarTrace`` sort on construction, but a store written
        from an arbitrary job iterable may not be sorted — this wrapper makes
        that case a loud :class:`AnalysisError` instead of silently wrong
        statistics.  ``submit_time_s`` is added to the requested columns when
        missing.
        """
        wanted = list(columns)
        if "submit_time_s" not in wanted:
            wanted.append("submit_time_s")
        previous_end = -np.inf
        for block in self.iter_chunks(columns=wanted, chunk_rows=chunk_rows):
            if block.n_rows == 0:
                yield block
                continue
            times = block.column("submit_time_s")
            if times[0] < previous_end or np.any(times[:-1] > times[1:]):
                raise AnalysisError(
                    "source %r is not sorted by submit time; rewrite the store "
                    "from a Trace/ColumnarTrace (or a sorted job iterable) before "
                    "running order-sensitive analyses" % (self.name,))
            previous_end = float(times[-1])
            yield block

    def query(self, query: Query, executor=None) -> QueryResult:
        """Execute an engine :class:`Query` against this source.

        ``executor`` (a :class:`~repro.engine.parallel.ParallelExecutor`) fans
        aggregate queries over worker processes for streaming backings.
        """
        if executor is not None and self.is_streaming and query.is_aggregate_only():
            return executor.run(self.backing, query)
        return execute(self.backing if self.is_streaming else self.columnar(), query)

    # -- whole-column access (exact, materializes one column) ----------------
    def dimension(self, name: str) -> np.ndarray:
        """One numeric column as a full float array (NaN = not recorded).

        For materialized backings this is a view of the cached columnar
        arrays.  For streaming backings the single column is concatenated
        from chunks — 8 bytes/row, deliberately cheap compared to
        materializing jobs — so the exact statistics that genuinely need a
        full column (k-means features, correlation series) stay available.
        """
        if not self.is_streaming:
            return self.columnar().dimension(name)
        blocks = [block.column(name)
                  for block in self.backing.iter_chunks(columns=[name])]
        return np.concatenate(blocks) if blocks else np.zeros(0)

    def feature_matrix(self) -> np.ndarray:
        """The (n_jobs, 6) k-means feature matrix, fed from column chunks."""
        if not self.is_streaming:
            return self.columnar().feature_matrix()
        batches = list(self.feature_batches())
        if not batches:
            return np.zeros((0, len(NUMERIC_DIMENSIONS)))
        return np.vstack(batches)

    def feature_batches(self, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Iterator[np.ndarray]:
        """Yield (chunk_rows, 6) feature batches — the mini-batch k-means feed."""
        for block in self.iter_chunks(columns=list(NUMERIC_DIMENSIONS),
                                      chunk_rows=chunk_rows):
            if block.n_rows == 0:
                continue
            yield np.column_stack([
                _nan_to_zero(block.column(dim)) for dim in NUMERIC_DIMENSIONS])

    def string_values(self, name: str) -> Iterator[Optional[str]]:
        """Stream one string column as Python values (``None`` = unrecorded)."""
        for block in self.iter_chunks(columns=[name]):
            for value in block.column(name).tolist():
                yield value if value else None

    def gather(self, indices: Sequence[int],
               columns: Optional[Sequence[str]] = None) -> ColumnarTrace:
        """Materialize the rows at the given **sorted** global indices.

        Used for seeded sub-sampling (the Table-2 job cap): the selected rows
        come back as a small in-memory :class:`ColumnarTrace`, identical for
        every representation of the same trace.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and np.any(indices[:-1] > indices[1:]):
            raise AnalysisError("gather expects sorted indices")
        picked: List[ColumnBlock] = []
        offset = 0
        position = 0
        for block in self.iter_chunks(columns=columns):
            if position >= indices.size:
                break
            end = offset + block.n_rows
            take_end = int(np.searchsorted(indices, end, side="left"))
            if take_end > position:
                local = indices[position:take_end] - offset
                picked.append(block.take(local))
                position = take_end
            offset = end
        if position < indices.size:
            raise AnalysisError("gather index %d out of range (%d rows)"
                                % (int(indices[position]), offset))
        gathered = ColumnarTrace.__new__(ColumnarTrace)
        gathered.block = (ColumnBlock.concat(picked) if picked else ColumnBlock({}))
        gathered.name = self.name
        gathered.machines = self.machines
        return gathered

    def iter_jobs(self) -> Iterator[Job]:
        """Yield :class:`Job` objects one chunk at a time (replay feeding)."""
        if isinstance(self.backing, Trace):
            return iter(self.backing.jobs)
        return self.backing.iter_jobs()

    # -- scan-derived summaries ----------------------------------------------
    def time_bounds(self) -> "tuple[float, float]":
        """(first submit, last finish) in seconds; ``(0, 0)`` when empty."""
        if self.is_empty():
            return 0.0, 0.0
        if isinstance(self.backing, Trace):
            jobs = self.backing.jobs
            return float(jobs[0].submit_time_s), float(max(j.finish_time_s for j in jobs))
        result = self.query(Query().aggregate(start=("min", "submit_time_s"),
                                              end=("max", "finish_time_s")))
        start = result.aggregates["start"]
        end = result.aggregates["end"]
        return float(start if start is not None else 0.0), float(end if end is not None else 0.0)

    def duration_s(self) -> float:
        start, end = self.time_bounds()
        return max(0.0, end - start)

    def summary(self) -> TraceSummary:
        """A Table-1 row (:class:`TraceSummary`), computed by one scan.

        A ``Trace`` backing delegates to :meth:`Trace.summary` so the
        materialized numbers are bit-identical to the historical path; other
        backings fold the same quantities with the engine's mergeable
        aggregates (float sums can differ from a job-list fold in the last
        ulp, as documented in ``docs/architecture.md``).
        """
        if isinstance(self.backing, Trace):
            return self.backing.summary()
        if self.is_empty():
            return TraceSummary(name=self.name, machines=self.machines,
                                length_s=0.0, start_s=0.0, end_s=0.0, n_jobs=0,
                                bytes_moved=0.0, total_task_seconds=0.0)
        result = self.query(
            Query().count("n_jobs").aggregate(
                start=("min", "submit_time_s"),
                end=("max", "finish_time_s"),
                bytes_moved=("sum", "total_bytes"),
                task_seconds=("sum", "total_task_seconds"),
            ))
        aggregates = result.aggregates
        start = float(aggregates["start"] or 0.0)
        end = float(aggregates["end"] or 0.0)
        return TraceSummary(
            name=self.name,
            machines=self.machines,
            length_s=end - start,
            start_s=start,
            end_s=end,
            n_jobs=int(aggregates["n_jobs"]),
            bytes_moved=float(aggregates["bytes_moved"]),
            total_task_seconds=float(aggregates["task_seconds"]),
        )

    def hourly_groups(self, **aggregate_specs) -> Dict[int, Dict[str, object]]:
        """Per-hour group-by over the whole trace: ``{hour: {label: value}}``.

        ``aggregate_specs`` are engine aggregate ``label=(op, column)`` pairs;
        the grouping key is the derived ``submit_hour`` column
        (``floor(submit_time_s / 3600)``).  This is the one-scan substrate for
        every Figure 7-9 hourly series.
        """
        result = self.query(Query().aggregate(**aggregate_specs).group_by("submit_hour"))
        groups: Dict[int, Dict[str, object]] = {}
        for key, values in (result.groups or {}).items():
            if key is None:
                continue  # jobs with no recorded submit time
            groups[int(key)] = values
        return groups
