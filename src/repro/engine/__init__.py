"""Columnar trace engine: out-of-core storage and parallel analytical scans.

This subsystem scales the library's read-mostly analyses past what a Python
list of :class:`~repro.traces.schema.Job` objects can hold:

* :mod:`repro.engine.columnar` — :class:`ColumnarTrace`, one contiguous NumPy
  array per job dimension, with Trace-compatible analytical accessors;
* :mod:`repro.engine.store` — :class:`ChunkedTraceStore`, a chunked ``.npz`` +
  JSON-manifest on-disk format with per-chunk zone maps, written and read
  without ever materializing the full job list;
* :mod:`repro.engine.operators` — lazy ``scan → filter → project →
  group-by/aggregate → top-k/limit`` pipelines with column pruning, zone-map
  chunk skipping, and limit short-circuiting;
* :mod:`repro.engine.aggregates` — mergeable partial aggregates (count, sum,
  min, max, mean, log-histogram percentile/CDF sketches);
* :mod:`repro.engine.parallel` — a ``multiprocessing`` executor that fans
  chunk scans out over workers and merges the partials.

Quickstart::

    from repro.engine import ChunkedTraceStore, Query, execute

    store = ChunkedTraceStore.write("fb2009.store", trace)   # or any job iterable
    query = (Query()
             .filter("input_bytes", ">", 1e9)
             .aggregate(jobs=("count", "input_bytes"),
                        bytes=("sum", "input_bytes"),
                        p99=("p99", "duration_s")))
    print(execute(store, query).aggregates)
"""

from .aggregates import (
    AGGREGATE_OPS,
    AggregateState,
    CDFState,
    CountState,
    HistogramSketch,
    MaxState,
    MeanState,
    MinState,
    PercentileState,
    SumState,
    make_aggregate,
    parse_aggregate_spec,
)
from .columnar import (
    DEFAULT_CHUNK_ROWS,
    NUMERIC_COLUMNS,
    STRING_COLUMNS,
    ColumnBlock,
    ColumnarTrace,
)
from .operators import PREDICATE_OPS, Predicate, Query, QueryResult, execute
from .parallel import ParallelExecutor
from .store import ChunkedTraceStore, write_store

__all__ = [
    "ColumnarTrace",
    "ColumnBlock",
    "NUMERIC_COLUMNS",
    "STRING_COLUMNS",
    "DEFAULT_CHUNK_ROWS",
    "ChunkedTraceStore",
    "write_store",
    "Predicate",
    "Query",
    "QueryResult",
    "execute",
    "PREDICATE_OPS",
    "ParallelExecutor",
    "AggregateState",
    "CountState",
    "SumState",
    "MinState",
    "MaxState",
    "MeanState",
    "PercentileState",
    "CDFState",
    "HistogramSketch",
    "AGGREGATE_OPS",
    "make_aggregate",
    "parse_aggregate_spec",
]
