"""Columnar trace engine: out-of-core storage and parallel analytical scans.

This subsystem scales the library's read-mostly analyses past what a Python
list of :class:`~repro.traces.schema.Job` objects can hold:

* :mod:`repro.engine.columnar` — :class:`ColumnarTrace`, one contiguous NumPy
  array per job dimension, with Trace-compatible analytical accessors;
* :mod:`repro.engine.store` — :class:`ChunkedTraceStore`, a chunked columnar
  on-disk format (v2: raw per-column ``.npy`` read via mmap; v3: per-column
  compressed blocks with dictionary-encoded strings, read code-natively; v1:
  compressed ``.npz``) with a JSON manifest and per-chunk zone maps, written
  and read without ever materializing the full job list;
* :mod:`repro.engine.codecs` — the v3 block codec registry (stdlib
  ``zlib``/``lzma``, optional ``zstd``/``lz4``), bit-exact delta coding, and
  the append-only :class:`StoreDictionary` string tables;
* :mod:`repro.engine.operators` — lazy ``scan → filter → project →
  group-by/aggregate → top-k/limit`` pipelines with column pruning, zone-map
  chunk skipping, and limit short-circuiting;
* :mod:`repro.engine.indexes` — secondary index sidecars (sorted-permutation
  indexes for numeric columns, inverted indexes over v3 dictionary codes,
  per-chunk density stats), built chunk-at-a-time and extended on append;
* :mod:`repro.engine.planner` — the cost-aware access-path planner: per
  predicate, index-probe vs zone-skip vs full scan, with an inspectable
  :class:`Plan` on every store query result;
* :mod:`repro.engine.aggregates` — mergeable partial aggregates (count, sum,
  min, max, mean, log-histogram percentile/CDF sketches);
* :mod:`repro.engine.parallel` — a ``multiprocessing`` executor that fans
  chunk scans out over workers (each opening the store once) and merges the
  partials;
* :mod:`repro.engine.pipeline` — :class:`ScanPipeline`, the shared-scan
  runner: N analyses fold over one decoded pass of the store.

Quickstart — write a store from any job iterable (here, two literal jobs),
then run a filtered aggregate over it without materializing the rows::

    >>> import tempfile, os
    >>> from repro.engine import ChunkedTraceStore, Query, execute
    >>> from repro.traces import Job
    >>> jobs = [Job(job_id="a", submit_time_s=0.0, duration_s=50.0,
    ...             input_bytes=5e9, shuffle_bytes=0.0, output_bytes=1e8,
    ...             map_task_seconds=100.0, reduce_task_seconds=0.0),
    ...         Job(job_id="b", submit_time_s=10.0, duration_s=20.0,
    ...             input_bytes=2e7, shuffle_bytes=0.0, output_bytes=1e6,
    ...             map_task_seconds=40.0, reduce_task_seconds=0.0)]
    >>> directory = os.path.join(tempfile.mkdtemp(), "tiny.store")
    >>> store = ChunkedTraceStore.write(directory, iter(jobs))
    >>> query = (Query()
    ...          .filter("input_bytes", ">", 1e9)
    ...          .aggregate(jobs=("count", "input_bytes"),
    ...                     bytes=("sum", "input_bytes")))
    >>> result = execute(store, query)
    >>> result.aggregates["jobs"], result.aggregates["bytes"]
    (1, 5000000000.0)

The same store can be replayed with bounded memory by
:class:`repro.simulator.StreamingReplayer`, and swept across scheduler/cache
scenarios by :class:`repro.simulator.ScenarioSweep` — see
:mod:`repro.simulator.replay` and :mod:`repro.simulator.sweep`.
"""

from .aggregates import (
    AGGREGATE_OPS,
    AggregateState,
    CDFState,
    CountState,
    HistogramSketch,
    MaxState,
    MeanState,
    MinState,
    PercentileState,
    SumState,
    make_aggregate,
    parse_aggregate_spec,
)
from .catalog import CATALOG_METADATA_NAME, CatalogEntry, StoreCatalog
from .federation import FederatedSource, MemberScan
from .codecs import (
    DEFAULT_CODEC,
    StoreDictionary,
    StringDictionary,
    available_codecs,
    register_codec,
)
from .columnar import (
    DEFAULT_CHUNK_ROWS,
    NUMERIC_COLUMNS,
    STRING_COLUMNS,
    ColumnBlock,
    ColumnarTrace,
)
from .indexes import (
    InvertedColumnIndex,
    SortedColumnIndex,
    StaleIndexError,
    StoreIndexes,
    build_indexes,
    drop_indexes,
    indexable_columns,
    load_indexes,
)
from .operators import PREDICATE_OPS, Predicate, Query, QueryResult, execute
from .parallel import ParallelExecutor, get_worker_store
from .planner import Plan, execute_planned, plan_query
from .pipeline import (
    Checkpoint,
    ChunkConsumer,
    GatherConsumer,
    PipelineResult,
    ScanChunk,
    ScanPipeline,
    SummaryConsumer,
    fold_consumer,
    run_resumable_scan,
)
from .source import TraceSource
from .store import (
    DEFAULT_FORMAT_VERSION,
    SUPPORTED_FORMAT_VERSIONS,
    ChunkedTraceStore,
    StoreAppender,
    append_store,
    write_store,
)

__all__ = [
    "CATALOG_METADATA_NAME",
    "CatalogEntry",
    "StoreCatalog",
    "FederatedSource",
    "MemberScan",
    "run_resumable_scan",
    "ColumnarTrace",
    "ColumnBlock",
    "Checkpoint",
    "ChunkConsumer",
    "GatherConsumer",
    "PipelineResult",
    "ScanChunk",
    "ScanPipeline",
    "SummaryConsumer",
    "fold_consumer",
    "get_worker_store",
    "DEFAULT_FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
    "DEFAULT_CODEC",
    "StoreDictionary",
    "StringDictionary",
    "available_codecs",
    "register_codec",
    "NUMERIC_COLUMNS",
    "STRING_COLUMNS",
    "DEFAULT_CHUNK_ROWS",
    "ChunkedTraceStore",
    "StoreAppender",
    "append_store",
    "write_store",
    "Predicate",
    "Query",
    "QueryResult",
    "execute",
    "PREDICATE_OPS",
    "SortedColumnIndex",
    "InvertedColumnIndex",
    "StoreIndexes",
    "StaleIndexError",
    "build_indexes",
    "load_indexes",
    "drop_indexes",
    "indexable_columns",
    "Plan",
    "plan_query",
    "execute_planned",
    "ParallelExecutor",
    "TraceSource",
    "AggregateState",
    "CountState",
    "SumState",
    "MinState",
    "MaxState",
    "MeanState",
    "PercentileState",
    "CDFState",
    "HistogramSketch",
    "AGGREGATE_OPS",
    "make_aggregate",
    "parse_aggregate_spec",
]
