"""Federated scans: N member stores, per-store consumer states, one API.

The paper's closing argument (§7) compares seven clusters side by side; this
module is the engine seam that makes such multi-store analyses first-class.
A :class:`FederatedSource` holds an ordered set of catalog members and runs
the existing :class:`~repro.engine.pipeline.ScanPipeline` contract **per
member** — every member store gets its own fresh consumer states, its own
chunk order, and (optionally) its own resumable checkpoint — so per-member
results are bit-identical to scanning each store alone, serial or parallel.

Member scans fan out over worker processes via
:class:`~repro.engine.parallel.ParallelExecutor` (one member per task; each
worker re-opens the member it was handed through
:func:`~repro.engine.parallel.get_worker_store`).  Point and top-k lookups
ride the PR-9 cost-aware planner per member through :meth:`FederatedSource.query`
— index sidecars are consulted member by member, and a stale sidecar on one
member degrades only that member to a scan (the planner's lenient path).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError, TraceFormatError
from .catalog import CatalogEntry, StoreCatalog
from .parallel import get_worker_store
from .pipeline import PipelineResult, run_resumable_scan
from .planner import execute_planned
from .source import TraceSource

__all__ = ["FederatedSource", "MemberScan"]


class MemberScan:
    """One member's share of a federated scan.

    Attributes:
        name: the catalog member name.
        result: the member's :class:`~repro.engine.pipeline.PipelineResult`
            (per-consumer results/errors, decode counters).
        resume: the member's checkpoint-resume report, or ``None`` for a cold
            scan (see :func:`~repro.engine.pipeline.run_resumable_scan`).
        checkpoint_path: where the member's fresh checkpoint was saved, if
            checkpointing was requested.
    """

    def __init__(self, name: str, result: PipelineResult,
                 resume: Optional[Dict[str, object]] = None,
                 checkpoint_path: Optional[str] = None):
        self.name = name
        self.result = result
        self.resume = resume
        self.checkpoint_path = checkpoint_path


def _member_checkpoint_path(checkpoint_dir: str, name: str) -> str:
    return os.path.join(checkpoint_dir, "%s.checkpoint.json" % (name,))


def _scan_member(task: Tuple) -> MemberScan:
    """Scan one member store; runs in a worker process (or inline, serially).

    The task carries only picklable payloads: the member name and directory,
    a module-level consumer factory, and the member's checkpoint path.  A
    checkpoint that no longer validates (the member was rewritten rather than
    appended to) falls back to a cold full scan instead of failing the whole
    federation.
    """
    name, directory, factory, checkpoint_dir = task
    store = get_worker_store(directory)
    source = TraceSource.wrap(store)
    consumers = factory(source, name)
    checkpoint_path = (None if checkpoint_dir is None
                       else _member_checkpoint_path(checkpoint_dir, name))
    resume_from = (checkpoint_path
                   if checkpoint_path is not None and os.path.exists(checkpoint_path)
                   else None)
    try:
        merged, report, saved = run_resumable_scan(
            source, consumers, resume_from=resume_from,
            checkpoint_to=checkpoint_path, meta={"member": name})
    except AnalysisError:
        if resume_from is None:
            raise
        merged, report, saved = run_resumable_scan(
            source, consumers, resume_from=None,
            checkpoint_to=checkpoint_path, meta={"member": name})
    return MemberScan(name, merged, resume=report, checkpoint_path=saved)


class FederatedSource:
    """An ordered set of member stores scanned through one pipeline contract.

    Construct from a :class:`~repro.engine.catalog.StoreCatalog` (or a catalog
    directory path) via :meth:`from_catalog`, or directly from
    :class:`~repro.engine.catalog.CatalogEntry` instances.  Members keep
    their catalog order (member-name sorted) unless an explicit ``names``
    selection reorders them.
    """

    def __init__(self, members: Sequence[CatalogEntry]):
        self.members: List[CatalogEntry] = list(members)
        seen = set()
        for entry in self.members:
            if entry.name in seen:
                raise TraceFormatError("federated source has two members named %r"
                                       % (entry.name,))
            seen.add(entry.name)

    @classmethod
    def from_catalog(cls, catalog, names: Optional[Sequence[str]] = None) -> "FederatedSource":
        """A federated view over a catalog (or catalog directory path).

        Raises:
            TraceFormatError: for an unknown member name.
        """
        if not isinstance(catalog, StoreCatalog):
            catalog = StoreCatalog(os.fspath(catalog))
        if names is None:
            members = catalog.members()
        else:
            members = [catalog.entry(name) for name in names]
        return cls(members)

    def names(self) -> List[str]:
        return [entry.name for entry in self.members]

    def __len__(self) -> int:
        return len(self.members)

    def entry(self, name: str) -> CatalogEntry:
        for member in self.members:
            if member.name == name:
                return member
        raise TraceFormatError(
            "federated source has no member named %r (have: %s)"
            % (name, ", ".join(self.names()) or "<none>"))

    def source(self, name: str) -> TraceSource:
        """A :class:`TraceSource` over one member's current store handle."""
        return TraceSource.wrap(self.entry(name).open())

    def scan(self, consumer_factory: Callable, executor=None,
             checkpoint_dir: Optional[str] = None) -> Dict[str, MemberScan]:
        """Run one shared scan per member, each with fresh consumer states.

        Args:
            consumer_factory: ``factory(source, member_name) -> [consumers]``
                building a fresh consumer list per member.  Must be a
                module-level (picklable) callable when ``executor`` fans
                members out over worker processes.
            executor: optional :class:`~repro.engine.parallel.ParallelExecutor`
                running one member per worker task.  The serial path runs the
                identical per-member code, so results are bit-identical.
            checkpoint_dir: when given, each member resumes from (and rolls
                forward) ``<dir>/<member>.checkpoint.json`` — appends since
                the last scan fold only the new chunks, bit-identical to a
                cold rescan.  A checkpoint that no longer validates falls
                back to a cold scan for that member only.

        Raises:
            AnalysisError: when the federation has no members.
        """
        if not self.members:
            raise AnalysisError("federated scan needs at least one member store")
        if checkpoint_dir is not None:
            os.makedirs(checkpoint_dir, exist_ok=True)
        tasks = [(entry.name, entry.directory, consumer_factory, checkpoint_dir)
                 for entry in self.members]
        if executor is None:
            scans = [_scan_member(task) for task in tasks]
        else:
            scans = executor.map(_scan_member, tasks)
        return {scan.name: scan for scan in scans}

    def query(self, query, names: Optional[Sequence[str]] = None,
              use_index: bool = True) -> Dict[str, object]:
        """Run one engine query per member through the cost-aware planner.

        Each member consults its own index sidecar (stale sidecars degrade
        that member to a scan — the planner's lenient path) and returns its
        own :class:`~repro.engine.operators.QueryResult` with the chosen
        :class:`~repro.engine.planner.Plan` attached.
        """
        selected = self.members if names is None else [self.entry(name) for name in names]
        return {entry.name: execute_planned(entry.open(), query, use_index=use_index)
                for entry in selected}

    def info(self) -> List[Dict]:
        """Per-member store metadata (with catalog name / cluster / epoch)."""
        return [entry.info() for entry in self.members]
