"""Secondary index sidecars for chunked trace stores.

Zone maps (PR 1) can only *skip whole chunks*; every surviving chunk still
pays a full column decode + compare.  This module adds per-column secondary
structures, persisted next to the manifest, that let the planner in
:mod:`repro.engine.planner` answer point, range, top-k and LIMIT queries by
touching only the chunks (often only the *rows*) that actually match:

* **Sorted-permutation index** (numeric columns) — every finite value of the
  column across the whole store, sorted ascending, with its ``(chunk, row)``
  coordinates carried along.  A predicate becomes two ``searchsorted`` calls;
  the slice between them *is* the exact match set, so point/range lookups and
  top-k are O(log n) + O(matches) instead of a full-column scan.  Ties sort
  by store position, which is what makes index-path results bit-identical to
  the scan path.

* **Inverted index** (dictionary-encoded string columns, store format v3) —
  one posting per ``(code, chunk)`` pair recording the row range
  (``first_row``..``last_row``) and match count, sorted by code.  It rides
  the v3 :class:`~repro.engine.codecs.StoreDictionary`: codes are append-only,
  so postings minted before an append stay valid after it.

* **Per-chunk density stats** — each index stores its per-chunk entry counts,
  so LIMIT queries know *exactly* which chunks contain matches (and how many)
  before decoding anything: the scan stops as soon as the collected rows are
  provably complete, NeedleTail-style.

**Sidecar layout.**  ``index.json`` (the index manifest) plus one
``index.<column>.npz`` per indexed column, all living inside the store
directory.  The array files are written first, then ``index.json`` is
committed with the same temp-file + fsync + ``os.replace`` dance as the store
manifest — a crash mid-build leaves either no index or a stale one, never a
torn one.

**Staleness contract.**  The index manifest pins ``store_uid``,
``manifest_sequence`` and ``n_chunks``.  :func:`load_indexes` refuses a
sidecar whose pins do not match the open store (``strict=True`` raises
:class:`StaleIndexError`; the planner uses ``strict=False`` and falls back to
the scan path, flagging the stale sidecar in the emitted plan so the CLI can
warn loudly).  A stale index is therefore *never silently consulted*.

**Appends.**  :meth:`StoreIndexes.extend` reads **only the appended chunks**
and merges their entries into the existing sorted/posting arrays (a stable
merge — old entries keep their rank among equal values because their store
positions are smaller).  :class:`~repro.engine.store.StoreAppender` calls
this automatically after a committed append, so an indexed store stays
indexed without ever re-reading old data.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TraceFormatError
from .columnar import NUMERIC_COLUMNS

__all__ = [
    "INDEX_MANIFEST_NAME",
    "INDEX_FORMAT_VERSION",
    "StaleIndexError",
    "SortedColumnIndex",
    "InvertedColumnIndex",
    "StoreIndexes",
    "build_indexes",
    "load_indexes",
    "cached_indexes",
    "extend_indexes",
    "drop_indexes",
    "indexable_columns",
]

INDEX_MANIFEST_NAME = "index.json"
INDEX_FORMAT_VERSION = 1

#: Predicate ops a sorted-permutation index can resolve to one contiguous run.
SORTED_PROBE_OPS = ("==", "<", "<=", ">", ">=")


class StaleIndexError(TraceFormatError):
    """The index sidecar does not match the store it sits next to."""


def _index_file(column: str) -> str:
    return "index.%s.npz" % (column,)


def _atomic_write_bytes(path: str, payload: bytes) -> None:
    temporary = path + ".tmp"
    with open(temporary, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)


# ---------------------------------------------------------------------------
# Sorted-permutation index (numeric columns)
# ---------------------------------------------------------------------------
class SortedColumnIndex:
    """All finite values of one numeric column in ``(value, chunk, row)`` order.

    ``values`` is sorted ascending with ties in store order (chunk, then row)
    — the stable-sort invariant every probe and the top-k path rely on.
    ``chunk_entries[c]`` counts the index entries contributed by chunk ``c``
    (its finite-value density).
    """

    kind = "sorted"

    __slots__ = ("column", "values", "chunks", "rows", "chunk_entries")

    def __init__(self, column: str, values: np.ndarray, chunks: np.ndarray,
                 rows: np.ndarray, chunk_entries: np.ndarray):
        self.column = column
        self.values = np.asarray(values, dtype=np.float64)
        self.chunks = np.asarray(chunks, dtype=np.uint32)
        self.rows = np.asarray(rows, dtype=np.uint32)
        self.chunk_entries = np.asarray(chunk_entries, dtype=np.int64)

    @property
    def entries(self) -> int:
        return int(self.values.shape[0])

    @classmethod
    def build(cls, column: str,
              chunk_values: Iterable[np.ndarray]) -> "SortedColumnIndex":
        """Build from per-chunk value arrays (streamed, one chunk at a time)."""
        index = cls(column, np.zeros(0), np.zeros(0, np.uint32),
                    np.zeros(0, np.uint32), np.zeros(0, np.int64))
        parts = [_sorted_part(chunk, values)
                 for chunk, values in enumerate(chunk_values)]
        return index._merged(parts)

    def extended(self, start_chunk: int,
                 chunk_values: Iterable[np.ndarray]) -> "SortedColumnIndex":
        """A new index covering ``start_chunk..`` appended chunks as well."""
        parts = [_sorted_part(start_chunk + offset, values)
                 for offset, values in enumerate(chunk_values)]
        return self._merged(parts)

    def _merged(self, parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray, int]]
                ) -> "SortedColumnIndex":
        values = np.concatenate([self.values] + [p[0] for p in parts])
        chunks = np.concatenate([self.chunks] + [p[1] for p in parts])
        rows = np.concatenate([self.rows] + [p[2] for p in parts])
        chunk_entries = np.concatenate(
            [self.chunk_entries, np.asarray([p[3] for p in parts], np.int64)])
        # Stable sort: the existing (already sorted) entries precede the new
        # ones in the concatenation and have smaller store positions, and each
        # new part arrives in store order — so ties land in (chunk, row)
        # order without ever materializing a position key.
        order = np.argsort(values, kind="stable")
        return SortedColumnIndex(self.column, values[order], chunks[order],
                                 rows[order], chunk_entries)

    # -- probes ------------------------------------------------------------
    def probe(self, op: str, value: float) -> Optional[Tuple[int, int]]:
        """The contiguous entry run matching ``column <op> value``, or ``None``.

        NaN rows never appear in the index, matching predicate semantics
        (comparisons with NaN are always false).  A NaN *literal* matches
        nothing, so it probes to an empty run.
        """
        if op not in SORTED_PROBE_OPS:
            return None
        try:
            value = float(value)
        except (TypeError, ValueError):
            return None
        if np.isnan(value):
            return (0, 0)
        if op == "==":
            return (int(np.searchsorted(self.values, value, side="left")),
                    int(np.searchsorted(self.values, value, side="right")))
        if op == "<":
            return (0, int(np.searchsorted(self.values, value, side="left")))
        if op == "<=":
            return (0, int(np.searchsorted(self.values, value, side="right")))
        if op == ">":
            return (int(np.searchsorted(self.values, value, side="right")),
                    self.entries)
        return (int(np.searchsorted(self.values, value, side="left")),
                self.entries)

    def count(self, op: str, value: float) -> Optional[int]:
        run = self.probe(op, value)
        return None if run is None else run[1] - run[0]

    def positions(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(chunks, rows)`` of entries ``[lo, hi)`` — value order, not store order."""
        return self.chunks[lo:hi], self.rows[lo:hi]

    def chunk_counts(self, lo: int, hi: int, n_chunks: int) -> np.ndarray:
        """Exact matches per chunk for the run ``[lo, hi)`` (LIMIT density)."""
        return np.bincount(self.chunks[lo:hi], minlength=n_chunks)

    def top_entries(self, k: int, largest: bool) -> np.ndarray:
        """Indices of the top-k entries, tie-broken exactly like the scan path.

        The scan path's heap keeps, among rows tied at the boundary value, the
        ones *latest* in store order.  ``values`` is sorted with ties in store
        order, so the last-k slice already does that for ``largest``; for
        smallest we take every strictly-smaller entry plus the *tail* of the
        boundary tie run.
        """
        k = min(k, self.entries)
        if k <= 0:
            return np.zeros(0, dtype=np.int64)
        if largest:
            return np.arange(self.entries - k, self.entries, dtype=np.int64)
        boundary = self.values[k - 1]
        strict = int(np.searchsorted(self.values, boundary, side="left"))
        tie_end = int(np.searchsorted(self.values, boundary, side="right"))
        need = k - strict
        return np.concatenate([np.arange(strict, dtype=np.int64),
                               np.arange(tie_end - need, tie_end, dtype=np.int64)])

    # -- persistence -------------------------------------------------------
    def arrays(self) -> Dict[str, np.ndarray]:
        return {"values": self.values, "chunks": self.chunks,
                "rows": self.rows, "chunk_entries": self.chunk_entries}

    @classmethod
    def from_arrays(cls, column: str, data) -> "SortedColumnIndex":
        return cls(column, data["values"], data["chunks"], data["rows"],
                   data["chunk_entries"])

    def stats(self) -> Dict:
        present = int(np.count_nonzero(self.chunk_entries))
        return {"kind": self.kind, "entries": self.entries,
                "chunks_present": present}


def _sorted_part(chunk: int, values: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    values = np.asarray(values, dtype=np.float64)
    finite = np.isfinite(values)
    rows = np.flatnonzero(finite).astype(np.uint32)
    finite_values = values[finite]
    chunks = np.full(rows.shape[0], chunk, dtype=np.uint32)
    return finite_values, chunks, rows, int(rows.shape[0])


# ---------------------------------------------------------------------------
# Inverted index (dictionary-encoded string columns, v3)
# ---------------------------------------------------------------------------
class InvertedColumnIndex:
    """Postings for one dict-encoded column: code → row ranges per chunk.

    One posting per ``(code, chunk)`` pair that occurs, sorted by code then
    chunk: ``first_rows``/``last_rows`` bound the rows of that chunk carrying
    the code (its *locality*), ``counts`` is the exact match count (its
    *density*).  Codes come from the store dictionary and are append-only, so
    the postings survive appends unchanged.
    """

    kind = "inverted"

    __slots__ = ("column", "codes", "chunks", "first_rows", "last_rows",
                 "counts", "chunk_entries")

    def __init__(self, column: str, codes: np.ndarray, chunks: np.ndarray,
                 first_rows: np.ndarray, last_rows: np.ndarray,
                 counts: np.ndarray, chunk_entries: np.ndarray):
        self.column = column
        self.codes = np.asarray(codes, dtype=np.uint32)
        self.chunks = np.asarray(chunks, dtype=np.uint32)
        self.first_rows = np.asarray(first_rows, dtype=np.uint32)
        self.last_rows = np.asarray(last_rows, dtype=np.uint32)
        self.counts = np.asarray(counts, dtype=np.int64)
        self.chunk_entries = np.asarray(chunk_entries, dtype=np.int64)

    @property
    def entries(self) -> int:
        """Rows covered by postings (== rows of the store for a dict column)."""
        return int(self.counts.sum())

    @property
    def postings(self) -> int:
        return int(self.codes.shape[0])

    @classmethod
    def build(cls, column: str,
              chunk_codes: Iterable[np.ndarray]) -> "InvertedColumnIndex":
        index = cls(column, *(np.zeros(0, np.uint32) for _ in range(4)),
                    np.zeros(0, np.int64), np.zeros(0, np.int64))
        parts = [_posting_part(chunk, codes)
                 for chunk, codes in enumerate(chunk_codes)]
        return index._merged(parts)

    def extended(self, start_chunk: int,
                 chunk_codes: Iterable[np.ndarray]) -> "InvertedColumnIndex":
        parts = [_posting_part(start_chunk + offset, codes)
                 for offset, codes in enumerate(chunk_codes)]
        return self._merged(parts)

    def _merged(self, parts) -> "InvertedColumnIndex":
        codes = np.concatenate([self.codes] + [p[0] for p in parts])
        chunks = np.concatenate([self.chunks] + [p[1] for p in parts])
        first_rows = np.concatenate([self.first_rows] + [p[2] for p in parts])
        last_rows = np.concatenate([self.last_rows] + [p[3] for p in parts])
        counts = np.concatenate([self.counts] + [p[4] for p in parts])
        chunk_entries = np.concatenate(
            [self.chunk_entries, np.asarray([p[5] for p in parts], np.int64)])
        # Stable by code: postings of older (smaller) chunks stay first.
        order = np.argsort(codes, kind="stable")
        return InvertedColumnIndex(self.column, codes[order], chunks[order],
                                   first_rows[order], last_rows[order],
                                   counts[order], chunk_entries)

    # -- probes ------------------------------------------------------------
    def probe_code(self, code: int) -> Tuple[int, int]:
        """The posting run for ``code`` (empty when the code never occurs)."""
        return (int(np.searchsorted(self.codes, np.uint32(code), side="left")),
                int(np.searchsorted(self.codes, np.uint32(code), side="right")))

    def count_code(self, code: int) -> int:
        lo, hi = self.probe_code(code)
        return int(self.counts[lo:hi].sum())

    def chunk_counts_code(self, code: int, n_chunks: int) -> np.ndarray:
        lo, hi = self.probe_code(code)
        return np.bincount(self.chunks[lo:hi], weights=self.counts[lo:hi],
                           minlength=n_chunks).astype(np.int64)

    # -- persistence -------------------------------------------------------
    def arrays(self) -> Dict[str, np.ndarray]:
        return {"codes": self.codes, "chunks": self.chunks,
                "first_rows": self.first_rows, "last_rows": self.last_rows,
                "counts": self.counts, "chunk_entries": self.chunk_entries}

    @classmethod
    def from_arrays(cls, column: str, data) -> "InvertedColumnIndex":
        return cls(column, data["codes"], data["chunks"], data["first_rows"],
                   data["last_rows"], data["counts"], data["chunk_entries"])

    def stats(self) -> Dict:
        distinct = int(np.unique(self.codes).shape[0]) if self.postings else 0
        return {"kind": self.kind, "entries": self.entries,
                "postings": self.postings, "distinct_codes": distinct,
                "chunks_present": int(np.count_nonzero(self.chunk_entries))}


def _posting_part(chunk: int, codes: np.ndarray):
    codes = np.asarray(codes)
    if codes.shape[0] == 0:
        z32 = np.zeros(0, np.uint32)
        return z32, z32, z32, z32, np.zeros(0, np.int64), 0
    order = np.argsort(codes, kind="stable")  # stable → rows ascend per code
    sorted_codes = codes[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_codes)) + 1])
    ends = np.concatenate([starts[1:], [sorted_codes.shape[0]]])
    unique_codes = sorted_codes[starts].astype(np.uint32)
    first_rows = order[starts].astype(np.uint32)
    last_rows = order[ends - 1].astype(np.uint32)
    counts = (ends - starts).astype(np.int64)
    chunks = np.full(unique_codes.shape[0], chunk, dtype=np.uint32)
    return unique_codes, chunks, first_rows, last_rows, counts, int(codes.shape[0])


# ---------------------------------------------------------------------------
# The sidecar: all of one store's column indexes + the staleness pins
# ---------------------------------------------------------------------------
class StoreIndexes:
    """Handle on a store's index sidecar (lazy per-column array loading)."""

    def __init__(self, directory: str, store_uid: Optional[str],
                 manifest_sequence: int, n_chunks: int, n_rows: int,
                 column_meta: Dict[str, Dict],
                 loaded: Optional[Dict[str, object]] = None):
        self.directory = directory
        self.store_uid = store_uid
        self.manifest_sequence = int(manifest_sequence)
        self.n_chunks = int(n_chunks)
        self.n_rows = int(n_rows)
        #: column -> {"kind": ..., "entries": ..., "file": ...}
        self.column_meta = column_meta
        self._loaded: Dict[str, object] = dict(loaded or {})

    # -- access ------------------------------------------------------------
    @property
    def columns(self) -> List[str]:
        return sorted(self.column_meta)

    def column(self, name: str):
        """The :class:`SortedColumnIndex` / :class:`InvertedColumnIndex`, or ``None``."""
        if name in self._loaded:
            return self._loaded[name]
        meta = self.column_meta.get(name)
        if meta is None:
            return None
        path = os.path.join(self.directory, meta["file"])
        try:
            with np.load(path, allow_pickle=False) as data:
                if meta["kind"] == "sorted":
                    index = SortedColumnIndex.from_arrays(name, data)
                else:
                    index = InvertedColumnIndex.from_arrays(name, data)
        except (IOError, KeyError, ValueError) as exc:
            raise TraceFormatError("%s: cannot read index sidecar %s: %s"
                                   % (self.directory, meta["file"], exc))
        if index.chunk_entries.shape[0] != self.n_chunks:
            raise StaleIndexError(
                "%s: index for %r covers %d chunks but the manifest pins %d"
                % (self.directory, name, index.chunk_entries.shape[0],
                   self.n_chunks))
        self._loaded[name] = index
        return index

    # -- staleness ---------------------------------------------------------
    def stale_reason(self, store) -> Optional[str]:
        """Why this sidecar must not be used with ``store`` (None = fresh)."""
        if self.store_uid != store.store_uid:
            return ("index was built for store_uid %s but the store is %s"
                    % (self.store_uid, store.store_uid))
        if self.manifest_sequence != store.manifest_sequence:
            return ("index pins manifest_sequence %d but the store is at %d"
                    % (self.manifest_sequence, store.manifest_sequence))
        if self.n_chunks != store.n_chunks:
            return ("index covers %d chunks but the store has %d"
                    % (self.n_chunks, store.n_chunks))
        return None

    def verify_fresh(self, store) -> None:
        reason = self.stale_reason(store)
        if reason is not None:
            raise StaleIndexError(
                "%s: stale index sidecar refused (%s); rebuild with "
                "'repro engine index build --store %s'"
                % (store.directory, reason, store.directory))

    # -- persistence -------------------------------------------------------
    def save(self, directory: Optional[str] = None) -> None:
        """Commit crash-safely: array files first, then the pinned manifest."""
        directory = directory or self.directory
        import io

        for name in self.columns:
            index = self.column(name)
            buffer = io.BytesIO()
            np.savez(buffer, **index.arrays())
            _atomic_write_bytes(os.path.join(directory, _index_file(name)),
                                buffer.getvalue())
        manifest = {
            "index_format_version": INDEX_FORMAT_VERSION,
            "store_uid": self.store_uid,
            "manifest_sequence": self.manifest_sequence,
            "n_chunks": self.n_chunks,
            "n_rows": self.n_rows,
            "columns": {name: dict(self.column_meta[name], **self.column(name).stats())
                        for name in self.columns},
        }
        payload = (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode()
        _atomic_write_bytes(os.path.join(directory, INDEX_MANIFEST_NAME), payload)

    def sizes(self) -> Dict[str, int]:
        """On-disk sidecar bytes per indexed column (``engine info --sizes``)."""
        sizes: Dict[str, int] = {}
        for name, meta in self.column_meta.items():
            path = os.path.join(self.directory, meta["file"])
            sizes[name] = os.path.getsize(path) if os.path.isfile(path) else 0
        return sizes

    def info(self, store=None) -> Dict:
        """Summary for ``store.info()['indexes']`` and the service catalog."""
        summary = {
            "manifest_sequence": self.manifest_sequence,
            "n_chunks": self.n_chunks,
            "n_rows": self.n_rows,
            "columns": {name: dict(self.column_meta[name])
                        for name in self.columns},
            "on_disk_bytes": int(sum(self.sizes().values())),
        }
        if store is not None:
            reason = self.stale_reason(store)
            summary["fresh"] = reason is None
            if reason is not None:
                summary["stale_reason"] = reason
        return summary

    # -- building / extending ----------------------------------------------
    def extend(self, store, columns: Optional[Sequence[str]] = None) -> "StoreIndexes":
        """Fold the chunks appended since this index was built into it.

        Reads **only** chunks ``self.n_chunks..store.n_chunks`` — never the
        already-indexed ones — and returns a fresh sidecar pinned to the
        store's current ``manifest_sequence``.  Raises :class:`StaleIndexError`
        when the sidecar does not describe an older state of *this* store
        (uid mismatch, or the chunk history was rewritten).
        """
        if self.store_uid != store.store_uid:
            raise StaleIndexError(
                "%s: index was built for store_uid %s, not %s — rebuild it"
                % (store.directory, self.store_uid, store.store_uid))
        if self.n_chunks > store.n_chunks:
            raise StaleIndexError(
                "%s: index covers %d chunks but the store now has %d — the "
                "store was rewritten; rebuild the index"
                % (store.directory, self.n_chunks, store.n_chunks))
        targets = list(columns) if columns is not None else self.columns
        new_chunks = range(self.n_chunks, store.n_chunks)
        per_column: Dict[str, List[np.ndarray]] = {name: [] for name in targets}
        for chunk in new_chunks:
            block = store.read_chunk(chunk, columns=targets)
            for name in targets:
                per_column[name].append(_column_payload(block, name,
                                                        self.column(name).kind))
        loaded = {}
        meta = {}
        for name in targets:
            index = self.column(name).extended(self.n_chunks, per_column[name])
            loaded[name] = index
            meta[name] = {"kind": index.kind, "file": _index_file(name)}
        return StoreIndexes(store.directory, store.store_uid,
                            store.manifest_sequence, store.n_chunks,
                            store.n_jobs, meta, loaded)


def _column_payload(block, name: str, kind: str) -> np.ndarray:
    if kind == "sorted":
        return np.asarray(block.column(name), dtype=np.float64)
    pair = block.codes_for(name)
    if pair is None:
        raise TraceFormatError(
            "column %r is not dictionary-encoded in this chunk; the inverted "
            "index only covers v3 dict-encoded string columns" % (name,))
    return pair[0]


def indexable_columns(store) -> Dict[str, str]:
    """column -> index kind for every column of ``store`` that can be indexed.

    Numeric columns get a sorted-permutation index in every store format;
    string columns get an inverted index only when dictionary-encoded (v3) —
    raw string columns have no stable code space to post against.
    """
    kinds: Dict[str, str] = {}
    for name in store.columns:
        if name in NUMERIC_COLUMNS:
            kinds[name] = "sorted"
        elif getattr(store, "string_encodings", {}).get(name) == "dict":
            kinds[name] = "inverted"
    return kinds


def build_indexes(store, columns: Optional[Sequence[str]] = None) -> StoreIndexes:
    """Build (or rebuild) index structures for ``store``, streamed chunk-at-a-time.

    ``columns`` defaults to every indexable column.  Only the requested
    columns are decoded per chunk; per-chunk partial structures are merged at
    the end, so peak memory is the finished index itself (~16 bytes/row per
    numeric column), never the decoded store.
    """
    kinds = indexable_columns(store)
    if columns is None:
        targets = sorted(kinds)
    else:
        targets = []
        for name in columns:
            if name not in kinds:
                raise TraceFormatError(
                    "store %s cannot index column %r (indexable: %s)"
                    % (store.directory, name, ", ".join(sorted(kinds)) or "none"))
            if name not in targets:
                targets.append(name)
    per_column: Dict[str, List[np.ndarray]] = {name: [] for name in targets}
    for chunk in range(store.n_chunks):
        block = store.read_chunk(chunk, columns=targets)
        for name in targets:
            per_column[name].append(_column_payload(block, name, kinds[name]))
    loaded: Dict[str, object] = {}
    meta: Dict[str, Dict] = {}
    for name in targets:
        if kinds[name] == "sorted":
            index: object = SortedColumnIndex.build(name, per_column[name])
        else:
            index = InvertedColumnIndex.build(name, per_column[name])
        loaded[name] = index
        meta[name] = {"kind": kinds[name], "file": _index_file(name)}
    return StoreIndexes(store.directory, store.store_uid,
                        store.manifest_sequence, store.n_chunks, store.n_jobs,
                        meta, loaded)


def load_indexes(store, strict: bool = False) -> Optional[StoreIndexes]:
    """Load the index sidecar of ``store``; ``None`` when there is none.

    ``strict=True`` additionally enforces freshness (raises
    :class:`StaleIndexError` when the pins moved).  With ``strict=False`` a
    stale sidecar is still *returned* — callers consult
    :meth:`StoreIndexes.stale_reason` and must not probe a stale one.
    """
    path = os.path.join(store.directory, INDEX_MANIFEST_NAME)
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TraceFormatError("%s: invalid index manifest: %s" % (path, exc))
    version = manifest.get("index_format_version")
    if version != INDEX_FORMAT_VERSION:
        raise TraceFormatError("%s: unsupported index format version %r"
                               % (path, version))
    indexes = StoreIndexes(
        store.directory, manifest.get("store_uid"),
        int(manifest.get("manifest_sequence", -1)),
        int(manifest.get("n_chunks", -1)), int(manifest.get("n_rows", 0)),
        {name: dict(meta) for name, meta in manifest.get("columns", {}).items()})
    if strict:
        indexes.verify_fresh(store)
    return indexes


def cached_indexes(store) -> Optional[StoreIndexes]:
    """Per-handle cache around :func:`load_indexes` (planner hot path).

    Keyed on the sidecar manifest's mtime, so a rebuild/extension through any
    code path invalidates the cache even on a long-lived handle.
    """
    path = os.path.join(store.directory, INDEX_MANIFEST_NAME)
    try:
        key = os.stat(path).st_mtime_ns
    except OSError:
        key = None
    cache = getattr(store, "_index_cache", None)
    if cache is not None and cache[0] == key:
        return cache[1]
    indexes = load_indexes(store) if key is not None else None
    store._index_cache = (key, indexes)
    return indexes


def extend_indexes(store, previous_chunks: int) -> Optional[StoreIndexes]:
    """Post-append hook: extend an existing sidecar over the new chunks.

    Called by :class:`~repro.engine.store.StoreAppender` after the manifest
    swap.  No sidecar → no-op.  A sidecar that was *already* stale before the
    append (it does not describe exactly the pre-append store) is left
    untouched: extending it could bake wrong entries in, and the staleness
    check refuses it loudly at query time instead.
    """
    indexes = load_indexes(store)
    if indexes is None:
        return None
    if (indexes.store_uid != store.store_uid
            or indexes.n_chunks != previous_chunks
            or indexes.manifest_sequence != store.manifest_sequence - 1):
        return None
    extended = indexes.extend(store)
    extended.save()
    return extended


def drop_indexes(store) -> int:
    """Delete the sidecar (manifest first, so readers never see a torn state)."""
    removed = 0
    manifest = os.path.join(store.directory, INDEX_MANIFEST_NAME)
    indexes = load_indexes(store)
    if os.path.isfile(manifest):
        os.remove(manifest)
        removed += 1
    if indexes is not None:
        for meta in indexes.column_meta.values():
            path = os.path.join(store.directory, meta["file"])
            if os.path.isfile(path):
                os.remove(path)
                removed += 1
    return removed
