"""Lazy scan operators over columnar traces and chunked stores.

A :class:`Query` is a small, immutable, picklable description of a scan
pipeline::

    scan -> filter* -> project -> (aggregate | group-by aggregate | top-k | collect)

Execution streams one chunk at a time from any *scan source* — an in-memory
:class:`~repro.engine.columnar.ColumnarTrace` or an on-disk
:class:`~repro.engine.store.ChunkedTraceStore` — so memory stays bounded by
chunk size regardless of trace size.  Three classic optimizations apply:

* **column pruning** — only the columns the query touches are loaded;
* **zone-map chunk skipping** — chunks whose recorded min/max range cannot
  satisfy a filter are never read (NeedleTail-style early discard);
* **short-circuiting** — ``limit`` stops the scan as soon as enough rows have
  been collected, and a pure ``count``/``limit`` probe never loads data
  columns at all.

Because a query is plain data (no lambdas), the same object can be shipped to
worker processes by :class:`~repro.engine.parallel.ParallelExecutor`, which
evaluates disjoint chunk sets and merges the mergeable partial aggregates from
:mod:`repro.engine.aggregates`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from .aggregates import AggregateState, make_aggregate
from .columnar import ColumnBlock

__all__ = ["Predicate", "Query", "QueryResult", "execute", "PREDICATE_OPS"]

PREDICATE_OPS = ("==", "!=", "<", "<=", ">", ">=", "finite")


@dataclass(frozen=True)
class Predicate:
    """One ``column <op> value`` filter; plain data so it pickles and prunes.

    ``op`` is one of :data:`PREDICATE_OPS`.  ``finite`` keeps rows whose value
    is recorded (non-NaN) and ignores ``value``.  String columns support
    ``==`` / ``!=`` only.
    """

    column: str
    op: str
    value: object = None

    def __post_init__(self):
        if self.op not in PREDICATE_OPS:
            raise AnalysisError("unknown predicate op %r (supported: %s)"
                                % (self.op, ", ".join(PREDICATE_OPS)))

    def mask(self, block: ColumnBlock) -> np.ndarray:
        pair = block.codes_for(self.column)
        if pair is not None:
            # Dictionary-encoded (v3) column: resolve the literal against the
            # dictionary once, then compare uint32 codes — the strings of this
            # chunk are never materialized.
            codes, table = pair
            if self.op == "finite":
                return block.recorded_mask(self.column)
            if self.op in ("==", "!="):
                code = table.lookup(str(self.value))
                if code is None:  # value not in the store at all
                    full = np.zeros(codes.shape[0], dtype=bool)
                    return ~full if self.op == "!=" else full
                return codes == np.uint32(code) if self.op == "==" \
                    else codes != np.uint32(code)
            raise AnalysisError("string column %r only supports ==/!=, got %r"
                                % (self.column, self.op))
        values = block.column(self.column)
        if self.op == "finite":
            if values.dtype.kind in "US":
                return values != ""
            return np.isfinite(values)
        if values.dtype.kind in "US":
            if self.op == "==":
                return values == str(self.value)
            if self.op == "!=":
                return values != str(self.value)
            raise AnalysisError("string column %r only supports ==/!=, got %r"
                                % (self.column, self.op))
        try:
            value = float(self.value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise AnalysisError("numeric column %r cannot be compared to %r"
                                % (self.column, self.value))
        if self.op == "==":
            return values == value
        if self.op == "!=":
            return values != value
        if self.op == "<":
            return values < value
        if self.op == "<=":
            return values <= value
        if self.op == ">":
            return values > value
        return values >= value

    def admits_zone(self, zone: Optional[Sequence[float]]) -> bool:
        """Can any row of a chunk with finite-value range ``zone`` match?

        ``zone`` is the [min, max] recorded in the store manifest, or ``None``
        when unavailable (string columns, absent columns) — in which case the
        chunk must be scanned.  NaN rows never satisfy a comparison, so a zone
        over finite values is sound.  A zone carrying NaN *bounds* (a
        hand-written or corrupted manifest — the store writer only records
        finite extrema) is unreliable and admits the chunk: every comparison
        against NaN is false, which would otherwise silently skip rows.
        """
        if zone is None or self.op in ("finite", "!="):
            return True
        try:
            value = float(self.value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return True
        low, high = (float(zone[0]), float(zone[1]))
        if np.isnan(low) or np.isnan(high):
            return True
        if self.op == "==":
            return low <= value <= high
        if self.op == "<":
            return low < value
        if self.op == "<=":
            return low <= value
        if self.op == ">":
            return high > value
        return high >= value


@dataclass(frozen=True)
class Query:
    """Immutable scan-pipeline description; build with the fluent methods."""

    predicates: Tuple[Predicate, ...] = ()
    projection: Optional[Tuple[str, ...]] = None
    aggregates: Tuple[Tuple[str, str, str], ...] = ()  # (label, op, column)
    group_column: Optional[str] = None
    top_k_column: Optional[str] = None
    top_k: int = 0
    top_k_largest: bool = True
    row_limit: Optional[int] = None

    # -- builders ----------------------------------------------------------
    def filter(self, column: str, op: str, value: object = None) -> "Query":
        return replace(self, predicates=self.predicates + (Predicate(column, op, value),))

    def project(self, columns: Sequence[str]) -> "Query":
        return replace(self, projection=tuple(columns))

    def aggregate(self, **specs: Tuple[str, str]) -> "Query":
        """Add aggregates: ``label=(op, column)`` pairs."""
        added = tuple((label, op, column) for label, (op, column) in specs.items())
        return replace(self, aggregates=self.aggregates + added)

    def count(self, label: str = "count") -> "Query":
        """Count rows passing the filters (uses the always-present submit column)."""
        return replace(self, aggregates=self.aggregates + ((label, "rows", "submit_time_s"),))

    def group_by(self, column: str) -> "Query":
        return replace(self, group_column=column)

    def top(self, column: str, k: int, largest: bool = True) -> "Query":
        if k <= 0:
            raise AnalysisError("top-k needs k >= 1, got %r" % (k,))
        return replace(self, top_k_column=column, top_k=k, top_k_largest=largest)

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise AnalysisError("limit must be non-negative, got %r" % (n,))
        return replace(self, row_limit=n)

    # -- plan introspection ------------------------------------------------
    def validate(self) -> None:
        if self.aggregates and self.top_k_column:
            raise AnalysisError("a query cannot combine aggregates with top-k")
        if self.group_column and not self.aggregates:
            raise AnalysisError("group_by requires at least one aggregate")
        for label, op, column in self.aggregates:
            if op != "rows":
                make_aggregate(op)  # raises on unknown op

    def is_aggregate_only(self) -> bool:
        return bool(self.aggregates) and self.top_k_column is None

    def required_columns(self) -> Optional[List[str]]:
        """The minimal column set the query touches (None = all columns)."""
        needed: List[str] = []

        def add(name: str) -> None:
            if name not in needed:
                needed.append(name)

        for predicate in self.predicates:
            add(predicate.column)
        for _label, _op, column in self.aggregates:
            add(column)
        if self.group_column:
            add(self.group_column)
        if self.top_k_column:
            add(self.top_k_column)
        if self.aggregates or self.top_k_column:
            if self.projection:
                for name in self.projection:
                    add(name)
            return needed
        if self.projection is None:
            return None  # plain collect: keep every column
        for name in self.projection:
            add(name)
        return needed


@dataclass
class QueryResult:
    """Outcome of executing a :class:`Query` against a scan source.

    Exactly one of ``aggregates`` / ``groups`` / ``rows`` is populated,
    matching the query shape.  The scan counters record how much work the
    chunk-skipping and short-circuiting saved.
    """

    aggregates: Optional[Dict[str, object]] = None
    groups: Optional[Dict[object, Dict[str, object]]] = None
    rows: Optional[ColumnBlock] = None
    rows_scanned: int = 0
    rows_matched: int = 0
    chunks_scanned: int = 0
    chunks_skipped: int = 0
    #: The planner's access-path decision (:class:`repro.engine.planner.Plan`)
    #: when the query ran against a store through the planner; None otherwise.
    plan: Optional[object] = None

    def row_dicts(self) -> List[Dict[str, object]]:
        """Collected rows as plain dicts (handy for CLI printing and tests)."""
        if self.rows is None:
            return []
        names = self.rows.column_names()
        arrays = [self.rows.column(name) for name in names]
        return [
            {name: _python_value(array[row]) for name, array in zip(names, arrays)}
            for row in range(self.rows.n_rows)
        ]


def _python_value(value):
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.str_):
        return str(value)
    return value


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
def _iter_source_chunks(source, columns, predicates,
                        chunk_indices: Optional[Sequence[int]] = None):
    """Yield ``(block or None, skipped)`` per chunk, applying zone pruning."""
    zone_aware = hasattr(source, "chunk_zone")
    if zone_aware:
        indices = list(chunk_indices) if chunk_indices is not None else list(range(source.n_chunks))
        for index in indices:
            # chunk_zone answers None for columns without a recorded zone
            # (strings, unknown names) and resolves derived columns such as
            # submit_hour, so every predicate can be consulted directly.
            admitted = all(
                predicate.admits_zone(source.chunk_zone(index, predicate.column))
                for predicate in predicates
            )
            if not admitted:
                yield None, True
                continue
            yield source.read_chunk(index, columns=columns), False
    else:
        for block in source.iter_chunks(columns=columns):
            yield block, False


def execute(source, query: Query, chunk_indices: Optional[Sequence[int]] = None,
            use_planner: bool = True) -> QueryResult:
    """Run ``query`` against ``source``, streaming one chunk at a time.

    ``source`` is anything with ``iter_chunks(columns=...)`` — a
    :class:`ColumnarTrace` or a :class:`ChunkedTraceStore` (the latter also
    gets zone-map chunk skipping).  ``chunk_indices`` restricts the scan to a
    subset of a store's chunks (used by the parallel executor).

    Store-backed queries route through :mod:`repro.engine.planner`, which
    picks index-probe vs zone-skip vs full scan from the store's index
    sidecar (when one exists and is fresh) and attaches its :class:`Plan` to
    the result.  ``use_planner=False`` forces the raw scan path — the
    planner itself, the parallel executor's per-worker chunk subsets, and
    benchmarks comparing access paths use it.
    """
    query.validate()
    if (use_planner and chunk_indices is None
            and hasattr(source, "chunk_zone") and hasattr(source, "directory")):
        from .planner import execute_planned

        return execute_planned(source, query)
    columns = query.required_columns()
    result = QueryResult()

    if query.is_aggregate_only():
        states = _make_states(query)
        groups: Dict[object, Dict[str, AggregateState]] = {}
        for block, skipped in _iter_source_chunks(source, columns, query.predicates, chunk_indices):
            if skipped:
                result.chunks_skipped += 1
                continue
            result.chunks_scanned += 1
            result.rows_scanned += block.n_rows
            block = _apply_filters(block, query.predicates)
            result.rows_matched += block.n_rows
            if block.n_rows == 0:
                continue
            if query.group_column is None:
                _update_states(states, block, query)
            else:
                _update_groups(groups, block, query)
        if query.group_column is None:
            result.aggregates = {label: state.result() for label, state in states.items()}
        else:
            result.groups = {
                key: {label: state.result() for label, state in group.items()}
                for key, group in sorted(groups.items(), key=lambda item: str(item[0]))
            }
        return result

    if query.top_k_column is not None:
        return _execute_top_k(source, query, columns, chunk_indices, result)

    return _execute_collect(source, query, columns, chunk_indices, result)


def _make_states(query: Query) -> Dict[str, AggregateState]:
    return {label: _make_state(op) for label, op, _column in query.aggregates}


def _make_state(op: str) -> AggregateState:
    if op == "rows":
        # Row counting reuses CountState's mergeable counter; _update_states
        # dispatches on the op string and adds block.n_rows directly.
        from .aggregates import CountState

        return CountState()
    return make_aggregate(op)


def _update_states(states: Dict[str, AggregateState], block: ColumnBlock, query: Query) -> None:
    for label, op, column in query.aggregates:
        if op == "rows":
            states[label].count += block.n_rows  # type: ignore[attr-defined]
        else:
            states[label].update(block.column(column))


def _update_groups(groups, block: ColumnBlock, query: Query) -> None:
    keys = block.column(query.group_column)
    if keys.dtype.kind not in "US":
        # NaN keys are "not recorded": NaN != NaN would otherwise silently
        # drop those rows and mint one bogus nan-group per chunk.  Pool them
        # under a single None key instead.
        missing = np.isnan(keys)
        if missing.any():
            sub = block.select(missing)
            states = groups.get(None)
            if states is None:
                states = groups[None] = _make_states(query)
            _update_states(states, sub, query)
            block = block.select(~missing)
            keys = keys[~missing]
    # Single pass: unique + inverse, then partition rows by sorted inverse
    # index instead of one full-column comparison per distinct key.
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    boundaries = np.searchsorted(inverse[order], np.arange(unique_keys.size + 1))
    for key_index in range(unique_keys.size):
        rows = order[boundaries[key_index]:boundaries[key_index + 1]]
        group_key = _python_value(unique_keys[key_index])
        states = groups.get(group_key)
        if states is None:
            states = groups[group_key] = _make_states(query)
        _update_states(states, block.take(rows), query)


def _apply_filters(block: ColumnBlock, predicates: Tuple[Predicate, ...]) -> ColumnBlock:
    if not predicates:
        return block
    mask = predicates[0].mask(block)
    for predicate in predicates[1:]:
        if not mask.any():
            break
        mask &= predicate.mask(block)
    return block.select(mask)


def _execute_top_k(source, query: Query, columns, chunk_indices, result: QueryResult) -> QueryResult:
    """Heap-merge per-chunk top-k candidates; only k rows live at a time."""
    heap: List[Tuple[float, int, ColumnBlock]] = []  # (keyed value, tiebreak, 1-row block)
    sign = 1.0 if query.top_k_largest else -1.0
    tiebreak = 0
    for block, skipped in _iter_source_chunks(source, columns, query.predicates, chunk_indices):
        if skipped:
            result.chunks_skipped += 1
            continue
        result.chunks_scanned += 1
        result.rows_scanned += block.n_rows
        block = _apply_filters(block, query.predicates)
        result.rows_matched += block.n_rows
        values = block.column(query.top_k_column)
        finite = np.isfinite(values)
        if not finite.all():
            block = block.select(finite)
            values = values[finite]
        if values.size == 0:
            continue
        k = query.top_k
        if values.size > k:
            # Keep only this chunk's k best candidates before heap insertion.
            # Sorting the selection restores store order within the chunk, so
            # the heap's insertion-order tiebreak is deterministic (global
            # store position) — the index-backed top-k path reproduces the
            # same tie semantics from the sorted permutation.
            order = np.sort(np.argpartition(sign * values, -k)[-k:])
            block = block.take(order)
            values = values[order]
        for row in range(values.size):
            entry = (sign * float(values[row]), tiebreak, block.slice(row, row + 1))
            tiebreak += 1
            if len(heap) < query.top_k:
                heapq.heappush(heap, entry)
            else:
                heapq.heappushpop(heap, entry)
    ranked = sorted(heap, key=lambda item: (-item[0], item[1]))
    rows = [entry[2] for entry in ranked]
    merged = ColumnBlock.concat(rows) if rows else None
    if merged is not None and query.projection:
        merged = merged.project(query.projection)
    result.rows = merged if merged is not None else ColumnBlock({})
    return result


def _execute_collect(source, query: Query, columns, chunk_indices, result: QueryResult) -> QueryResult:
    """Materialize filtered/projected rows, short-circuiting on ``limit``."""
    limit = query.row_limit
    collected: List[ColumnBlock] = []
    n_collected = 0
    for block, skipped in _iter_source_chunks(source, columns, query.predicates, chunk_indices):
        if skipped:
            result.chunks_skipped += 1
            continue
        result.chunks_scanned += 1
        result.rows_scanned += block.n_rows
        block = _apply_filters(block, query.predicates)
        result.rows_matched += block.n_rows
        if query.projection:
            block = block.project(query.projection)
        if limit is not None and n_collected + block.n_rows > limit:
            block = block.slice(0, limit - n_collected)
        if block.n_rows:
            collected.append(block)
            n_collected += block.n_rows
        if limit is not None and n_collected >= limit:
            break  # short-circuit: later chunks are never read
    result.rows = ColumnBlock.concat(collected) if collected else ColumnBlock({})
    return result
