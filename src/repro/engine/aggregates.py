"""Mergeable partial aggregates for chunk-parallel execution.

Every aggregate here follows the same three-step contract so that a query can
be evaluated chunk by chunk — serially or fanned out over worker processes —
and combined at the end:

* ``update(values)`` folds one chunk's column values into the partial state;
* ``merge(other)`` combines two partials computed on disjoint chunks;
* ``result()`` extracts the final answer.

Count/sum/min/max/mean merge exactly.  Percentiles and CDFs use a fixed
log-spaced :class:`HistogramSketch` (the bins are static, so two sketches
always merge exactly; only the final percentile read-out is approximate, with
resolution of about 7% — one part in ``10 ** (1/BINS_PER_DECADE)``).

All classes are plain picklable objects so partial states can cross a
``multiprocessing`` boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import AnalysisError

__all__ = [
    "AggregateState",
    "CountState",
    "SumState",
    "MinState",
    "MaxState",
    "MeanState",
    "HistogramSketch",
    "PercentileState",
    "CDFState",
    "make_aggregate",
    "parse_aggregate_spec",
    "AGGREGATE_OPS",
]


class AggregateState:
    """Base interface: fold chunk values, merge partials, extract the result."""

    def update(self, values: np.ndarray) -> None:
        raise NotImplementedError

    def merge(self, other: "AggregateState") -> None:
        raise NotImplementedError

    def result(self):
        raise NotImplementedError


class CountState(AggregateState):
    """Count of finite (non-NaN) values."""

    def __init__(self):
        self.count = 0

    def update(self, values):
        self.count += int(np.isfinite(values).sum())

    def merge(self, other):
        self.count += other.count

    def result(self):
        return self.count


class SumState(AggregateState):
    def __init__(self):
        self.total = 0.0

    def update(self, values):
        finite = values[np.isfinite(values)]
        if finite.size:
            self.total += float(finite.sum())

    def merge(self, other):
        self.total += other.total

    def result(self):
        return self.total


class MinState(AggregateState):
    def __init__(self):
        self.value: Optional[float] = None

    def update(self, values):
        finite = values[np.isfinite(values)]
        if finite.size:
            low = float(finite.min())
            self.value = low if self.value is None else min(self.value, low)

    def merge(self, other):
        if other.value is not None:
            self.value = other.value if self.value is None else min(self.value, other.value)

    def result(self):
        return self.value


class MaxState(AggregateState):
    def __init__(self):
        self.value: Optional[float] = None

    def update(self, values):
        finite = values[np.isfinite(values)]
        if finite.size:
            high = float(finite.max())
            self.value = high if self.value is None else max(self.value, high)

    def merge(self, other):
        if other.value is not None:
            self.value = other.value if self.value is None else max(self.value, other.value)

    def result(self):
        return self.value


class MeanState(AggregateState):
    """Mean as a mergeable (sum, count) pair; ``None`` for an empty column."""

    def __init__(self):
        self.total = 0.0
        self.count = 0

    def update(self, values):
        finite = values[np.isfinite(values)]
        if finite.size:
            self.total += float(finite.sum())
            self.count += int(finite.size)

    def merge(self, other):
        self.total += other.total
        self.count += other.count

    def result(self):
        return self.total / self.count if self.count else None


# ---------------------------------------------------------------------------
# Histogram sketch: shared substrate for percentiles and CDFs
# ---------------------------------------------------------------------------
#: Static log-spaced bin layout: 10^LOW_EXP .. 10^HIGH_EXP bytes/seconds.
LOW_EXP = -3
HIGH_EXP = 16
BINS_PER_DECADE = 32
N_BINS = (HIGH_EXP - LOW_EXP) * BINS_PER_DECADE

_EDGES = np.logspace(LOW_EXP, HIGH_EXP, N_BINS + 1)
_CENTERS = np.sqrt(_EDGES[:-1] * _EDGES[1:])  # geometric bin midpoints


class HistogramSketch(AggregateState):
    """Fixed-bin log-spaced histogram of non-negative samples.

    The bin layout is static (``10^-3`` to ``10^16``, 32 bins per decade), so
    two sketches built on different chunks merge by adding their count arrays.
    Values of exactly zero get a dedicated count, values below the first edge
    clamp into the first bin, values above the last edge clamp into the last.
    Exact min/max are tracked alongside so read-outs can be clamped to the
    observed range.
    """

    def __init__(self):
        self.counts = np.zeros(N_BINS, dtype=np.int64)
        self.zero_count = 0
        self.n = 0
        self.low: Optional[float] = None
        self.high: Optional[float] = None

    def update(self, values):
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return
        if float(finite.min()) < 0:
            raise AnalysisError("histogram sketch expects non-negative samples")
        self.n += int(finite.size)
        low, high = float(finite.min()), float(finite.max())
        self.low = low if self.low is None else min(self.low, low)
        self.high = high if self.high is None else max(self.high, high)
        positive = finite[finite > 0.0]
        self.zero_count += int(finite.size - positive.size)
        if positive.size:
            # The edges are exactly log10-uniform, so the bin index is a
            # closed-form floor instead of a binary search; paired with a
            # dense bincount fill this is ~20x faster than searchsorted +
            # np.add.at on million-element chunks.
            bins = np.floor((np.log10(positive) - LOW_EXP) * BINS_PER_DECADE).astype(np.int64)
            np.clip(bins, 0, N_BINS - 1, out=bins)
            self.counts += np.bincount(bins, minlength=N_BINS).astype(np.int64)

    def merge(self, other):
        self.counts += other.counts
        self.zero_count += other.zero_count
        self.n += other.n
        if other.low is not None:
            self.low = other.low if self.low is None else min(self.low, other.low)
        if other.high is not None:
            self.high = other.high if self.high is None else max(self.high, other.high)

    # -- read-outs ---------------------------------------------------------
    def percentile(self, q: float) -> Optional[float]:
        """Approximate ``q``-th percentile (0-100), clamped to observed min/max.

        Follows the library-wide **lower nearest-rank** convention shared with
        :func:`repro.core.stats.percentile` (see that module's docstring): the
        first bin whose cumulative count reaches ``q/100 * n``, read out at its
        geometric center.  The two paths agree to within one bin — about 7.5%
        relative resolution — which ``tests/core/test_percentile_convention.py``
        asserts.
        """
        if not 0.0 <= q <= 100.0:
            raise AnalysisError("percentile must be in [0, 100], got %r" % (q,))
        if self.n == 0:
            return None
        rank = q / 100.0 * self.n
        if rank <= self.zero_count:
            return 0.0 if self.zero_count else float(self.low)
        cumulative = self.zero_count + np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, rank, side="left"))
        index = min(index, N_BINS - 1)
        estimate = float(_CENTERS[index])
        return float(min(max(estimate, self.low), self.high))

    def cdf_points(self, max_points: int = 256) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs over the non-empty bins."""
        if self.n == 0:
            return []
        points: List[Tuple[float, float]] = []
        running = self.zero_count
        if self.zero_count:
            points.append((0.0, running / self.n))
        nonzero = np.nonzero(self.counts)[0]
        for index in nonzero:
            running += int(self.counts[index])
            points.append((float(_CENTERS[index]), running / self.n))
        if len(points) > max_points:
            stride = -(-len(points) // max_points)
            thinned = points[::stride]
            if thinned[-1] != points[-1]:
                thinned.append(points[-1])
            points = thinned
        return points

    def result(self):
        return self


class PercentileState(AggregateState):
    """One percentile read out of a :class:`HistogramSketch`."""

    def __init__(self, q: float):
        if not 0.0 <= q <= 100.0:
            raise AnalysisError("percentile must be in [0, 100], got %r" % (q,))
        self.q = q
        self.sketch = HistogramSketch()

    def update(self, values):
        self.sketch.update(values)

    def merge(self, other):
        self.sketch.merge(other.sketch)

    def result(self):
        return self.sketch.percentile(self.q)


class CDFState(AggregateState):
    """A full (approximate) CDF read out of a :class:`HistogramSketch`."""

    def __init__(self):
        self.sketch = HistogramSketch()

    def update(self, values):
        self.sketch.update(values)

    def merge(self, other):
        self.sketch.merge(other.sketch)

    def result(self):
        return self.sketch.cdf_points()


_SIMPLE_OPS = {
    "count": CountState,
    "sum": SumState,
    "min": MinState,
    "max": MaxState,
    "mean": MeanState,
    "cdf": CDFState,
    "sketch": HistogramSketch,
}

#: Supported aggregate operation names (``pNN`` / ``percentile:q`` also work).
AGGREGATE_OPS = tuple(sorted(_SIMPLE_OPS)) + ("p50", "p95", "p99", "percentile:<q>")


def make_aggregate(op: str) -> AggregateState:
    """Instantiate a fresh aggregate state for ``op``.

    Ops: ``count``, ``sum``, ``min``, ``max``, ``mean``, ``cdf``, ``sketch``,
    ``pNN`` (e.g. ``p50``, ``p99.5``) or ``percentile:q``.
    """
    if op in _SIMPLE_OPS:
        return _SIMPLE_OPS[op]()
    if op.startswith("percentile:"):
        return PercentileState(float(op.split(":", 1)[1]))
    if op.startswith("p"):
        try:
            return PercentileState(float(op[1:]))
        except ValueError:
            pass
    raise AnalysisError("unknown aggregate op %r (supported: %s)"
                        % (op, ", ".join(AGGREGATE_OPS)))


def parse_aggregate_spec(text: str) -> Tuple[str, str, str]:
    """Parse a CLI-style aggregate spec into ``(label, op, column)``.

    Formats: ``op:column`` (label defaults to the spec itself), or plain
    ``count`` which counts rows via the ``submit_time_s`` column.
    """
    if ":" not in text:
        if text == "count":
            return "count", "count", "submit_time_s"
        raise AnalysisError("aggregate spec %r must look like op:column" % (text,))
    op, column = text.split(":", 1)
    if op == "percentile":
        # percentile:q:column
        parts = text.split(":")
        if len(parts) != 3:
            raise AnalysisError("percentile spec must be percentile:q:column, got %r" % (text,))
        return text, "percentile:%s" % parts[1], parts[2]
    return text, op, column
