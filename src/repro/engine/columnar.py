"""In-memory columnar representation of a job trace.

A :class:`ColumnarTrace` holds each per-job dimension as one contiguous NumPy
array instead of a Python list of :class:`~repro.traces.schema.Job` objects.
For the read-mostly analytical scans this library performs (Table 1 summaries,
the Figure CDFs, k-means features, Zipf fits) this is the layout the hardware
wants: a whole-column aggregate touches one cache-friendly array instead of
chasing a million object pointers.

Missing values are encoded uniformly:

* numeric columns use ``NaN`` (matching :meth:`Trace.dimension` semantics);
* string columns use the empty string, which round-trips to ``None`` — the
  same convention the CSV trace format already uses.

The module also defines :class:`ColumnBlock`, the batch-of-rows unit that the
scan operators in :mod:`repro.engine.operators` stream over; a chunk read from
a :class:`~repro.engine.store.ChunkedTraceStore` and a slice of an in-memory
:class:`ColumnarTrace` are both just blocks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from .codecs import StringDictionary
from ..traces.schema import Job, NUMERIC_DIMENSIONS
from ..traces.trace import Trace

__all__ = [
    "ColumnBlock",
    "ColumnarTrace",
    "NUMERIC_COLUMNS",
    "STRING_COLUMNS",
    "DERIVED_COLUMNS",
    "DEFAULT_CHUNK_ROWS",
]

#: Numeric columns stored per job (float64; NaN encodes "not recorded").
NUMERIC_COLUMNS = ("submit_time_s",) + NUMERIC_DIMENSIONS + ("map_tasks", "reduce_tasks")

#: String columns stored per job ("" encodes "not recorded", as in the CSV format).
STRING_COLUMNS = (
    "job_id",
    "name",
    "framework",
    "input_path",
    "output_path",
    "workload",
    "cluster_label",
)

#: Derived columns computable from the stored ones without materializing jobs.
DERIVED_COLUMNS = ("total_bytes", "total_task_seconds", "finish_time_s", "submit_hour")

ALL_COLUMNS = NUMERIC_COLUMNS + STRING_COLUMNS

#: Default rows per chunk for chunked iteration and the on-disk store.
DEFAULT_CHUNK_ROWS = 65536

_INT_COLUMNS = ("map_tasks", "reduce_tasks")


def _nan_to_zero(array: np.ndarray) -> np.ndarray:
    return np.where(np.isnan(array), 0.0, array)


class ColumnBlock:
    """A batch of job rows in column-major layout.

    This is the unit the scan operators stream: a dict of equally-sized NumPy
    arrays keyed by column name.  Blocks are cheap views wherever possible —
    :meth:`slice` returns array views, :meth:`select` copies only the selected
    rows.

    A block read from a format-v3 store may additionally carry
    **dictionary-encoded** string columns: ``codes`` holds the per-row
    ``uint32`` codes and ``dictionaries`` the per-column value tables.
    :meth:`column` materializes the strings lazily (and caches the result);
    code-native consumers use :meth:`codes_for` to fold over the integer
    codes without ever building the unicode array.
    """

    __slots__ = ("columns", "codes", "dictionaries")

    def __init__(self, columns: Dict[str, np.ndarray],
                 codes: Optional[Dict[str, np.ndarray]] = None,
                 dictionaries: Optional[Dict[str, StringDictionary]] = None):
        self.columns = columns
        self.codes = codes if codes is not None else {}
        self.dictionaries = dictionaries if dictionaries is not None else {}
        lengths = {array.shape[0] for array in columns.values()}
        lengths.update(array.shape[0] for array in self.codes.values())
        if len(lengths) > 1:
            raise AnalysisError("column block has ragged columns: %s" % (
                {name: arr.shape[0]
                 for name, arr in list(columns.items()) + list(self.codes.items())},))

    @property
    def n_rows(self) -> int:
        for array in self.columns.values():
            return int(array.shape[0])
        for array in self.codes.values():
            return int(array.shape[0])
        return 0

    def column_names(self) -> List[str]:
        """Every directly-stored column (decoded and dictionary-backed)."""
        names = list(self.columns)
        names.extend(name for name in self.codes if name not in self.columns)
        return names

    def codes_for(self, name: str):
        """``(uint32 codes, StringDictionary)`` for a dictionary-backed column.

        Returns ``None`` when the column is not dictionary-encoded — callers
        fall back to :meth:`column`.
        """
        codes = self.codes.get(name)
        if codes is None:
            return None
        return codes, self.dictionaries[name]

    def recorded_mask(self, name: str) -> np.ndarray:
        """True where the value is recorded ("finite" for strings and numbers).

        For a dictionary-backed column this compares codes against the code
        of ``""`` — no string materialization.
        """
        if name in self.codes and name not in self.columns:
            codes = self.codes[name]
            empty_code = self.dictionaries[name].lookup("")
            if empty_code is None:
                return np.ones(codes.shape[0], dtype=bool)
            return codes != np.uint32(empty_code)
        values = self.column(name)
        if values.dtype.kind in "US":
            return values != ""
        return np.isfinite(values)

    def materialized(self) -> Dict[str, np.ndarray]:
        """All stored columns as plain arrays (dictionary columns decoded)."""
        return {name: self.column(name) for name in self.column_names()}

    def column(self, name: str) -> np.ndarray:
        """One column by name, computing derived columns on the fly."""
        if name in self.columns:
            return self.columns[name]
        if name in self.codes:
            decoded = self.dictionaries[name].decode(self.codes[name])
            self.columns[name] = decoded  # cache: decode each chunk at most once
            return decoded
        if name == "total_bytes":
            return (_nan_to_zero(self.column("input_bytes"))
                    + _nan_to_zero(self.column("shuffle_bytes"))
                    + _nan_to_zero(self.column("output_bytes")))
        if name == "total_task_seconds":
            return (_nan_to_zero(self.column("map_task_seconds"))
                    + _nan_to_zero(self.column("reduce_task_seconds")))
        if name == "finish_time_s":
            return self.column("submit_time_s") + _nan_to_zero(self.column("duration_s"))
        if name == "submit_hour":
            return np.floor(self.column("submit_time_s") / 3600.0)
        raise AnalysisError("unknown column %r (have %s)" % (name, sorted(self.columns)))

    def has_column(self, name: str) -> bool:
        if name in self.columns or name in self.codes:
            return True
        if name == "total_bytes":
            return all(dim in self.columns for dim in ("input_bytes", "shuffle_bytes", "output_bytes"))
        if name == "total_task_seconds":
            return all(dim in self.columns for dim in ("map_task_seconds", "reduce_task_seconds"))
        if name == "finish_time_s":
            return all(dim in self.columns for dim in ("submit_time_s", "duration_s"))
        if name == "submit_hour":
            return "submit_time_s" in self.columns
        return False

    def select(self, mask: np.ndarray) -> "ColumnBlock":
        """Rows where ``mask`` is true, as a new block (codes stay codes)."""
        return ColumnBlock(
            {name: array[mask] for name, array in self.columns.items()},
            {name: array[mask] for name, array in self.codes.items()},
            self.dictionaries)

    def slice(self, start: int, stop: int) -> "ColumnBlock":
        """Rows ``[start, stop)`` as a view-backed block (no copy)."""
        return ColumnBlock(
            {name: array[start:stop] for name, array in self.columns.items()},
            {name: array[start:stop] for name, array in self.codes.items()},
            self.dictionaries)

    def take(self, indices: np.ndarray) -> "ColumnBlock":
        return ColumnBlock(
            {name: array[indices] for name, array in self.columns.items()},
            {name: array[indices] for name, array in self.codes.items()},
            self.dictionaries)

    def project(self, names: Sequence[str]) -> "ColumnBlock":
        """Only the named columns (derived ones are materialized).

        Dictionary-backed columns stay code-backed — projection never forces
        a string decode.
        """
        columns: Dict[str, np.ndarray] = {}
        codes: Dict[str, np.ndarray] = {}
        dictionaries: Dict[str, StringDictionary] = {}
        for name in names:
            if name in self.columns:
                columns[name] = self.columns[name]
            elif name in self.codes:
                codes[name] = self.codes[name]
                dictionaries[name] = self.dictionaries[name]
            else:
                columns[name] = self.column(name)
        return ColumnBlock(columns, codes, dictionaries)

    @staticmethod
    def concat(blocks: Sequence["ColumnBlock"]) -> "ColumnBlock":
        """Concatenate blocks row-wise (they must share a column set).

        Columns that are code-backed in *every* block against the *same*
        dictionary concatenate as codes; anything else materializes.
        """
        if not blocks:
            return ColumnBlock({})
        columns: Dict[str, np.ndarray] = {}
        codes: Dict[str, np.ndarray] = {}
        dictionaries: Dict[str, StringDictionary] = {}
        for name in blocks[0].column_names():
            first = blocks[0].codes_for(name)
            if first is not None and all(
                    (pair := block.codes_for(name)) is not None
                    and pair[1] is first[1] for block in blocks[1:]):
                codes[name] = np.concatenate([block.codes[name] for block in blocks])
                dictionaries[name] = first[1]
            else:
                columns[name] = np.concatenate([block.column(name) for block in blocks])
        return ColumnBlock(columns, codes, dictionaries)


class ColumnarTrace:
    """A whole trace in columnar form: one NumPy array per dimension.

    Supports the same analytical accessors as :class:`~repro.traces.trace.Trace`
    (``dimension``, ``feature_matrix``, ``summary``-style reductions, ``len``)
    without holding any :class:`Job` objects, plus chunked iteration for the
    scan operators.  Convert with :meth:`from_trace` / :meth:`to_trace` (also
    exposed as :meth:`Trace.to_columnar`).
    """

    def __init__(self, columns: Dict[str, np.ndarray], name: str = "trace",
                 machines: Optional[int] = None):
        normalized: Dict[str, np.ndarray] = {}
        n_rows = None
        for column in NUMERIC_COLUMNS:
            if column in columns:
                normalized[column] = np.asarray(columns[column], dtype=float)
                n_rows = normalized[column].shape[0]
        for column in STRING_COLUMNS:
            if column in columns:
                normalized[column] = np.asarray(columns[column], dtype=np.str_)
                n_rows = normalized[column].shape[0]
        unknown = set(columns) - set(ALL_COLUMNS)
        if unknown:
            raise AnalysisError("unknown trace columns: %s" % sorted(unknown))
        if n_rows is None:
            n_rows = 0
        self.block = ColumnBlock(normalized)
        self.name = name
        self.machines = machines
        # Establish the submit-time-sorted invariant that duration_s() and the
        # chunked store's sorted_by_submit_time manifest flag rely on.
        self._sort_by_submit_time()

    # -- construction ------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        """Convert a job-list :class:`Trace` (one pass over the jobs)."""
        return cls.from_jobs(trace.jobs, name=trace.name, machines=trace.machines)

    @classmethod
    def from_jobs(cls, jobs: Iterable[Job], name: str = "trace",
                  machines: Optional[int] = None) -> "ColumnarTrace":
        """Build from any iterable of jobs (e.g. a lazy trace-file reader)."""
        buffers: Dict[str, List] = {column: [] for column in ALL_COLUMNS}
        for job in jobs:
            _append_job(buffers, job)
        columns = _buffers_to_arrays(buffers)
        return cls(columns, name=name, machines=machines)

    def _sort_by_submit_time(self) -> None:
        if len(self) == 0 or "submit_time_s" not in self.block.columns:
            return
        times = self.block.column("submit_time_s")
        if times.size < 2 or bool(np.all(times[:-1] <= times[1:])):
            return  # already sorted (the common case): skip the take() copy
        order = np.argsort(times, kind="stable")
        self.block = self.block.take(order)

    def to_trace(self) -> Trace:
        """Materialize back into a job-list :class:`Trace`."""
        return Trace(self.iter_jobs(), name=self.name, machines=self.machines)

    def iter_jobs(self) -> Iterator[Job]:
        """Yield :class:`Job` objects row by row (materializes one at a time)."""
        for block in self.iter_chunks():
            for job in _block_to_jobs(block):
                yield job

    # -- container protocol ------------------------------------------------
    def __len__(self) -> int:
        return self.block.n_rows

    def __repr__(self) -> str:
        return "ColumnarTrace(name=%r, n_jobs=%d)" % (self.name, len(self))

    def is_empty(self) -> bool:
        return len(self) == 0

    @property
    def columns(self) -> Dict[str, np.ndarray]:
        if self.block.codes:
            self.block.materialized()  # decode v3 dictionary columns into the cache
        return self.block.columns

    # -- analytical accessors (Trace-compatible) ---------------------------
    def dimension(self, name: str) -> np.ndarray:
        """One numeric dimension as a float array (NaN for missing values).

        Accepts the same names as :meth:`Trace.dimension` plus the derived
        ``finish_time_s``.
        """
        if name not in NUMERIC_COLUMNS and name not in DERIVED_COLUMNS:
            raise AnalysisError("unknown job dimension: %r" % (name,))
        return self.block.column(name)

    def submit_times(self) -> np.ndarray:
        return self.block.column("submit_time_s")

    def feature_matrix(self) -> np.ndarray:
        """The (n_jobs, 6) k-means feature matrix (missing values as zero)."""
        if len(self) == 0:
            return np.zeros((0, len(NUMERIC_DIMENSIONS)))
        return np.column_stack([
            _nan_to_zero(self.block.column(dim)) for dim in NUMERIC_DIMENSIONS
        ])

    def map_only_mask(self) -> np.ndarray:
        """Boolean mask of jobs with no reduce stage (§4.1 map-only jobs)."""
        shuffle = _nan_to_zero(self.block.column("shuffle_bytes"))
        reduce_s = _nan_to_zero(self.block.column("reduce_task_seconds"))
        return (shuffle == 0.0) & (reduce_s == 0.0)

    # -- reductions (Table 1, without materializing jobs) ------------------
    def bytes_moved(self) -> float:
        return float(self.block.column("total_bytes").sum()) if len(self) else 0.0

    def total_task_seconds(self) -> float:
        return float(self.block.column("total_task_seconds").sum()) if len(self) else 0.0

    def duration_s(self) -> float:
        if len(self) == 0:
            return 0.0
        start = float(self.block.column("submit_time_s")[0])
        end = float(self.block.column("finish_time_s").max())
        return max(0.0, end - start)

    # -- slicing -----------------------------------------------------------
    def select(self, mask: np.ndarray, name: Optional[str] = None) -> "ColumnarTrace":
        """Rows where ``mask`` is true, as a new columnar trace."""
        selected = ColumnarTrace.__new__(ColumnarTrace)
        selected.block = self.block.select(mask)
        selected.name = name or self.name
        selected.machines = self.machines
        return selected

    def time_window(self, start_s: float, end_s: float) -> "ColumnarTrace":
        if end_s < start_s:
            raise AnalysisError("time window end %r precedes start %r" % (end_s, start_s))
        times = self.block.column("submit_time_s")
        return self.select((times >= start_s) & (times < end_s),
                           name="%s[%g:%g]" % (self.name, start_s, end_s))

    # -- chunked iteration (the scan-source protocol) ----------------------
    def iter_chunks(self, columns: Optional[Sequence[str]] = None,
                    chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Iterator[ColumnBlock]:
        """Yield the trace as view-backed blocks of at most ``chunk_rows`` rows."""
        n = len(self)
        source = self.block if columns is None else self.block.project(columns)
        if n == 0:
            yield source
            return
        for start in range(0, n, chunk_rows):
            yield source.slice(start, min(n, start + chunk_rows))

    @property
    def n_chunks(self) -> int:
        return max(1, -(-len(self) // DEFAULT_CHUNK_ROWS))


# ---------------------------------------------------------------------------
# Job <-> column conversion helpers (shared with the chunked store writer)
# ---------------------------------------------------------------------------
def _append_job(buffers: Dict[str, List], job: Job) -> None:
    """Append one job's fields to per-column Python-list buffers."""
    for column in NUMERIC_COLUMNS:
        value = getattr(job, column)
        buffers[column].append(float(value) if value is not None else float("nan"))
    for column in STRING_COLUMNS:
        value = getattr(job, column)
        buffers[column].append(value if value is not None else "")


def _buffers_to_arrays(buffers: Dict[str, List]) -> Dict[str, np.ndarray]:
    """Convert per-column buffers to arrays, dropping all-missing string columns."""
    columns: Dict[str, np.ndarray] = {}
    for column in NUMERIC_COLUMNS:
        columns[column] = np.asarray(buffers[column], dtype=float)
    for column in STRING_COLUMNS:
        values = buffers[column]
        if column == "job_id" or any(values):
            columns[column] = np.asarray(values, dtype=np.str_)
    return columns


def _block_to_jobs(block: ColumnBlock) -> Iterator[Job]:
    """Reconstruct jobs from a block (inverse of :func:`_append_job`)."""
    numeric = {name: block.column(name) for name in NUMERIC_COLUMNS if block.has_column(name)}
    strings = {name: block.column(name) for name in STRING_COLUMNS if block.has_column(name)}
    for row in range(block.n_rows):
        data: Dict[str, object] = {}
        for name, array in numeric.items():
            value = float(array[row])
            if np.isnan(value):
                data[name] = None
            elif name in _INT_COLUMNS:
                data[name] = int(value)
            else:
                data[name] = value
        for name, array in strings.items():
            value = str(array[row])
            data[name] = value if value else None
        yield Job.from_dict(data)
