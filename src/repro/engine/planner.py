"""Cost-aware access-path planning for store queries.

Given a :class:`~repro.engine.operators.Query` against a
:class:`~repro.engine.store.ChunkedTraceStore`, the planner picks — per
predicate, using exact selectivities probed from the
:mod:`~repro.engine.indexes` sidecar — between:

* **metadata**      — answered from the manifest alone (unfiltered counts);
* **index-count**   — answered from one index probe, zero chunks decoded;
* **index-probe**   — exact ``(chunk, row)`` positions gathered from a
  sorted-permutation index; only the chunks holding matches are decoded;
* **index-topk**    — top-k rows read straight off the tail of a sorted
  index, bit-identical (including tie-breaks) to the heap scan;
* **index-skip**    — a normal scan restricted to the chunks an index proves
  can match (tighter than zone maps, which only bound ranges), with LIMIT
  scans truncated as soon as the index proves the result complete;
* **zone-scan / scan** — the existing paths, when no index helps.

Every decision is emitted as an inspectable :class:`Plan` (chosen path,
driver predicate, chunks touched vs total, rows examined) which rides the
:class:`~repro.engine.operators.QueryResult`, the ``engine query --explain``
CLI and the service daemon's query responses.

The planner *never* consults a stale sidecar: staleness is checked against
the store's ``manifest_sequence`` first, and a stale index only downgrades
the plan to the scan path (flagged on the plan so callers can warn) — results
are always computed from live data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .columnar import ColumnBlock
from .indexes import SORTED_PROBE_OPS, InvertedColumnIndex, SortedColumnIndex, cached_indexes
from .operators import Predicate, Query, QueryResult, execute

__all__ = ["Plan", "plan_query", "execute_planned"]

#: When the most selective index still admits at least this fraction of the
#: chunks (and no exact-positions path applies), probing buys nothing the
#: zone maps don't already give — fall through to the plain zone scan.
INDEX_SKIP_MAX_CHUNK_FRACTION = 0.95


@dataclass
class Plan:
    """Inspectable access-path decision; JSON-serializable via :meth:`to_dict`."""

    access_path: str = "scan"
    driver: Optional[str] = None
    index_columns: Tuple[str, ...] = ()
    chunks_total: int = 0
    chunks_planned: Optional[int] = None
    rows_total: int = 0
    rows_planned: Optional[int] = None
    estimated_matches: Optional[int] = None
    used_index: bool = False
    stale_index: bool = False
    reason: str = ""

    def to_dict(self) -> Dict:
        return {
            "access_path": self.access_path,
            "driver": self.driver,
            "index_columns": list(self.index_columns),
            "chunks_total": self.chunks_total,
            "chunks_planned": self.chunks_planned,
            "rows_total": self.rows_total,
            "rows_planned": self.rows_planned,
            "estimated_matches": self.estimated_matches,
            "used_index": self.used_index,
            "stale_index": self.stale_index,
            "reason": self.reason,
        }

    def describe(self) -> str:
        """Multi-line rendering for ``engine query --explain``."""
        chunks = ("%d of %d" % (self.chunks_planned, self.chunks_total)
                  if self.chunks_planned is not None
                  else "up to %d" % (self.chunks_total,))
        rows = ("%d" % (self.rows_planned,) if self.rows_planned is not None
                else "up to %d" % (self.rows_total,))
        lines = [
            "plan: %s" % (self.access_path,),
            "  store: %d chunks / %d rows" % (self.chunks_total, self.rows_total),
            "  chunks to touch: %s" % (chunks,),
            "  rows to examine: %s" % (rows,),
        ]
        if self.driver:
            lines.insert(1, "  driver: %s" % (self.driver,))
        if self.estimated_matches is not None:
            lines.append("  driver matches (exact from index): %d"
                         % (self.estimated_matches,))
        if self.stale_index:
            lines.append("  WARNING: stale index sidecar ignored — rebuild "
                         "with 'engine index build'")
        if self.reason:
            lines.append("  reason: %s" % (self.reason,))
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line rendering for the CLI result footer."""
        parts = [self.access_path]
        if self.driver:
            parts.append("via %s" % (self.driver,))
        if self.chunks_planned is not None:
            parts.append("%d/%d chunks" % (self.chunks_planned, self.chunks_total))
        if self.stale_index:
            parts.append("(stale index ignored)")
        return " ".join(parts)


class _Decision:
    """A plan plus the probe payload needed to execute it without re-probing."""

    __slots__ = ("plan", "mode", "payload")

    def __init__(self, plan: Plan, mode: str, payload: Optional[Dict] = None):
        self.plan = plan
        self.mode = mode  # metadata | index-count | index-probe | index-topk
        #                 # | index-skip | scan
        self.payload = payload or {}


# ---------------------------------------------------------------------------
# Probing helpers
# ---------------------------------------------------------------------------
class _DriverProbe:
    """One predicate resolved against an index: exact counts + chunk density."""

    __slots__ = ("predicate", "index", "exact_positions", "matches",
                 "chunk_counts", "run")

    def __init__(self, predicate: Predicate, index, exact_positions: bool,
                 matches: int, chunk_counts: np.ndarray,
                 run: Optional[Tuple[int, int]] = None):
        self.predicate = predicate
        self.index = index
        #: True when the probe yields exact row positions (sorted index runs).
        self.exact_positions = exact_positions
        self.matches = matches
        self.chunk_counts = chunk_counts
        self.run = run

    def describe(self) -> str:
        pred = self.predicate
        op = "is finite" if pred.op == "finite" else "%s %s" % (pred.op, pred.value)
        return "%s %s [%s index]" % (pred.column, op, self.index.kind)


def _probe_predicate(store, indexes, predicate: Predicate) -> Optional[_DriverProbe]:
    index = indexes.column(predicate.column)
    if index is None:
        return None
    n_chunks = store.n_chunks
    if isinstance(index, SortedColumnIndex):
        if predicate.op == "finite":
            counts = index.chunk_entries.copy()
            return _DriverProbe(predicate, index, False, index.entries, counts)
        run = index.probe(predicate.op, predicate.value)
        if run is None:
            return None
        lo, hi = run
        counts = index.chunk_counts(lo, hi, n_chunks)
        return _DriverProbe(predicate, index, True, hi - lo, counts, run)
    if isinstance(index, InvertedColumnIndex) and predicate.op in ("==", "!="):
        table = store.string_table(predicate.column)
        if table is None:
            return None
        code = table.lookup(str(predicate.value))
        if predicate.op == "==":
            if code is None:  # value not in the store at all: zero matches
                return _DriverProbe(predicate, index, False, 0,
                                    np.zeros(n_chunks, dtype=np.int64))
            counts = index.chunk_counts_code(code, n_chunks)
            return _DriverProbe(predicate, index, False, int(counts.sum()), counts)
        # "!=": a chunk is skippable only when *every* row carries the code.
        if code is None:
            return None  # matches everything; no pruning power
        rows_per_chunk = np.asarray(store.chunk_rows(), dtype=np.int64)
        eq_counts = index.chunk_counts_code(code, n_chunks)
        counts = rows_per_chunk - eq_counts
        return _DriverProbe(predicate, index, False, int(counts.sum()), counts)
    return None


def _zone_admitted(store, predicates: Sequence[Predicate]) -> List[int]:
    """Chunk indices the zone maps admit (what the raw scan would touch)."""
    admitted = []
    for chunk in range(store.n_chunks):
        if all(p.admits_zone(store.chunk_zone(chunk, p.column))
               for p in predicates):
            admitted.append(chunk)
    return admitted


def _count_only(query: Query) -> bool:
    return (bool(query.aggregates) and query.group_column is None
            and query.top_k_column is None
            and all(op == "rows" for _label, op, _column in query.aggregates))


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------
def _decide(store, query: Query, use_index: bool = True) -> _Decision:
    query.validate()
    n_chunks = store.n_chunks
    n_rows = store.n_jobs
    plan = Plan(chunks_total=n_chunks, rows_total=n_rows)

    indexes = cached_indexes(store) if use_index else None
    if indexes is not None and indexes.stale_reason(store) is not None:
        plan.stale_index = True
        indexes = None

    # Unfiltered row counts come straight off the manifest — no chunk decoded.
    if not query.predicates and _count_only(query):
        plan.access_path = "metadata"
        plan.chunks_planned = 0
        plan.rows_planned = 0
        plan.estimated_matches = n_rows
        plan.reason = "unfiltered row count is the manifest's n_jobs"
        return _Decision(plan, "metadata", {"count": n_rows})

    # Top-k with no predicates: read k rows off the tail of the sorted index.
    if (indexes is not None and query.top_k_column is not None
            and not query.predicates):
        index = indexes.column(query.top_k_column)
        if isinstance(index, SortedColumnIndex):
            selection = index.top_entries(query.top_k, query.top_k_largest)
            touched = (int(np.unique(index.chunks[selection]).shape[0])
                       if selection.shape[0] else 0)
            plan.access_path = "index-topk"
            plan.driver = "%s [sorted index tail]" % (query.top_k_column,)
            plan.index_columns = (query.top_k_column,)
            plan.used_index = True
            plan.chunks_planned = touched
            plan.rows_planned = int(selection.shape[0])
            plan.reason = ("top-%d rows read off the sorted index; %d of %d "
                           "chunks hold them" % (query.top_k, touched, n_chunks))
            return _Decision(plan, "index-topk",
                             {"index": index, "selection": selection})

    probes: List[_DriverProbe] = []
    if indexes is not None:
        for predicate in query.predicates:
            probe = _probe_predicate(store, indexes, predicate)
            if probe is not None:
                probes.append(probe)

    if not probes:
        admitted = _zone_admitted(store, query.predicates) if query.predicates \
            else list(range(n_chunks))
        plan.access_path = "zone-scan" if len(admitted) < n_chunks else "scan"
        plan.chunks_planned = len(admitted)
        plan.rows_planned = int(sum(store.chunk_rows()[c] for c in admitted))
        plan.reason = ("no index sidecar" if indexes is None and use_index
                       else "no indexed predicate") if query.predicates else \
            "unfiltered scan touches every chunk"
        if not use_index:
            plan.reason = "index use disabled"
        return _Decision(plan, "scan", {})

    driver = min(probes, key=lambda probe: probe.matches)
    plan.driver = driver.describe()
    plan.index_columns = tuple(sorted({p.predicate.column for p in probes}))
    plan.estimated_matches = driver.matches

    # Exact-count shortcut: one predicate, count-only aggregates.  Every
    # probe kind yields an *exact* match count (sorted runs, inverted
    # postings, finite-entry totals), so no chunk needs decoding.
    if _count_only(query) and len(query.predicates) == 1:
        plan.access_path = "index-count"
        plan.used_index = True
        plan.chunks_planned = 0
        plan.rows_planned = 0
        plan.reason = "count answered from the index probe; no chunk decoded"
        return _Decision(plan, "index-count", {"count": driver.matches})

    # Exact-positions collect: one sorted-index predicate, row collection.
    if (driver.exact_positions and len(query.predicates) == 1
            and query.top_k_column is None and not query.aggregates):
        lo, hi = driver.run
        chunks, rows = driver.index.positions(lo, hi)
        order = np.lexsort((rows, chunks))  # store order for bit-identity
        chunks, rows = chunks[order], rows[order]
        if query.row_limit is not None:
            chunks, rows = chunks[:query.row_limit], rows[:query.row_limit]
        touched = int(np.unique(chunks).shape[0])
        plan.access_path = "index-probe"
        plan.used_index = True
        plan.chunks_planned = touched
        plan.rows_planned = int(chunks.shape[0])
        plan.reason = ("single indexed predicate resolves to exact row "
                       "positions; %d of %d chunks decoded"
                       % (touched, n_chunks))
        return _Decision(plan, "index-probe", {"chunks": chunks, "rows": rows})

    # General case: intersect every indexed predicate's chunk admission (and
    # let the zone maps prune further inside the scan).
    admit_mask = np.ones(n_chunks, dtype=bool)
    for probe in probes:
        admit_mask &= probe.chunk_counts > 0
    admitted = np.flatnonzero(admit_mask)

    # LIMIT early termination: with a single exact-count driver predicate,
    # the scan is provably complete once the cumulative index counts reach
    # the limit — later chunks need not even be considered.
    limited_note = ""
    if (query.row_limit is not None and len(query.predicates) == 1
            and not query.aggregates and query.top_k_column is None
            and admitted.shape[0]):
        cumulative = np.cumsum(driver.chunk_counts[admitted])
        enough = int(np.searchsorted(cumulative, query.row_limit)) + 1
        if enough < admitted.shape[0]:
            admitted = admitted[:enough]
            limited_note = ("; truncated to %d chunks — index counts prove "
                            "the LIMIT fills there" % (enough,))

    chunk_rows = store.chunk_rows()
    selectivity = (float(admitted.shape[0]) / n_chunks) if n_chunks else 0.0
    if selectivity >= INDEX_SKIP_MAX_CHUNK_FRACTION and not limited_note:
        zone_chunks = _zone_admitted(store, query.predicates)
        plan.access_path = "zone-scan" if len(zone_chunks) < n_chunks else "scan"
        plan.chunks_planned = len(zone_chunks)
        plan.rows_planned = int(sum(chunk_rows[c] for c in zone_chunks))
        plan.reason = ("index admits %d%% of chunks — no better than the "
                       "zone maps, scanning" % (round(100 * selectivity),))
        return _Decision(plan, "scan", {})

    plan.access_path = "index-skip"
    plan.used_index = True
    plan.chunks_planned = int(admitted.shape[0])
    plan.rows_planned = int(sum(chunk_rows[c] for c in admitted))
    plan.reason = ("index proves only %d of %d chunks can match%s"
                   % (admitted.shape[0], n_chunks, limited_note))
    return _Decision(plan, "index-skip", {"chunk_indices": admitted.tolist()})


def plan_query(store, query: Query, use_index: bool = True) -> Plan:
    """Plan without executing (``engine query --explain``)."""
    return _decide(store, query, use_index=use_index).plan


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
def execute_planned(store, query: Query, use_index: bool = True) -> QueryResult:
    """Plan ``query`` against ``store``, run the chosen path, attach the plan."""
    decision = _decide(store, query, use_index=use_index)
    mode, payload, plan = decision.mode, decision.payload, decision.plan

    if mode in ("metadata", "index-count"):
        result = QueryResult()
        result.aggregates = {label: int(payload["count"])
                             for label, _op, _column in query.aggregates}
        result.rows_matched = int(payload["count"])
        result.chunks_skipped = store.n_chunks
    elif mode == "index-probe":
        result = _gather_positions(store, query, payload["chunks"], payload["rows"])
    elif mode == "index-topk":
        result = _gather_top_k(store, query, payload["index"], payload["selection"])
    elif mode == "index-skip":
        result = execute(store, query, chunk_indices=payload["chunk_indices"],
                         use_planner=False)
        result.chunks_skipped += store.n_chunks - len(payload["chunk_indices"])
    else:
        result = execute(store, query, use_planner=False)

    result.plan = plan
    return result


def _gather_positions(store, query: Query, chunks: np.ndarray,
                      rows: np.ndarray) -> QueryResult:
    """Materialize exact (chunk, row) positions, already in store order."""
    result = QueryResult()
    result.chunks_skipped = store.n_chunks
    columns = query.required_columns()
    collected: List[ColumnBlock] = []
    if chunks.shape[0]:
        unique_chunks = np.unique(chunks)
        boundaries = np.searchsorted(chunks, unique_chunks, side="left")
        boundaries = np.append(boundaries, chunks.shape[0])
        for position, chunk in enumerate(unique_chunks):
            block = store.read_chunk(int(chunk), columns=columns)
            taken = block.take(rows[boundaries[position]:boundaries[position + 1]])
            if query.projection:
                taken = taken.project(query.projection)
            collected.append(taken)
            result.chunks_scanned += 1
            result.chunks_skipped -= 1
            result.rows_scanned += taken.n_rows
            result.rows_matched += taken.n_rows
    result.rows = ColumnBlock.concat(collected) if collected else ColumnBlock({})
    return result


def _gather_top_k(store, query: Query, index: SortedColumnIndex,
                  selection: np.ndarray) -> QueryResult:
    """Assemble top-k rows in ranked order from their index coordinates."""
    result = QueryResult()
    result.chunks_skipped = store.n_chunks
    if selection.shape[0] == 0:
        result.rows = ColumnBlock({})
        return result
    values = index.values[selection]
    chunks = index.chunks[selection]
    rows = index.rows[selection]
    # Rank exactly like the heap scan: by value (desc for largest), ties by
    # store position ascending.
    position = chunks.astype(np.int64) * (np.int64(1) << 32) + rows.astype(np.int64)
    keys = -values if query.top_k_largest else values
    order = np.lexsort((position, keys))
    chunks, rows = chunks[order], rows[order]
    columns = query.required_columns()
    cache: Dict[int, ColumnBlock] = {}
    for chunk in np.unique(chunks):
        cache[int(chunk)] = store.read_chunk(int(chunk), columns=columns)
        result.chunks_scanned += 1
        result.chunks_skipped -= 1
    pieces = [cache[int(chunk)].slice(int(row), int(row) + 1)
              for chunk, row in zip(chunks, rows)]
    merged = ColumnBlock.concat(pieces)
    if query.projection:
        merged = merged.project(query.projection)
    result.rows = merged
    result.rows_scanned = int(selection.shape[0])
    result.rows_matched = int(selection.shape[0])
    return result
