"""Shared-scan execution pipeline: one decoded pass for many analyses.

The characterization suite is a *batch* of analyses over the same trace —
exactly the shape the source paper ascribes to MapReduce workloads themselves
(many jobs scanning shared data).  Running each analysis as its own scan
re-reads and re-decodes every chunk once per analysis; :class:`ScanPipeline`
instead registers every analysis as a **chunk consumer**, decodes each chunk
exactly once, and pushes the shared :class:`~repro.engine.columnar.ColumnBlock`
through all of them (classic multi-query scan sharing).

A consumer (see :class:`ChunkConsumer`) declares the columns it needs and
three pure operations::

    make_state()           -> fresh fold state
    fold(state, chunk)     -> state   # one decoded chunk
    merge(a, b)            -> state   # partials from disjoint chunk ranges
    finalize(state)        -> result

The pipeline computes the union of all declared columns, so each stored
column is decoded at most once per chunk.  With a
:class:`~repro.engine.parallel.ParallelExecutor`, chunks fan out across
worker processes in contiguous ranges (each worker opens the store once and
keeps the handle); per-worker partial states are merged in chunk order at the
end.  Consumers whose fold is order-sensitive declare ``ordered=True`` and
run in a single sequential lane that sees every chunk in submit-time order —
in-process during a serial run, as one dedicated worker task during a
parallel run (format-v2 stores mmap their columns, so the ordered lane's
reads share pages with the fanned-out lanes instead of re-decoding).

``AnalysisError`` raised by one consumer (e.g. "trace records no job names")
is isolated: the failing consumer is dropped from the rest of the scan and
its error is reported per-consumer in the :class:`PipelineResult`, while all
other consumers complete normally — mirroring how the paper omits a workload
from individual figures when a dimension is missing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from .aggregates import MaxState, MinState, SumState
from .columnar import ColumnBlock, ColumnarTrace
from .source import TraceSource

__all__ = ["ScanChunk", "ChunkConsumer", "PipelineResult", "ScanPipeline",
           "SummaryConsumer", "GatherConsumer", "fold_consumer"]


class ScanChunk:
    """One decoded chunk as seen by consumers: a block plus its position.

    Attributes:
        block: the decoded :class:`ColumnBlock` (shared by every consumer).
        index: chunk index within the scan (0-based).
        start_row: global row offset of the chunk's first row — what
            row-addressed consumers (:class:`GatherConsumer`) key on.
    """

    __slots__ = ("block", "index", "start_row", "_unique_cache")

    def __init__(self, block: ColumnBlock, index: int, start_row: int):
        self.block = block
        self.index = index
        self.start_row = start_row
        self._unique_cache: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}

    @property
    def n_rows(self) -> int:
        return self.block.n_rows

    def column(self, name: str) -> np.ndarray:
        return self.block.column(name)

    def unique(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """``np.unique(column, return_inverse=True)``, cached per chunk.

        Group-shaped folds over string columns (path statistics, re-access
        codes, naming) all start from the same unique/inverse decomposition;
        caching it on the shared chunk means the string sort happens once per
        chunk per column no matter how many consumers ask — the same sharing
        argument as decoding itself.
        """
        cached = self._unique_cache.get(name)
        if cached is None:
            values, inverse = np.unique(self.column(name), return_inverse=True)
            cached = self._unique_cache[name] = (values, inverse.ravel())
        return cached


class ChunkConsumer:
    """Base class for shared-scan consumers (the fold/merge contract).

    Subclasses set :attr:`name` (unique within a pipeline), :attr:`columns`
    (the stored/derived columns their fold touches) and, when their fold
    depends on rows arriving in submit-time order, ``ordered = True``.
    ``merge`` is only called for unordered consumers (ordered ones run in one
    sequential lane and never produce partials).
    """

    #: Result key within the pipeline; subclasses override (often per-instance).
    name: str = "consumer"
    #: Columns the fold reads; the pipeline decodes the union over consumers.
    #: ``None`` means "every stored column" (e.g. a row gather).
    columns: Optional[Tuple[str, ...]] = ()
    #: True when fold correctness depends on submit-time chunk order.
    ordered: bool = False

    def make_state(self):
        raise NotImplementedError

    def fold(self, state, chunk: ScanChunk):
        raise NotImplementedError

    def merge(self, a, b):
        raise AnalysisError("consumer %r does not support merging partial states"
                            % (self.name,))

    def finalize(self, state):
        return state


class PipelineResult:
    """Per-consumer results of one shared scan.

    Attributes:
        results: consumer name -> finalized result, for consumers that ran to
            completion.
        errors: consumer name -> the :class:`AnalysisError` that removed the
            consumer from the scan (missing columns, unsorted store, ...).
        chunks_scanned / rows_scanned: scan counters (the decoded pass).
    """

    def __init__(self):
        self.results: Dict[str, object] = {}
        self.errors: Dict[str, AnalysisError] = {}
        self.chunks_scanned = 0
        self.rows_scanned = 0

    def value(self, name: str):
        """The result of one consumer; re-raises its recorded error."""
        if name in self.errors:
            raise self.errors[name]
        if name not in self.results:
            raise AnalysisError("pipeline has no consumer %r (have %s)"
                                % (name, sorted(self.results) + sorted(self.errors)))
        return self.results[name]

    def get(self, name: str, default=None):
        """The result of one consumer, or ``default`` if it errored/is absent."""
        return self.results.get(name, default)


_UNSORTED_MESSAGE = (
    "source %r is not sorted by submit time; rewrite the store from a "
    "Trace/ColumnarTrace (or a sorted job iterable) before running "
    "order-sensitive analyses")


class _OrderCheck:
    """Verifies non-decreasing submit times as chunks stream."""

    __slots__ = ("previous_end", "source_name")

    def __init__(self, source_name: str):
        self.previous_end = -np.inf
        self.source_name = source_name

    def check(self, block: ColumnBlock) -> None:
        if block.n_rows == 0:
            return
        times = block.column("submit_time_s")
        if times[0] < self.previous_end or np.any(times[:-1] > times[1:]):
            raise AnalysisError(_UNSORTED_MESSAGE % (self.source_name,))
        self.previous_end = float(times[-1])


def _fold_lane(source_name: str, blocks, consumers: List[ChunkConsumer],
               states: Dict[str, object], errors: Dict[str, AnalysisError],
               check_order: bool, counters: Optional[Dict[str, int]] = None) -> None:
    """Fold a stream of :class:`ScanChunk` through one lane of consumers.

    ``consumers``/``states`` are mutated in place: a consumer whose fold
    raises :class:`AnalysisError` is dropped and its error recorded.  An
    order violation (``check_order``) drops every ordered consumer in the
    lane the same way.
    """
    order = _OrderCheck(source_name) if check_order else None
    for chunk in blocks:
        if counters is not None:
            counters["chunks"] += 1
            counters["rows"] += chunk.n_rows
        if chunk.n_rows == 0:
            continue
        if order is not None:
            try:
                order.check(chunk.block)
            except AnalysisError as exc:
                for consumer in [c for c in consumers if c.ordered]:
                    errors[consumer.name] = exc
                    states.pop(consumer.name, None)
                    consumers.remove(consumer)
                order = None
        for consumer in list(consumers):
            try:
                states[consumer.name] = consumer.fold(states[consumer.name], chunk)
            except AnalysisError as exc:
                errors[consumer.name] = exc
                states.pop(consumer.name, None)
                consumers.remove(consumer)
        if not consumers:
            break


def _scan_worker(task):
    """Worker-side lane fold for the parallel pipeline.

    Runs in a pool whose initializer opened the store once per worker (see
    :func:`repro.engine.parallel.get_worker_store`); only the consumers,
    chunk indices and row offsets cross the process boundary.  Returns
    ``(states, errors, rows)`` with unordered partials left unfinalized so
    the parent can merge them exactly.
    """
    from .parallel import get_worker_store

    consumers, chunk_indices, start_rows, columns, check_order = task
    store = get_worker_store()
    states = {consumer.name: consumer.make_state() for consumer in consumers}
    errors: Dict[str, AnalysisError] = {}
    counters = {"chunks": 0, "rows": 0}
    blocks = (
        ScanChunk(store.read_chunk(index, columns=columns), index, start)
        for index, start in zip(chunk_indices, start_rows))
    _fold_lane(store.name, blocks, list(consumers), states, errors,
               check_order, counters)
    return states, errors, counters["rows"]


class ScanPipeline:
    """Shared-scan runner: register consumers, then :meth:`run` one pass.

    Args:
        source: any :class:`TraceSource`-wrappable trace representation.
        executor: optional :class:`~repro.engine.parallel.ParallelExecutor`;
            with more than one effective worker and a store-backed source the
            chunk fan-out runs across processes.  Serial otherwise, with
            results identical up to floating-point merge order.
    """

    def __init__(self, source, executor=None):
        self.source = TraceSource.wrap(source)
        self.executor = executor
        self._consumers: List[ChunkConsumer] = []

    def add(self, consumer: ChunkConsumer) -> ChunkConsumer:
        """Register a consumer; returns it (for call-site chaining)."""
        if any(existing.name == consumer.name for existing in self._consumers):
            raise AnalysisError("duplicate pipeline consumer name %r" % (consumer.name,))
        self._consumers.append(consumer)
        return consumer

    @property
    def consumers(self) -> List[ChunkConsumer]:
        return list(self._consumers)

    def columns(self, consumers: Optional[Sequence[ChunkConsumer]] = None) -> Optional[List[str]]:
        """Union of the declared column sets (the decoded-once set).

        ``None`` when any consumer asks for every stored column.
        """
        union: List[str] = []
        chosen = self._consumers if consumers is None else consumers
        for consumer in chosen:
            if consumer.columns is None:
                return None
            for column in consumer.columns:
                if column not in union:
                    union.append(column)
        if any(consumer.ordered for consumer in chosen) and "submit_time_s" not in union:
            union.append("submit_time_s")
        return union

    # -- execution ---------------------------------------------------------
    def run(self) -> PipelineResult:
        """Execute the shared scan and finalize every consumer."""
        result = PipelineResult()
        runnable: List[ChunkConsumer] = []
        for consumer in self._consumers:
            missing = [column for column in (consumer.columns or ())
                       if not self.source.has_column(column)]
            if missing:
                result.errors[consumer.name] = AnalysisError(
                    "source %r records no column %s (needed by %r)"
                    % (self.source.name, ", ".join(sorted(missing)), consumer.name))
            else:
                runnable.append(consumer)
        if not runnable:
            return result

        states: Dict[str, object] = {}
        if self._parallel_plan_applies(runnable):
            self._run_parallel(runnable, states, result)
        else:
            self._run_serial(runnable, states, result)

        for consumer in self._consumers:
            if consumer.name not in states:
                continue
            try:
                result.results[consumer.name] = consumer.finalize(states[consumer.name])
            except AnalysisError as exc:
                result.errors[consumer.name] = exc
        return result

    def _run_serial(self, runnable: List[ChunkConsumer], states: Dict[str, object],
                    result: PipelineResult) -> None:
        lane = list(runnable)
        for consumer in lane:
            states[consumer.name] = consumer.make_state()
        check_order = any(consumer.ordered for consumer in lane)
        counters = {"chunks": 0, "rows": 0}
        start_row = 0
        index = 0

        def chunks():
            nonlocal start_row, index
            for block in self.source.iter_chunks(columns=self.columns(lane)):
                yield ScanChunk(block, index, start_row)
                start_row += block.n_rows
                index += 1

        _fold_lane(self.source.name, chunks(), lane, states, result.errors,
                   check_order, counters)
        result.chunks_scanned = counters["chunks"]
        result.rows_scanned = counters["rows"]

    def _parallel_plan_applies(self, runnable: List[ChunkConsumer]) -> bool:
        if self.executor is None or not self.source.is_streaming:
            return False
        store = self.source.backing
        n_workers = self.executor.effective_workers(store.n_chunks)
        return n_workers > 1 and store.n_chunks > 1

    def _run_parallel(self, runnable: List[ChunkConsumer], states: Dict[str, object],
                      result: PipelineResult) -> None:
        store = self.source.backing
        chunk_rows = store.chunk_rows()
        offsets = np.concatenate(([0], np.cumsum(chunk_rows)))[:-1].tolist()
        n_chunks = store.n_chunks

        ordered = [consumer for consumer in runnable if consumer.ordered]
        unordered = [consumer for consumer in runnable if not consumer.ordered]

        tasks = []
        if ordered:
            # One sequential lane sees every chunk in submit-time order.
            tasks.append((ordered, list(range(n_chunks)), offsets,
                          self.columns(ordered), True))
        range_tasks = 0
        if unordered:
            n_workers = self.executor.effective_workers(n_chunks)
            per_worker = -(-n_chunks // n_workers)
            columns = self.columns(unordered)
            for start in range(0, n_chunks, per_worker):
                indices = list(range(start, min(n_chunks, start + per_worker)))
                tasks.append((unordered, indices, [offsets[i] for i in indices],
                              columns, False))
                range_tasks += 1

        partials = self.executor.map(_scan_worker, tasks,
                                     store_directory=store.directory)

        range_partials = partials[len(partials) - range_tasks:]
        if ordered:
            lane_states, lane_errors, _rows = partials[0]
            states.update(lane_states)
            result.errors.update(lane_errors)
        for consumer in unordered:
            merged = None
            error: Optional[AnalysisError] = None
            for lane_states, lane_errors, _rows in range_partials:
                if consumer.name in lane_errors:
                    error = error or lane_errors[consumer.name]
                elif error is None:
                    partial = lane_states[consumer.name]
                    merged = partial if merged is None else consumer.merge(merged, partial)
            if error is not None:
                result.errors[consumer.name] = error
            else:
                states[consumer.name] = merged
        result.chunks_scanned = n_chunks
        result.rows_scanned = sum(rows for _states, _errors, rows in range_partials) \
            if range_tasks else (partials[0][2] if partials else 0)


def fold_consumer(source, consumer: ChunkConsumer, executor=None):
    """Run one consumer as its own (degenerate) shared scan.

    This is how the standalone per-analysis entry points execute their folds,
    so a standalone result and the same consumer's result inside a many-
    consumer pipeline come from literally the same code path.  Re-raises the
    consumer's recorded :class:`AnalysisError`, if any.
    """
    pipeline = ScanPipeline(source, executor=executor)
    pipeline.add(consumer)
    return pipeline.run().value(consumer.name)


# ---------------------------------------------------------------------------
# Generic consumers
# ---------------------------------------------------------------------------
class SummaryConsumer(ChunkConsumer):
    """Table-1 summary fold: count, time bounds, byte/task-second totals.

    Folds the exact quantities of :meth:`TraceSource.summary` with the same
    mergeable aggregate states the engine query path uses, so the read-outs
    are identical to the per-analysis scan.
    """

    columns = ("submit_time_s", "finish_time_s", "total_bytes", "total_task_seconds")

    def __init__(self, name: str = "summary", trace_name: str = "trace",
                 machines: Optional[int] = None):
        self.name = name
        self.trace_name = trace_name
        self.machines = machines

    def make_state(self):
        return {"n_jobs": 0, "start": MinState(), "end": MaxState(),
                "bytes": SumState(), "task_seconds": SumState()}

    def fold(self, state, chunk: ScanChunk):
        state["n_jobs"] += chunk.n_rows
        state["start"].update(chunk.column("submit_time_s"))
        state["end"].update(chunk.column("finish_time_s"))
        state["bytes"].update(chunk.column("total_bytes"))
        state["task_seconds"].update(chunk.column("total_task_seconds"))
        return state

    def merge(self, a, b):
        a["n_jobs"] += b["n_jobs"]
        for key in ("start", "end", "bytes", "task_seconds"):
            a[key].merge(b[key])
        return a

    def finalize(self, state):
        from ..traces.trace import TraceSummary

        if state["n_jobs"] == 0:
            return TraceSummary(name=self.trace_name, machines=self.machines,
                                length_s=0.0, start_s=0.0, end_s=0.0, n_jobs=0,
                                bytes_moved=0.0, total_task_seconds=0.0)
        start = float(state["start"].result() or 0.0)
        end = float(state["end"].result() or 0.0)
        return TraceSummary(
            name=self.trace_name,
            machines=self.machines,
            length_s=end - start,
            start_s=start,
            end_s=end,
            n_jobs=int(state["n_jobs"]),
            bytes_moved=float(state["bytes"].result()),
            total_task_seconds=float(state["task_seconds"].result()),
        )


class GatherConsumer(ChunkConsumer):
    """Collect the rows at sorted global indices (the Table-2 subsample).

    The shared-scan equivalent of :meth:`TraceSource.gather`: each chunk
    contributes the selected rows inside its global row range; partials are
    re-assembled in chunk order, so the gathered :class:`ColumnarTrace` is
    identical to a standalone gather for every chunking and worker count.
    """

    def __init__(self, indices: Sequence[int], name: str = "gather",
                 trace_name: str = "trace", machines: Optional[int] = None,
                 columns: Optional[Tuple[str, ...]] = None):
        self.name = name
        self.trace_name = trace_name
        self.machines = machines
        self.columns = columns
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indices.size and np.any(self.indices[:-1] > self.indices[1:]):
            raise AnalysisError("gather expects sorted indices")

    def make_state(self):
        return {"picked": [], "rows_seen_past": 0}

    def fold(self, state, chunk: ScanChunk):
        end = chunk.start_row + chunk.n_rows
        lo = int(np.searchsorted(self.indices, chunk.start_row, side="left"))
        hi = int(np.searchsorted(self.indices, end, side="left"))
        if hi > lo:
            local = self.indices[lo:hi] - chunk.start_row
            state["picked"].append((chunk.index, chunk.block.take(local)))
        state["rows_seen_past"] = max(state["rows_seen_past"], end)
        return state

    def merge(self, a, b):
        a["picked"].extend(b["picked"])
        a["rows_seen_past"] = max(a["rows_seen_past"], b["rows_seen_past"])
        return a

    def finalize(self, state):
        total_rows = state["rows_seen_past"]
        if self.indices.size and int(self.indices[-1]) >= total_rows:
            raise AnalysisError("gather index %d out of range (%d rows)"
                                % (int(self.indices[-1]), total_rows))
        blocks = [block for _index, block in sorted(state["picked"], key=lambda p: p[0])]
        gathered = ColumnarTrace.__new__(ColumnarTrace)
        gathered.block = ColumnBlock.concat(blocks) if blocks else ColumnBlock({})
        gathered.name = self.trace_name
        gathered.machines = self.machines
        return gathered
