"""Shared-scan execution pipeline: one decoded pass for many analyses.

The characterization suite is a *batch* of analyses over the same trace —
exactly the shape the source paper ascribes to MapReduce workloads themselves
(many jobs scanning shared data).  Running each analysis as its own scan
re-reads and re-decodes every chunk once per analysis; :class:`ScanPipeline`
instead registers every analysis as a **chunk consumer**, decodes each chunk
exactly once, and pushes the shared :class:`~repro.engine.columnar.ColumnBlock`
through all of them (classic multi-query scan sharing).

A consumer (see :class:`ChunkConsumer`) declares the columns it needs and
three pure operations::

    make_state()           -> fresh fold state
    fold(state, chunk)     -> state   # one decoded chunk
    merge(a, b)            -> state   # partials from disjoint chunk ranges
    finalize(state)        -> result

The pipeline computes the union of all declared columns, so each stored
column is decoded at most once per chunk.  With a
:class:`~repro.engine.parallel.ParallelExecutor`, chunks fan out across
worker processes in contiguous ranges (each worker opens the store once and
keeps the handle); per-worker partial states are merged in chunk order at the
end.  Consumers whose fold is order-sensitive declare ``ordered=True`` and
run in a single sequential lane that sees every chunk in submit-time order —
in-process during a serial run, as one dedicated worker task during a
parallel run (format-v2 stores mmap their columns, so the ordered lane's
reads share pages with the fanned-out lanes instead of re-decoding).

``AnalysisError`` raised by one consumer (e.g. "trace records no job names")
is isolated: the failing consumer is dropped from the rest of the scan and
its error is reported per-consumer in the :class:`PipelineResult`, while all
other consumers complete normally — mirroring how the paper omits a workload
from individual figures when a dimension is missing.

**Checkpoint / resume.**  Consumers whose fold state is serializable declare
``resumable = True`` and implement ``snapshot(state)`` / ``restore(payload)``
— the capability flag that lets :class:`Checkpoint` persist a scan's fold
states next to the store (JSON for scalars and dictionaries, ``.npz`` for
arrays) together with the **chunk watermark** (how many chunks the states
cover).  After appending chunks to the store, ``run(start_chunk=W,
initial_states=...)`` folds only the new chunks into the restored states;
because the restored state is exactly the state the cold scan had after chunk
``W-1``, the incremental result is bit-identical to a cold full rescan.
Ordered consumers additionally need the appended data to *follow* the old
data in submit time (the store's ``sorted_by_submit_time`` flag survives the
append); otherwise they must fall back to a full rescan.  Consumers that
cannot resume at all keep the default ``resumable = False`` — e.g.
:class:`GatherConsumer`, whose row sample is defined over the total row
count and therefore changes whenever the store grows.
"""

from __future__ import annotations

import json
import os
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from .aggregates import MaxState, MinState, SumState
from .columnar import ColumnBlock, ColumnarTrace
from .source import TraceSource

__all__ = ["ScanChunk", "ChunkConsumer", "PipelineResult", "ScanPipeline",
           "Checkpoint", "SummaryConsumer", "GatherConsumer", "fold_consumer",
           "find_store_checkpoints"]


class ScanChunk:
    """One decoded chunk as seen by consumers: a block plus its position.

    Attributes:
        block: the decoded :class:`ColumnBlock` (shared by every consumer).
        index: chunk index within the scan (0-based).
        start_row: global row offset of the chunk's first row — what
            row-addressed consumers (:class:`GatherConsumer`) key on.
    """

    __slots__ = ("block", "index", "start_row", "_unique_cache")

    def __init__(self, block: ColumnBlock, index: int, start_row: int):
        self.block = block
        self.index = index
        self.start_row = start_row
        self._unique_cache: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}

    @property
    def n_rows(self) -> int:
        return self.block.n_rows

    def column(self, name: str) -> np.ndarray:
        return self.block.column(name)

    def recorded_mask(self, name: str) -> np.ndarray:
        """True where the value is recorded; code-native on v3 dict columns."""
        return self.block.recorded_mask(name)

    def unique(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """``np.unique(column, return_inverse=True)``, cached per chunk.

        Group-shaped folds over string columns (path statistics, re-access
        codes, naming) all start from the same unique/inverse decomposition;
        caching it on the shared chunk means the string sort happens once per
        chunk per column no matter how many consumers ask — the same sharing
        argument as decoding itself.

        On a dictionary-encoded column (format v3) this is **code-native**:
        the heavy ``np.unique`` runs over the chunk's ``uint32`` codes (an
        integer sort), only the chunk's *distinct* values are decoded, and a
        small permutation restores lexicographic order — bit-identical output
        to the string path without ever materializing the per-row strings.
        """
        cached = self._unique_cache.get(name)
        if cached is not None:
            return cached
        pair = self.block.codes_for(name)
        if pair is not None:
            codes, table = pair
            unique_codes, inverse = np.unique(codes, return_inverse=True)
            values = table.decode(unique_codes)
            # Codes are in first-appearance order; consumers rely on
            # np.unique's sorted-values contract (e.g. the "" sentinel
            # landing at index 0), so remap through the sort permutation.
            order = np.argsort(values, kind="stable")
            values = values[order]
            rank = np.empty(order.size, dtype=np.int64)
            rank[order] = np.arange(order.size)
            inverse = rank[inverse.ravel()]
            cached = self._unique_cache[name] = (values, inverse)
            return cached
        values, inverse = np.unique(self.column(name), return_inverse=True)
        cached = self._unique_cache[name] = (values, inverse.ravel())
        return cached

    def value_counts(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct values of ``name`` in this chunk with their row counts.

        Rides :meth:`unique`, so on dictionary columns the count is a
        ``bincount`` over integer codes — no string materialization.
        """
        values, inverse = self.unique(name)
        return values, np.bincount(inverse, minlength=values.shape[0])


class ChunkConsumer:
    """Base class for shared-scan consumers (the fold/merge contract).

    Subclasses set :attr:`name` (unique within a pipeline), :attr:`columns`
    (the stored/derived columns their fold touches) and, when their fold
    depends on rows arriving in submit-time order, ``ordered = True``.
    ``merge`` is only called for unordered consumers (ordered ones run in one
    sequential lane and never produce partials).
    """

    #: Result key within the pipeline; subclasses override (often per-instance).
    name: str = "consumer"
    #: Columns the fold reads; the pipeline decodes the union over consumers.
    #: ``None`` means "every stored column" (e.g. a row gather).
    columns: Optional[Tuple[str, ...]] = ()
    #: True when fold correctness depends on submit-time chunk order.
    ordered: bool = False
    #: Capability flag: True when :meth:`snapshot`/:meth:`restore` are
    #: implemented, i.e. the fold state can be checkpointed and the scan
    #: resumed over appended chunks only.  Consumers whose result depends on
    #: the *total* row count (row sampling) stay False and fall back to a
    #: full rescan.
    resumable: bool = False

    def make_state(self):
        raise NotImplementedError

    def fold(self, state, chunk: ScanChunk):
        raise NotImplementedError

    def merge(self, a, b):
        raise AnalysisError("consumer %r does not support merging partial states"
                            % (self.name,))

    def finalize(self, state):
        return state

    # -- checkpoint capability (resumable consumers override both) ----------
    def snapshot(self, state) -> Dict[str, object]:
        """Serialize a fold state into a flat payload dictionary.

        Values must be JSON-representable scalars/lists/dicts or NumPy
        arrays; :class:`Checkpoint` routes arrays into the ``.npz`` side car
        and everything else into the JSON file.  ``restore(snapshot(state))``
        must reproduce the state *exactly* — the incremental == full-rescan
        equality contract depends on it.
        """
        raise AnalysisError("consumer %r does not support state snapshots"
                            % (self.name,))

    def restore(self, payload: Dict[str, object]):
        """Rebuild a fold state from a :meth:`snapshot` payload."""
        raise AnalysisError("consumer %r does not support state snapshots"
                            % (self.name,))


class PipelineResult:
    """Per-consumer results of one shared scan.

    Attributes:
        results: consumer name -> finalized result, for consumers that ran to
            completion.
        errors: consumer name -> the :class:`AnalysisError` that removed the
            consumer from the scan (missing columns, unsorted store, ...).
        chunks_scanned / rows_scanned: scan counters (the decoded pass).
        final_states: consumer name -> the *unfinalized* fold state after the
            scan — what :meth:`Checkpoint.capture` snapshots.
    """

    def __init__(self):
        self.results: Dict[str, object] = {}
        self.errors: Dict[str, AnalysisError] = {}
        self.chunks_scanned = 0
        self.rows_scanned = 0
        self.final_states: Dict[str, object] = {}

    def value(self, name: str):
        """The result of one consumer; re-raises its recorded error."""
        if name in self.errors:
            raise self.errors[name]
        if name not in self.results:
            raise AnalysisError("pipeline has no consumer %r (have %s)"
                                % (name, sorted(self.results) + sorted(self.errors)))
        return self.results[name]

    def get(self, name: str, default=None):
        """The result of one consumer, or ``default`` if it errored/is absent."""
        return self.results.get(name, default)


_UNSORTED_MESSAGE = (
    "source %r is not sorted by submit time; rewrite the store from a "
    "Trace/ColumnarTrace (or a sorted job iterable) before running "
    "order-sensitive analyses")


class _OrderCheck:
    """Verifies non-decreasing submit times as chunks stream.

    ``floor`` seeds the check when resuming: the last submit time the
    checkpointed prefix saw, so an appended chunk that dips below it is
    caught exactly like an out-of-order chunk in a cold scan.
    """

    __slots__ = ("previous_end", "source_name")

    def __init__(self, source_name: str, floor: float = -np.inf):
        self.previous_end = floor
        self.source_name = source_name

    def check(self, block: ColumnBlock) -> None:
        if block.n_rows == 0:
            return
        times = block.column("submit_time_s")
        if times[0] < self.previous_end or np.any(times[:-1] > times[1:]):
            raise AnalysisError(_UNSORTED_MESSAGE % (self.source_name,))
        self.previous_end = float(times[-1])


def _fold_lane(source_name: str, blocks, consumers: List[ChunkConsumer],
               states: Dict[str, object], errors: Dict[str, AnalysisError],
               check_order: bool, counters: Optional[Dict[str, int]] = None,
               order_floor: float = -np.inf) -> None:
    """Fold a stream of :class:`ScanChunk` through one lane of consumers.

    ``consumers``/``states`` are mutated in place: a consumer whose fold
    raises :class:`AnalysisError` is dropped and its error recorded.  An
    order violation (``check_order``) drops every ordered consumer in the
    lane the same way.
    """
    order = _OrderCheck(source_name, floor=order_floor) if check_order else None
    for chunk in blocks:
        if counters is not None:
            counters["chunks"] += 1
            counters["rows"] += chunk.n_rows
        if chunk.n_rows == 0:
            continue
        if order is not None:
            try:
                order.check(chunk.block)
            except AnalysisError as exc:
                for consumer in [c for c in consumers if c.ordered]:
                    errors[consumer.name] = exc
                    states.pop(consumer.name, None)
                    consumers.remove(consumer)
                order = None
        for consumer in list(consumers):
            try:
                states[consumer.name] = consumer.fold(states[consumer.name], chunk)
            except AnalysisError as exc:
                errors[consumer.name] = exc
                states.pop(consumer.name, None)
                consumers.remove(consumer)
        if not consumers:
            break


def _scan_worker(task):
    """Worker-side lane fold for the parallel pipeline.

    Runs in a pool whose initializer opened the store once per worker (see
    :func:`repro.engine.parallel.get_worker_store`); only the consumers,
    chunk indices and row offsets cross the process boundary.  Returns
    ``(states, errors, rows)`` with unordered partials left unfinalized so
    the parent can merge them exactly.
    """
    from .parallel import get_worker_store

    (consumers, chunk_indices, start_rows, columns, check_order,
     initial_states, order_floor) = task
    store = get_worker_store()
    states = {consumer.name: consumer.make_state() for consumer in consumers}
    if initial_states:
        states.update(initial_states)
    errors: Dict[str, AnalysisError] = {}
    counters = {"chunks": 0, "rows": 0}
    blocks = (
        ScanChunk(store.read_chunk(index, columns=columns), index, start)
        for index, start in zip(chunk_indices, start_rows))
    _fold_lane(store.name, blocks, list(consumers), states, errors,
               check_order, counters, order_floor=order_floor)
    return states, errors, counters["rows"]


class ScanPipeline:
    """Shared-scan runner: register consumers, then :meth:`run` one pass.

    Args:
        source: any :class:`TraceSource`-wrappable trace representation.
        executor: optional :class:`~repro.engine.parallel.ParallelExecutor`;
            with more than one effective worker and a store-backed source the
            chunk fan-out runs across processes.  Serial otherwise, with
            results identical up to floating-point merge order.
    """

    def __init__(self, source, executor=None):
        self.source = TraceSource.wrap(source)
        self.executor = executor
        self._consumers: List[ChunkConsumer] = []

    def add(self, consumer: ChunkConsumer) -> ChunkConsumer:
        """Register a consumer; returns it (for call-site chaining)."""
        if any(existing.name == consumer.name for existing in self._consumers):
            raise AnalysisError("duplicate pipeline consumer name %r" % (consumer.name,))
        self._consumers.append(consumer)
        return consumer

    @property
    def consumers(self) -> List[ChunkConsumer]:
        return list(self._consumers)

    def columns(self, consumers: Optional[Sequence[ChunkConsumer]] = None) -> Optional[List[str]]:
        """Union of the declared column sets (the decoded-once set).

        ``None`` when any consumer asks for every stored column.
        """
        union: List[str] = []
        chosen = self._consumers if consumers is None else consumers
        for consumer in chosen:
            if consumer.columns is None:
                return None
            for column in consumer.columns:
                if column not in union:
                    union.append(column)
        if any(consumer.ordered for consumer in chosen) and "submit_time_s" not in union:
            union.append("submit_time_s")
        return union

    # -- execution ---------------------------------------------------------
    def run(self, start_chunk: int = 0,
            initial_states: Optional[Dict[str, object]] = None,
            order_floor: float = -np.inf) -> PipelineResult:
        """Execute the shared scan and finalize every consumer.

        Args:
            start_chunk: first chunk index to fold (0 = the whole source).
                Non-zero values resume a checkpointed scan over a
                store-backed source: only chunks ``start_chunk..`` are read,
                with global chunk indices and row offsets preserved.
            initial_states: restored fold states (consumer name -> state)
                seeding the resumed consumers; consumers not listed start
                from :meth:`ChunkConsumer.make_state` as usual.
            order_floor: last submit time of the already-folded prefix — the
                ordered lane's order check starts from it.
        """
        initial_states = initial_states or {}
        result = PipelineResult()
        runnable: List[ChunkConsumer] = []
        for consumer in self._consumers:
            missing = [column for column in (consumer.columns or ())
                       if not self.source.has_column(column)]
            if missing:
                result.errors[consumer.name] = AnalysisError(
                    "source %r records no column %s (needed by %r)"
                    % (self.source.name, ", ".join(sorted(missing)), consumer.name))
            else:
                runnable.append(consumer)
        if not runnable:
            return result
        if start_chunk and not self.source.is_streaming:
            raise AnalysisError("resuming from chunk %d requires a store-backed "
                                "source, got materialized %r"
                                % (start_chunk, self.source.name))

        states: Dict[str, object] = {}
        if self._parallel_plan_applies(start_chunk):
            self._run_parallel(runnable, states, result, start_chunk,
                               initial_states, order_floor)
        else:
            self._run_serial(runnable, states, result, start_chunk,
                             initial_states, order_floor)

        result.final_states = dict(states)
        for consumer in self._consumers:
            if consumer.name not in states:
                continue
            try:
                result.results[consumer.name] = consumer.finalize(states[consumer.name])
            except AnalysisError as exc:
                result.errors[consumer.name] = exc
        return result

    def _run_serial(self, runnable: List[ChunkConsumer], states: Dict[str, object],
                    result: PipelineResult, start_chunk: int,
                    initial_states: Dict[str, object], order_floor: float) -> None:
        lane = list(runnable)
        for consumer in lane:
            states[consumer.name] = initial_states.get(consumer.name)
            if states[consumer.name] is None:
                states[consumer.name] = consumer.make_state()
        check_order = any(consumer.ordered for consumer in lane)
        counters = {"chunks": 0, "rows": 0}

        if start_chunk:
            store = self.source.backing
            start_row = int(sum(store.chunk_rows()[:start_chunk]))
            block_iter = store.iter_chunks(
                columns=self.columns(lane),
                chunk_indices=range(start_chunk, store.n_chunks))
        else:
            start_row = 0
            block_iter = self.source.iter_chunks(columns=self.columns(lane))
        index = start_chunk

        def chunks():
            nonlocal start_row, index
            for block in block_iter:
                yield ScanChunk(block, index, start_row)
                start_row += block.n_rows
                index += 1

        _fold_lane(self.source.name, chunks(), lane, states, result.errors,
                   check_order, counters, order_floor=order_floor)
        result.chunks_scanned = counters["chunks"]
        result.rows_scanned = counters["rows"]

    def _parallel_plan_applies(self, start_chunk: int) -> bool:
        if self.executor is None or not self.source.is_streaming:
            return False
        store = self.source.backing
        remaining = store.n_chunks - start_chunk
        n_workers = self.executor.effective_workers(max(remaining, 1))
        return n_workers > 1 and remaining > 1

    def _run_parallel(self, runnable: List[ChunkConsumer], states: Dict[str, object],
                      result: PipelineResult, start_chunk: int,
                      initial_states: Dict[str, object], order_floor: float) -> None:
        store = self.source.backing
        chunk_rows = store.chunk_rows()
        offsets = np.concatenate(([0], np.cumsum(chunk_rows)))[:-1].tolist()
        n_chunks = store.n_chunks
        scan_indices = list(range(start_chunk, n_chunks))

        ordered = [consumer for consumer in runnable if consumer.ordered]
        unordered = [consumer for consumer in runnable if not consumer.ordered]

        tasks = []
        if ordered:
            # One sequential lane sees every chunk in submit-time order;
            # restored ordered states ride along in the task payload (the
            # lane is a single worker, so the state ships exactly once).
            ordered_initial = {consumer.name: initial_states[consumer.name]
                               for consumer in ordered
                               if consumer.name in initial_states}
            tasks.append((ordered, scan_indices,
                          [offsets[i] for i in scan_indices],
                          self.columns(ordered), True, ordered_initial, order_floor))
        range_tasks = 0
        if unordered:
            n_workers = self.executor.effective_workers(max(len(scan_indices), 1))
            per_worker = -(-len(scan_indices) // n_workers) if scan_indices else 1
            columns = self.columns(unordered)
            for start in range(0, len(scan_indices), per_worker):
                indices = scan_indices[start:start + per_worker]
                tasks.append((unordered, indices, [offsets[i] for i in indices],
                              columns, False, None, -np.inf))
                range_tasks += 1

        partials = self.executor.map(_scan_worker, tasks,
                                     store_directory=store.directory)

        range_partials = partials[len(partials) - range_tasks:]
        if ordered:
            lane_states, lane_errors, _rows = partials[0]
            states.update(lane_states)
            result.errors.update(lane_errors)
        for consumer in unordered:
            # Restored unordered states never cross the process boundary:
            # workers fold fresh partials over the new chunk ranges and the
            # restored prefix state seeds the in-order merge here.
            merged = initial_states.get(consumer.name)
            error: Optional[AnalysisError] = None
            for lane_states, lane_errors, _rows in range_partials:
                if consumer.name in lane_errors:
                    error = error or lane_errors[consumer.name]
                elif error is None:
                    partial = lane_states[consumer.name]
                    merged = partial if merged is None else consumer.merge(merged, partial)
            if error is not None:
                result.errors[consumer.name] = error
            else:
                states[consumer.name] = merged
        result.chunks_scanned = len(scan_indices)
        result.rows_scanned = sum(rows for _states, _errors, rows in range_partials) \
            if range_tasks else (partials[0][2] if partials else 0)


def fold_consumer(source, consumer: ChunkConsumer, executor=None):
    """Run one consumer as its own (degenerate) shared scan.

    This is how the standalone per-analysis entry points execute their folds,
    so a standalone result and the same consumer's result inside a many-
    consumer pipeline come from literally the same code path.  Re-raises the
    consumer's recorded :class:`AnalysisError`, if any.
    """
    pipeline = ScanPipeline(source, executor=executor)
    pipeline.add(consumer)
    return pipeline.run().value(consumer.name)


# ---------------------------------------------------------------------------
# Checkpoints: persisted fold states + chunk watermark
# ---------------------------------------------------------------------------
def _json_default(value):
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError("checkpoint payload value %r is not JSON-serializable" % (value,))


class Checkpoint:
    """Fold states of a shared scan, persisted next to the store as JSON+npz.

    :meth:`save` writes two files: ``<path>`` (JSON — the chunk/row
    watermark, manifest sequence, sortedness and every scalar/dict payload
    field) and ``<path>.npz`` (the NumPy array payload fields, keyed
    ``<consumer>::<field>``).  JSON floats round-trip exactly (``repr``
    serialization) and npz arrays are bit-preserving, so a restored state is
    *identical* to the state at capture time — the foundation of the
    incremental == full-rescan equality contract.

    The **chunk watermark** records how many chunks (and rows) of the store
    the states cover; :meth:`validate` re-checks it against the live manifest
    before a resume, so a store that was rewritten (rather than appended to)
    is rejected loudly instead of producing silently wrong statistics.
    """

    CHECKPOINT_VERSION = 1

    def __init__(self, store_directory: str, chunk_watermark: int,
                 row_watermark: int, manifest_sequence: int,
                 sorted_by_submit_time: bool, last_submit_time: Optional[float],
                 consumers: Dict[str, Dict[str, object]],
                 meta: Optional[Dict[str, object]] = None,
                 store_uid: Optional[str] = None):
        self.store_directory = str(store_directory)
        self.chunk_watermark = int(chunk_watermark)
        self.row_watermark = int(row_watermark)
        self.manifest_sequence = int(manifest_sequence)
        self.sorted_by_submit_time = bool(sorted_by_submit_time)
        self.last_submit_time = last_submit_time
        #: The store's random identity (``manifest["store_uid"]``) at capture
        #: time; a rewrite mints a new one, so resume against it is rejected.
        self.store_uid = store_uid
        #: consumer name -> snapshot payload (see :meth:`ChunkConsumer.snapshot`).
        self.consumers = consumers
        self.meta = dict(meta or {})

    @classmethod
    def capture(cls, store, consumers: Sequence[ChunkConsumer],
                final_states: Dict[str, object],
                errors: Optional[Dict[str, AnalysisError]] = None,
                meta: Optional[Dict[str, object]] = None) -> "Checkpoint":
        """Snapshot every resumable consumer's state after a completed scan.

        Consumers that are not resumable, errored during the scan, or whose
        snapshot itself raises are simply left out — a later resume gives
        them a full rescan instead.
        """
        errors = errors or {}
        payloads: Dict[str, Dict[str, object]] = {}
        for consumer in consumers:
            if not consumer.resumable or consumer.name in errors:
                continue
            if consumer.name not in final_states:
                continue
            try:
                payloads[consumer.name] = consumer.snapshot(final_states[consumer.name])
            except AnalysisError:
                continue
        last_submit: Optional[float] = None
        for index in range(store.n_chunks):
            zone = store.chunk_zone(index, "submit_time_s")
            if zone is not None:
                last_submit = zone[1] if last_submit is None else max(last_submit, zone[1])
        return cls(store_directory=store.directory,
                   chunk_watermark=store.n_chunks,
                   row_watermark=store.n_jobs,
                   manifest_sequence=getattr(store, "manifest_sequence", 0),
                   sorted_by_submit_time=store.sorted_by_submit_time,
                   last_submit_time=last_submit,
                   consumers=payloads, meta=meta,
                   store_uid=getattr(store, "store_uid", None))

    def validate(self, store) -> None:
        """Check that ``store`` is this checkpoint's store, grown append-only.

        Raises:
            AnalysisError: when the store is a different store entirely (the
                manifest ``store_uid`` minted at write time does not match),
                the store shrank, the checkpointed chunk prefix changed row
                counts (a rewrite, not an append), or the manifest sequence
                went backwards.
        """
        store_uid = getattr(store, "store_uid", None)
        if self.store_uid is not None and store_uid != self.store_uid:
            raise AnalysisError(
                "checkpoint belongs to a different store (store_uid %s, %s has "
                "%s); the store was rewritten or replaced — run a full scan "
                "instead of resuming"
                % (self.store_uid, store.directory, store_uid))
        if store.n_chunks < self.chunk_watermark:
            raise AnalysisError(
                "checkpoint covers %d chunks but store %s now has only %d; "
                "the store was rewritten — run a full scan instead of resuming"
                % (self.chunk_watermark, store.directory, store.n_chunks))
        prefix_rows = int(sum(store.chunk_rows()[:self.chunk_watermark]))
        if prefix_rows != self.row_watermark:
            raise AnalysisError(
                "checkpointed chunk prefix of %s changed (%d rows recorded, "
                "%d on disk); the store was rewritten — run a full scan "
                "instead of resuming"
                % (store.directory, self.row_watermark, prefix_rows))
        if getattr(store, "manifest_sequence", 0) < self.manifest_sequence:
            raise AnalysisError(
                "store %s manifest sequence went backwards (checkpoint saw %d); "
                "the store was rewritten — run a full scan instead of resuming"
                % (store.directory, self.manifest_sequence))

    def new_chunks(self, store) -> int:
        """How many chunks the store gained since this checkpoint."""
        return store.n_chunks - self.chunk_watermark

    # -- persistence -------------------------------------------------------
    def save(self, path: str) -> None:
        """Write ``<path>`` (JSON) and ``<path>.npz`` (array payload fields).

        Both files are written to temporaries and atomically renamed into
        place (arrays first), and both carry the same freshly minted save
        token; :meth:`load` refuses a pair whose tokens disagree.  So
        rolling a checkpoint forward over an existing one can never leave a
        *silently* mismatched JSON/npz pair: a crash between the two renames
        is detected at load time instead of double-counting chunks.
        """
        save_token = uuid.uuid4().hex
        arrays: Dict[str, np.ndarray] = {
            "__save_token__": np.array([save_token])}
        consumer_docs: Dict[str, Dict[str, object]] = {}
        for name, payload in self.consumers.items():
            scalars: Dict[str, object] = {}
            array_fields: List[str] = []
            for field, value in payload.items():
                if isinstance(value, np.ndarray):
                    arrays["%s::%s" % (name, field)] = value
                    array_fields.append(field)
                else:
                    scalars[field] = value
            consumer_docs[name] = {"scalars": scalars, "arrays": array_fields}
        document = {
            "checkpoint_version": self.CHECKPOINT_VERSION,
            "save_token": save_token,
            "store_directory": self.store_directory,
            "store_uid": self.store_uid,
            "chunk_watermark": self.chunk_watermark,
            "row_watermark": self.row_watermark,
            "manifest_sequence": self.manifest_sequence,
            "sorted_by_submit_time": self.sorted_by_submit_time,
            "last_submit_time": self.last_submit_time,
            "meta": self.meta,
            "consumers": consumer_docs,
        }
        array_path = path + ".npz"
        array_temporary = array_path + ".tmp"
        # np.savez appends ".npz" to paths without the suffix: write to a
        # real file handle so the temporary name is exactly what we rename.
        with open(array_temporary, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        temporary = path + ".tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            # No sort_keys: dictionary payloads (e.g. the naming consumer's
            # word totals) rely on insertion order surviving the round trip —
            # stable sorts downstream break ties by it.
            json.dump(document, handle, indent=2, default=_json_default)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(array_temporary, array_path)
        os.replace(temporary, path)

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        """Read a checkpoint written by :meth:`save`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (IOError, json.JSONDecodeError) as exc:
            raise AnalysisError("cannot read checkpoint %s: %s" % (path, exc))
        if document.get("checkpoint_version") != cls.CHECKPOINT_VERSION:
            raise AnalysisError("unsupported checkpoint version %r in %s"
                                % (document.get("checkpoint_version"), path))
        consumers: Dict[str, Dict[str, object]] = {}
        array_path = path + ".npz"
        try:
            with np.load(array_path, allow_pickle=False) as archive:
                token = str(archive["__save_token__"][0]) \
                    if "__save_token__" in archive.files else None
                if token != document.get("save_token"):
                    raise AnalysisError(
                        "checkpoint files out of sync: %s and %s come from "
                        "different saves (an interrupted overwrite?); rerun "
                        "with --checkpoint to rewrite both" % (path, array_path))
                for name, doc in document.get("consumers", {}).items():
                    payload = dict(doc.get("scalars", {}))
                    for field in doc.get("arrays", []):
                        payload[field] = np.array(archive["%s::%s" % (name, field)])
                    consumers[name] = payload
        except (IOError, KeyError, ValueError) as exc:
            raise AnalysisError("cannot read checkpoint arrays %s: %s"
                                % (array_path, exc))
        return cls(store_directory=document["store_directory"],
                   chunk_watermark=document["chunk_watermark"],
                   row_watermark=document["row_watermark"],
                   manifest_sequence=document.get("manifest_sequence", 0),
                   sorted_by_submit_time=document.get("sorted_by_submit_time", False),
                   last_submit_time=document.get("last_submit_time"),
                   consumers=consumers,
                   meta=document.get("meta") or {},
                   store_uid=document.get("store_uid"))


def _merge_pipeline_results(target: PipelineResult, part: PipelineResult) -> None:
    target.results.update(part.results)
    target.errors.update(part.errors)
    target.final_states.update(part.final_states)
    target.chunks_scanned += part.chunks_scanned
    target.rows_scanned += part.rows_scanned


def run_resumable_scan(source, consumers: Sequence[ChunkConsumer], executor=None,
                       resume_from=None, checkpoint_to: Optional[str] = None,
                       meta: Optional[Dict[str, object]] = None):
    """Run one shared scan, resuming from a checkpoint when one is given.

    The generic form of the characterization scan's resume protocol, shared
    by the workload-profile scan (:mod:`repro.core.profile`) and the
    federation layer (:mod:`repro.engine.federation`).  With ``resume_from``,
    consumers split into a **resumed** lane (restored states folding only the
    appended chunks, ordered folds floored at the checkpoint's last submit
    time) and a **rescan** lane (full scan from chunk 0) — both over the same
    store handle, results merged.  Resumed results are bit-identical to a
    cold full rescan.

    Returns ``(merged, resume_report, saved_path)``: the merged
    :class:`PipelineResult`; a report dict (``chunk_watermark`` /
    ``new_chunks`` / ``resumed`` / ``rescanned`` reasons, or ``None`` for a
    plain full scan); and where the fresh checkpoint was saved, if asked.

    Raises:
        AnalysisError: when the checkpoint does not validate against the
            store (rewritten, shrunk, or a different store entirely) —
            callers wanting lenient behaviour catch this and scan cold.
    """
    checkpoint: Optional[Checkpoint] = None
    if resume_from is not None:
        checkpoint = (Checkpoint.load(os.fspath(resume_from))
                      if not isinstance(resume_from, Checkpoint) else resume_from)
        checkpoint.validate(source.backing)

    resumed: List[ChunkConsumer] = []
    rescan: List[ChunkConsumer] = []
    reasons: Dict[str, str] = {}
    initial_states: Dict[str, object] = {}
    if checkpoint is None:
        rescan = list(consumers)
    else:
        store = source.backing
        for consumer in consumers:
            if not consumer.resumable:
                rescan.append(consumer)
                reasons[consumer.name] = ("not resumable: result is defined over "
                                          "the total row count")
            elif consumer.name not in checkpoint.consumers:
                rescan.append(consumer)
                reasons[consumer.name] = "no state in the checkpoint"
            elif consumer.ordered and not store.sorted_by_submit_time:
                rescan.append(consumer)
                reasons[consumer.name] = ("ordered fold cannot resume: appended "
                                          "data interleaves in time (store is no "
                                          "longer sorted by submit time)")
            else:
                try:
                    initial_states[consumer.name] = consumer.restore(
                        checkpoint.consumers[consumer.name])
                    resumed.append(consumer)
                except AnalysisError as exc:
                    rescan.append(consumer)
                    reasons[consumer.name] = "checkpoint state unreadable: %s" % exc

    merged = PipelineResult()
    if resumed:
        pipeline = ScanPipeline(source, executor=executor)
        for consumer in resumed:
            pipeline.add(consumer)
        floor = (checkpoint.last_submit_time
                 if checkpoint.last_submit_time is not None else -np.inf)
        _merge_pipeline_results(merged, pipeline.run(
            start_chunk=checkpoint.chunk_watermark,
            initial_states=initial_states, order_floor=floor))
    if rescan:
        pipeline = ScanPipeline(source, executor=executor)
        for consumer in rescan:
            pipeline.add(consumer)
        _merge_pipeline_results(merged, pipeline.run())

    resume_report = None
    if checkpoint is not None:
        resume_report = {
            "chunk_watermark": checkpoint.chunk_watermark,
            "new_chunks": checkpoint.new_chunks(source.backing),
            "resumed": [consumer.name for consumer in resumed],
            "rescanned": reasons,
        }
    saved_path = None
    if checkpoint_to:
        fresh = Checkpoint.capture(source.backing, consumers, merged.final_states,
                                   merged.errors, meta=meta)
        fresh.save(os.fspath(checkpoint_to))
        saved_path = os.fspath(checkpoint_to)
    return merged, resume_report, saved_path


# ---------------------------------------------------------------------------
# Generic consumers
# ---------------------------------------------------------------------------
class SummaryConsumer(ChunkConsumer):
    """Table-1 summary fold: count, time bounds, byte/task-second totals.

    Folds the exact quantities of :meth:`TraceSource.summary` with the same
    mergeable aggregate states the engine query path uses, so the read-outs
    are identical to the per-analysis scan.
    """

    columns = ("submit_time_s", "finish_time_s", "total_bytes", "total_task_seconds")
    resumable = True

    def __init__(self, name: str = "summary", trace_name: str = "trace",
                 machines: Optional[int] = None):
        self.name = name
        self.trace_name = trace_name
        self.machines = machines

    def make_state(self):
        return {"n_jobs": 0, "start": MinState(), "end": MaxState(),
                "bytes": SumState(), "task_seconds": SumState()}

    def snapshot(self, state) -> Dict[str, object]:
        return {"n_jobs": int(state["n_jobs"]),
                "start": state["start"].value,
                "end": state["end"].value,
                "bytes": state["bytes"].total,
                "task_seconds": state["task_seconds"].total}

    def restore(self, payload: Dict[str, object]):
        state = self.make_state()
        state["n_jobs"] = int(payload["n_jobs"])
        state["start"].value = None if payload["start"] is None else float(payload["start"])
        state["end"].value = None if payload["end"] is None else float(payload["end"])
        state["bytes"].total = float(payload["bytes"])
        state["task_seconds"].total = float(payload["task_seconds"])
        return state

    def fold(self, state, chunk: ScanChunk):
        state["n_jobs"] += chunk.n_rows
        state["start"].update(chunk.column("submit_time_s"))
        state["end"].update(chunk.column("finish_time_s"))
        state["bytes"].update(chunk.column("total_bytes"))
        state["task_seconds"].update(chunk.column("total_task_seconds"))
        return state

    def merge(self, a, b):
        a["n_jobs"] += b["n_jobs"]
        for key in ("start", "end", "bytes", "task_seconds"):
            a[key].merge(b[key])
        return a

    def finalize(self, state):
        from ..traces.trace import TraceSummary

        if state["n_jobs"] == 0:
            return TraceSummary(name=self.trace_name, machines=self.machines,
                                length_s=0.0, start_s=0.0, end_s=0.0, n_jobs=0,
                                bytes_moved=0.0, total_task_seconds=0.0)
        start = float(state["start"].result() or 0.0)
        end = float(state["end"].result() or 0.0)
        return TraceSummary(
            name=self.trace_name,
            machines=self.machines,
            length_s=end - start,
            start_s=start,
            end_s=end,
            n_jobs=int(state["n_jobs"]),
            bytes_moved=float(state["bytes"].result()),
            total_task_seconds=float(state["task_seconds"].result()),
        )


class GatherConsumer(ChunkConsumer):
    """Collect the rows at sorted global indices (the Table-2 subsample).

    The shared-scan equivalent of :meth:`TraceSource.gather`: each chunk
    contributes the selected rows inside its global row range; partials are
    re-assembled in chunk order, so the gathered :class:`ColumnarTrace` is
    identical to a standalone gather for every chunking and worker count.

    Deliberately **not resumable**: the gathered indices (the Table-2 seeded
    subsample) are drawn over the *total* row count, so appending chunks
    changes which rows are selected — a checkpointed gather state would be
    wrong, not just stale.  Resumed scans give this consumer a full rescan.
    """

    def __init__(self, indices: Sequence[int], name: str = "gather",
                 trace_name: str = "trace", machines: Optional[int] = None,
                 columns: Optional[Tuple[str, ...]] = None):
        self.name = name
        self.trace_name = trace_name
        self.machines = machines
        self.columns = columns
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indices.size and np.any(self.indices[:-1] > self.indices[1:]):
            raise AnalysisError("gather expects sorted indices")

    def make_state(self):
        return {"picked": [], "rows_seen_past": 0}

    def fold(self, state, chunk: ScanChunk):
        end = chunk.start_row + chunk.n_rows
        lo = int(np.searchsorted(self.indices, chunk.start_row, side="left"))
        hi = int(np.searchsorted(self.indices, end, side="left"))
        if hi > lo:
            local = self.indices[lo:hi] - chunk.start_row
            state["picked"].append((chunk.index, chunk.block.take(local)))
        state["rows_seen_past"] = max(state["rows_seen_past"], end)
        return state

    def merge(self, a, b):
        a["picked"].extend(b["picked"])
        a["rows_seen_past"] = max(a["rows_seen_past"], b["rows_seen_past"])
        return a

    def finalize(self, state):
        total_rows = state["rows_seen_past"]
        if self.indices.size and int(self.indices[-1]) >= total_rows:
            raise AnalysisError("gather index %d out of range (%d rows)"
                                % (int(self.indices[-1]), total_rows))
        blocks = [block for _index, block in sorted(state["picked"], key=lambda p: p[0])]
        gathered = ColumnarTrace.__new__(ColumnarTrace)
        gathered.block = ColumnBlock.concat(blocks) if blocks else ColumnBlock({})
        gathered.name = self.trace_name
        gathered.machines = self.machines
        return gathered


def find_store_checkpoints(store, extra_directories: Sequence[str] = ()) -> List[str]:
    """Best-effort scan for checkpoint files that reference ``store``.

    Looks for ``*.json`` files inside the store directory, its parent, and
    any ``extra_directories``, and returns the paths of those that parse as
    :class:`Checkpoint` documents (``checkpoint_version`` key) whose
    ``store_uid`` or ``store_directory`` points at ``store``.  ``engine
    convert --store`` uses this to refuse a re-encode whose output would
    orphan a live checkpoint: conversion mints a fresh ``store_uid``, so a
    resume against the converted copy would be rejected only *after* the
    caller had already discarded the original.

    Checkpoints saved elsewhere (an absolute ``--checkpoint`` path in some
    unrelated directory) are out of scan range — this is a guard rail, not a
    registry.
    """
    directory = os.path.abspath(store.directory)
    uid = getattr(store, "store_uid", None)
    found: List[str] = []
    scanned = set()
    for base in (directory, os.path.dirname(directory), *extra_directories):
        base = os.path.abspath(base)
        if base in scanned or not os.path.isdir(base):
            continue
        scanned.add(base)
        for entry in sorted(os.listdir(base)):
            if not entry.endswith(".json"):
                continue
            path = os.path.join(base, entry)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    document = json.load(handle)
            except (OSError, ValueError):
                continue
            if not isinstance(document, dict) or "checkpoint_version" not in document:
                continue
            doc_uid = document.get("store_uid")
            doc_dir = document.get("store_directory")
            if (uid is not None and doc_uid == uid) or (
                    doc_dir and os.path.abspath(str(doc_dir)) == directory):
                found.append(path)
    return found
