"""Chunked on-disk columnar trace store.

A store is a directory holding a JSON manifest plus the column data of each
chunk of rows, in one of three manifest-versioned layouts:

* **format v2** (default) — one raw ``.npy`` file per column per chunk::

      store/
        manifest.json
        chunk-00000.submit_time_s.npy
        chunk-00000.input_bytes.npy
        ...

  Raw ``.npy`` columns are read with ``numpy.load(..., mmap_mode="r")``, so a
  scan touches only the pages it actually reads and concurrent readers (the
  shared-scan pipeline's worker processes) share one copy of the data in the
  OS page cache instead of each decompressing its own.

* **format v3** — one *compressed block* (``.bin``) per column per chunk,
  same chunk addressing as v2 but roughly v1's disk footprint::

      store/
        manifest.json
        dictionary.json
        chunk-00000.submit_time_s.bin
        ...

  Numeric columns compress through a pluggable codec registry (stdlib
  ``zlib``/``lzma``; ``zstd``/``lz4`` auto-register when importable) with
  ``submit_time_s`` delta-encoded via exact uint64 bit differences.
  Low-cardinality string columns are **dictionary-encoded**: chunks store
  ``uint32`` codes and the per-store value tables live in the
  ``dictionary.json`` sidecar.  The dictionary only ever grows (appends add
  codes, never renumber), so open handles and resume checkpoints survive an
  append.  ``read_chunk`` returns the codes *as codes* (see
  :meth:`~repro.engine.columnar.ColumnBlock.codes_for`) — scan consumers
  fold over integers and strings materialize lazily only when truly needed.
  High-cardinality columns (``job_id``) skip the dictionary and store
  compressed fixed-width text instead; the choice is made per column on
  first appearance and recorded in the manifest's ``string_encodings``.

* **format v1** (legacy, still fully readable) — one compressed ``.npz`` file
  per chunk whose members are the columns.  Compact on disk, but every read
  decompresses the chunk privately.

The manifest records the column set, per-chunk row counts and per-chunk
min/max **zone maps** for every numeric column, so a filtered scan can skip
whole chunks whose value range cannot match a predicate (the classic columnar
small-materialized-aggregates trick; see the NeedleTail / Polynesia discussion
in PAPERS.md).  Zone maps for the derived ``submit_hour`` column are resolved
from the stored ``submit_time_s`` zones on the fly.

The writer consumes any iterable of jobs — including the lazy trace-file
readers in :mod:`repro.traces.io` — so a trace can be converted to columnar
form without ever holding more than one chunk of jobs in memory.  Readers are
equally lazy: :meth:`ChunkedTraceStore.iter_chunks` loads one chunk (and only
the requested columns) at a time.

**Appending.**  v2 and v3 stores are *appendable*: :meth:`ChunkedTraceStore.open_append`
(the ``repro engine ingest`` CLI) adds new chunks — with zone maps — to an
existing store without rewriting the old ones.  The append is crash-safe: new
chunk files land on disk first, then the updated manifest is written to a
temporary file, fsynced, and atomically swapped over ``manifest.json`` with
``os.replace``.  A reader (or a crash) mid-append therefore always sees a
coherent store — either the old manifest or the new one, never a torn state;
orphaned chunk files from an interrupted append are simply unreferenced.
Every committed append bumps the manifest's ``manifest_sequence`` counter, so
downstream consumers (the characterization :class:`~repro.engine.pipeline.Checkpoint`)
can tell "the store grew" apart from "the store was rewritten".
"""

from __future__ import annotations

import json
import os
import uuid
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import TraceFormatError
from ..traces.schema import Job
from ..traces.trace import Trace
from .codecs import (
    DEFAULT_CODEC,
    DICTIONARY_NAME,
    StoreDictionary,
    available_codecs,
    pack_block,
    read_block_header,
    unpack_block,
)
from .columnar import (
    ALL_COLUMNS,
    DEFAULT_CHUNK_ROWS,
    NUMERIC_COLUMNS,
    STRING_COLUMNS,
    ColumnBlock,
    ColumnarTrace,
    _append_job,
    _block_to_jobs,
    _buffers_to_arrays,
)

__all__ = ["ChunkedTraceStore", "StoreAppender", "write_store", "append_store",
           "SUPPORTED_FORMAT_VERSIONS", "DEFAULT_FORMAT_VERSION"]

MANIFEST_NAME = "manifest.json"
#: Manifest versions this reader understands.
SUPPORTED_FORMAT_VERSIONS = (1, 2, 3)
#: The version new stores are written with (raw per-column ``.npy``).
DEFAULT_FORMAT_VERSION = 2

#: v3: dictionary-encode a string column when its first non-empty chunk has at
#: most this many distinct values (or 1/4 of the rows, whichever is larger) —
#: otherwise (``job_id``-like, unique per row) store compressed raw text.
DICTIONARY_MAX_DISTINCT = 1024


class _ChunkMeta:
    """Manifest entry for one chunk: file name/prefix, row count, zone maps."""

    __slots__ = ("file", "rows", "zones")

    def __init__(self, file: str, rows: int, zones: Dict[str, List[float]]):
        #: v1: the ``.npz`` file name; v2: the per-chunk file prefix
        #: (column files are ``<prefix>.<column>.npy``).
        self.file = file
        self.rows = rows
        #: column -> [min, max] over finite values (absent if none are finite).
        self.zones = zones

    def to_json(self) -> Dict:
        return {"file": self.file, "rows": self.rows, "zones": self.zones}

    @classmethod
    def from_json(cls, data: Dict) -> "_ChunkMeta":
        return cls(file=data["file"], rows=int(data["rows"]),
                   zones={k: [float(v[0]), float(v[1])] for k, v in data.get("zones", {}).items()})


def _zone_maps(columns: Dict[str, np.ndarray]) -> Dict[str, List[float]]:
    zones: Dict[str, List[float]] = {}
    for name in NUMERIC_COLUMNS:
        array = columns.get(name)
        if array is None or array.size == 0:
            continue
        finite = array[np.isfinite(array)]
        if finite.size:
            zones[name] = [float(finite.min()), float(finite.max())]
    return zones


class ChunkedTraceStore:
    """Handle on an on-disk chunked columnar trace.

    Open an existing store with ``ChunkedTraceStore(directory)``; create one
    with :meth:`write`.  The handle itself holds only the manifest — chunk
    data is read lazily, one chunk at a time (v2 column files are
    memory-mapped, so repeated readers share the OS page cache).
    """

    def __init__(self, directory):
        self.directory = str(directory)
        manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        if not os.path.isfile(manifest_path):
            raise TraceFormatError("%s: not a chunked trace store (no %s)"
                                   % (self.directory, MANIFEST_NAME))
        with open(manifest_path, "r", encoding="utf-8") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as exc:
                raise TraceFormatError("%s: invalid manifest: %s" % (manifest_path, exc))
        if manifest.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
            raise TraceFormatError("%s: unsupported format version %r (supported: %s)"
                                   % (manifest_path, manifest.get("format_version"),
                                      ", ".join(str(v) for v in SUPPORTED_FORMAT_VERSIONS)))
        self.format_version: int = int(manifest["format_version"])
        self.name: str = manifest.get("name", "trace")
        self.machines: Optional[int] = manifest.get("machines")
        self.columns: List[str] = list(manifest["columns"])
        self.sorted_by_submit_time: bool = bool(manifest.get("sorted_by_submit_time", False))
        #: Rows-per-chunk the writer targeted (appends default to the same).
        self.chunk_rows_target: int = int(manifest.get("chunk_rows", DEFAULT_CHUNK_ROWS))
        #: Bumped by one on every committed append; 0 for a freshly written store.
        self.manifest_sequence: int = int(manifest.get("manifest_sequence", 0))
        #: Random identity minted at write time and preserved across appends —
        #: how a checkpoint tells "this store, grown" apart from "a different
        #: (or rewritten) store of the same shape".  None for pre-ingest stores.
        self.store_uid: Optional[str] = manifest.get("store_uid")
        #: v3 block codec name and level (None for v1/v2 stores).
        self.codec: Optional[str] = manifest.get("codec")
        self.codec_level: Optional[int] = manifest.get("codec_level")
        #: v3 per-string-column encoding choice ("dict" or "raw"), fixed at
        #: first appearance so appends stay consistent with existing chunks.
        self.string_encodings: Dict[str, str] = dict(manifest.get("string_encodings", {}))
        self._chunks: List[_ChunkMeta] = [_ChunkMeta.from_json(c) for c in manifest["chunks"]]
        self._dictionary: Optional[StoreDictionary] = None
        if self.format_version == 3:
            if os.path.isfile(os.path.join(self.directory, DICTIONARY_NAME)):
                self._dictionary = StoreDictionary.load(self.directory)
            elif any(enc == "dict" for enc in self.string_encodings.values()):
                raise TraceFormatError(
                    "%s: manifest declares dictionary-encoded columns but the "
                    "%s sidecar is missing" % (self.directory, DICTIONARY_NAME))
            else:
                self._dictionary = StoreDictionary()

    # -- metadata ----------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return sum(chunk.rows for chunk in self._chunks)

    def __len__(self) -> int:
        return self.n_jobs

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    def __repr__(self) -> str:
        return "ChunkedTraceStore(%r, n_jobs=%d, n_chunks=%d, format=v%d)" % (
            self.directory, self.n_jobs, self.n_chunks, self.format_version)

    def chunk_rows(self) -> List[int]:
        return [chunk.rows for chunk in self._chunks]

    def chunk_zone(self, index: int, column: str) -> Optional[List[float]]:
        """The [min, max] zone of one numeric column in one chunk, if known.

        Besides the stored numeric columns, the derived ``submit_hour`` column
        resolves through the ``submit_time_s`` zone (``floor(t / 3600)`` is
        monotone, so the hour zone is just the floored time zone) — this is
        what lets a filtered scan skip chunks on hour predicates without any
        extra manifest data.  Unknown columns return ``None`` (never skip).
        """
        zones = self._chunks[index].zones
        zone = zones.get(column)
        if zone is not None:
            return zone
        if column == "submit_hour":
            time_zone = zones.get("submit_time_s")
            if time_zone is not None:
                return [float(np.floor(time_zone[0] / 3600.0)),
                        float(np.floor(time_zone[1] / 3600.0))]
        return None

    def string_table(self, name: str):
        """The dictionary table backing a v3 dict-encoded column, else ``None``.

        The planner uses it to resolve a string literal to its code without
        decoding any chunk; raw-encoded and v1/v2 string columns answer
        ``None`` (no stable code space).
        """
        if self._dictionary is None or self.string_encodings.get(name) != "dict":
            return None
        return self._dictionary.get(name)

    def has_column(self, name: str) -> bool:
        """Whether the store records ``name``, including resolvable derived columns."""
        if name in self.columns:
            return True
        try:
            self._storage_columns([name])
            return True
        except TraceFormatError:
            return False

    def _chunk_files(self, meta: _ChunkMeta) -> List[str]:
        """All on-disk files belonging to one chunk."""
        if self.format_version == 1:
            return [meta.file]
        suffix = "bin" if self.format_version == 3 else "npy"
        return ["%s.%s.%s" % (meta.file, column, suffix) for column in self.columns]

    def info(self) -> Dict:
        """Manifest-level summary (for ``repro engine info``)."""
        total_bytes = 0
        for chunk in self._chunks:
            for file_name in self._chunk_files(chunk):
                path = os.path.join(self.directory, file_name)
                if os.path.isfile(path):
                    total_bytes += os.path.getsize(path)
        dictionary_bytes = 0
        if self.format_version == 3:
            sidecar = os.path.join(self.directory, DICTIONARY_NAME)
            if os.path.isfile(sidecar):
                dictionary_bytes = os.path.getsize(sidecar)
            total_bytes += dictionary_bytes
        submit_zones = [chunk.zones.get("submit_time_s") for chunk in self._chunks]
        submit_zones = [zone for zone in submit_zones if zone]
        summary = {
            "directory": self.directory,
            "name": self.name,
            "store_uid": self.store_uid,
            "machines": self.machines,
            "format_version": self.format_version,
            "manifest_sequence": self.manifest_sequence,
            "sorted_by_submit_time": self.sorted_by_submit_time,
            "n_jobs": self.n_jobs,
            "n_chunks": self.n_chunks,
            "columns": self.columns,
            "on_disk_bytes": int(total_bytes),
            "submit_time_range": [min(z[0] for z in submit_zones),
                                  max(z[1] for z in submit_zones)] if submit_zones else None,
        }
        if self.format_version == 3:
            summary["codec"] = self.codec
            summary["codec_level"] = self.codec_level
            summary["string_encodings"] = dict(self.string_encodings)
            summary["dictionary_bytes"] = int(dictionary_bytes)
        from .indexes import load_indexes

        indexes = load_indexes(self)
        summary["indexes"] = indexes.info(self) if indexes is not None else None
        return summary

    def column_sizes(self) -> Dict[str, int]:
        """On-disk bytes per stored column (``repro engine info --sizes``).

        v2 stores sum the per-column ``.npy`` file sizes; v3 sums the
        compressed ``.bin`` block files.  v1 ``.npz`` chunks are zip archives,
        so the per-member *compressed* sizes are read from the zip directory —
        which is what makes the disk trade-off between the formats
        (compression vs. mmap-ability) observable per column.
        """
        sizes: Dict[str, int] = {column: 0 for column in self.columns}
        if self.format_version in (2, 3):
            suffix = "bin" if self.format_version == 3 else "npy"
            for chunk in self._chunks:
                for column in self.columns:
                    path = os.path.join(self.directory,
                                        "%s.%s.%s" % (chunk.file, column, suffix))
                    if os.path.isfile(path):
                        sizes[column] += os.path.getsize(path)
            return sizes
        import zipfile

        for chunk in self._chunks:
            path = os.path.join(self.directory, chunk.file)
            try:
                with zipfile.ZipFile(path) as archive:
                    for member in archive.infolist():
                        column = member.filename[:-4] if member.filename.endswith(".npy") \
                            else member.filename
                        if column in sizes:
                            sizes[column] += member.compress_size
            except (IOError, zipfile.BadZipFile) as exc:
                raise TraceFormatError("%s: cannot read chunk %s: %s"
                                       % (self.directory, chunk.file, exc))
        return sizes

    def column_raw_sizes(self) -> Optional[Dict[str, int]]:
        """Per-column *uncompressed* bytes, from v3 block headers.

        Each v3 block records the logical (pre-compression) size of its
        column — for dictionary columns, the size of the *string* array a v2
        store would have written, not the uint32 codes.  Only headers are
        read; nothing is decompressed.  Returns ``None`` for v1/v2 stores,
        whose ``engine info --sizes`` output is unchanged.
        """
        if self.format_version != 3:
            return None
        sizes: Dict[str, int] = {column: 0 for column in self.columns}
        for chunk in self._chunks:
            for column in self.columns:
                path = os.path.join(self.directory,
                                    "%s.%s.bin" % (chunk.file, column))
                if os.path.isfile(path):
                    header = read_block_header(path)
                    sizes[column] += int(header.get("raw_bytes", 0))
        return sizes

    # -- lazy readers ------------------------------------------------------
    def read_chunk(self, index: int, columns: Optional[Sequence[str]] = None) -> ColumnBlock:
        """Load one chunk, materializing only the requested columns.

        v2 column files are opened with ``mmap_mode="r"``: the returned arrays
        are read-only memory maps whose pages load on first touch and are
        shared between every process scanning the same store.

        v3 blocks are decompressed per column; dictionary-encoded string
        columns come back as **uint32 codes** attached to the block's
        ``codes``/``dictionaries`` side-channel — strings materialize lazily
        through :meth:`ColumnBlock.column`, and code-native consumers never
        pay for the decode at all.
        """
        meta = self._chunks[index]
        wanted = self._storage_columns(columns)
        if self.format_version == 3:
            data: Dict[str, np.ndarray] = {}
            codes: Dict[str, np.ndarray] = {}
            dictionaries = {}
            for name in wanted:
                path = os.path.join(self.directory, "%s.%s.bin" % (meta.file, name))
                try:
                    with open(path, "rb") as handle:
                        header, array = unpack_block(handle.read(), path)
                except IOError as exc:
                    raise TraceFormatError("%s: cannot read chunk column %s: %s"
                                           % (self.directory, os.path.basename(path), exc))
                if header.get("encoding") == "dict":
                    table = self._dictionary.get(name) if self._dictionary else None
                    if table is None:
                        raise TraceFormatError(
                            "%s: chunk column %s is dictionary-encoded but the "
                            "store dictionary has no table for %r"
                            % (self.directory, os.path.basename(path), name))
                    codes[name] = array
                    dictionaries[name] = table
                else:
                    data[name] = array
            return ColumnBlock(data, codes, dictionaries)
        if self.format_version == 1:
            path = os.path.join(self.directory, meta.file)
            try:
                with np.load(path, allow_pickle=False) as archive:
                    data = {name: archive[name] for name in wanted}
            except (IOError, KeyError, ValueError) as exc:
                raise TraceFormatError("%s: cannot read chunk %s: %s"
                                       % (self.directory, meta.file, exc))
            return ColumnBlock(data)
        data = {}
        for name in wanted:
            path = os.path.join(self.directory, "%s.%s.npy" % (meta.file, name))
            try:
                # Zero-row columns cannot be mmapped (there is nothing to map).
                data[name] = np.load(path, allow_pickle=False,
                                     mmap_mode="r" if meta.rows else None)
            except (IOError, ValueError) as exc:
                raise TraceFormatError("%s: cannot read chunk column %s: %s"
                                       % (self.directory, os.path.basename(path), exc))
        return ColumnBlock(data)

    def _storage_columns(self, columns: Optional[Sequence[str]]) -> List[str]:
        """Resolve a requested column list to stored columns (expanding derived)."""
        if columns is None:
            return list(self.columns)
        wanted: List[str] = []
        for name in columns:
            if name in self.columns:
                parts = [name]
            elif name == "total_bytes":
                parts = ["input_bytes", "shuffle_bytes", "output_bytes"]
            elif name == "total_task_seconds":
                parts = ["map_task_seconds", "reduce_task_seconds"]
            elif name == "finish_time_s":
                parts = ["submit_time_s", "duration_s"]
            elif name == "submit_hour":
                parts = ["submit_time_s"]
            else:
                raise TraceFormatError("store %s has no column %r (have %s)"
                                       % (self.directory, name, self.columns))
            for part in parts:
                if part not in self.columns:
                    raise TraceFormatError("store %s has no column %r (needed for %r)"
                                           % (self.directory, part, name))
                if part not in wanted:
                    wanted.append(part)
        return wanted

    def iter_chunks(self, columns: Optional[Sequence[str]] = None,
                    chunk_indices: Optional[Sequence[int]] = None) -> Iterator[ColumnBlock]:
        """Yield chunks lazily; memory use is bounded by one chunk."""
        indices = range(self.n_chunks) if chunk_indices is None else chunk_indices
        for index in indices:
            yield self.read_chunk(index, columns=columns)

    def iter_jobs(self) -> Iterator[Job]:
        """Yield :class:`Job` objects one chunk at a time."""
        for block in self.iter_chunks():
            for job in _block_to_jobs(block):
                yield job

    # -- whole-store materialization ---------------------------------------
    def load_columnar(self) -> ColumnarTrace:
        """Load the full store into one in-memory :class:`ColumnarTrace`."""
        blocks = list(self.iter_chunks())
        trace = ColumnarTrace.__new__(ColumnarTrace)
        trace.block = ColumnBlock.concat(blocks) if blocks else ColumnBlock({})
        trace.name = self.name
        trace.machines = self.machines
        if not self.sorted_by_submit_time:
            trace._sort_by_submit_time()
        return trace

    def to_trace(self) -> Trace:
        """Materialize the full store as a job-list :class:`Trace`."""
        return Trace(self.iter_jobs(), name=self.name, machines=self.machines)

    # -- writer ------------------------------------------------------------
    @classmethod
    def write(cls, directory, source, chunk_rows: int = DEFAULT_CHUNK_ROWS,
              name: Optional[str] = None, machines: Optional[int] = None,
              format_version: int = DEFAULT_FORMAT_VERSION,
              codec: Optional[str] = None,
              codec_level: Optional[int] = None) -> "ChunkedTraceStore":
        """Write a store from a :class:`Trace`, :class:`ColumnarTrace`, or job iterable.

        Job iterables are consumed streamingly: at most ``chunk_rows`` jobs are
        buffered before being flushed to disk, so arbitrarily large traces can
        be converted with bounded memory.  ``format_version`` selects the
        on-disk layout: 2 (default) writes raw per-column ``.npy`` files read
        back via mmap; 3 writes compressed per-column blocks with
        dictionary-encoded strings (``codec``/``codec_level`` pick the block
        codec, default ``zlib``); 1 writes the legacy compressed ``.npz``
        chunks.

        A :class:`ChunkedTraceStore` source converts store→store (the
        ``engine convert --store`` v1↔v2↔v3 path): chunks stream through one
        at a time at the source's chunk boundaries, and the
        sorted-by-submit-time flag *and* ``manifest_sequence`` carry over from
        the source manifest (the converted store still mints a fresh
        ``store_uid``, so checkpoints of the source can never resume against
        it — :meth:`Checkpoint.validate` rejects the uid mismatch).
        """
        if chunk_rows <= 0:
            raise TraceFormatError("chunk_rows must be positive, got %r" % (chunk_rows,))
        if format_version not in SUPPORTED_FORMAT_VERSIONS:
            raise TraceFormatError("unsupported store format version %r (supported: %s)"
                                   % (format_version,
                                      ", ".join(str(v) for v in SUPPORTED_FORMAT_VERSIONS)))
        if format_version != 3 and (codec is not None or codec_level is not None):
            raise TraceFormatError(
                "codec/codec_level only apply to format v3 (got format v%d)"
                % (format_version,))
        if format_version == 3:
            codec = codec or DEFAULT_CODEC
            if codec not in available_codecs():
                raise TraceFormatError("unknown codec %r (available: %s)"
                                       % (codec, ", ".join(available_codecs())))
        if isinstance(source, ChunkedTraceStore):
            if os.path.abspath(str(directory)) == os.path.abspath(source.directory):
                raise TraceFormatError("cannot convert store %s onto itself"
                                       % (source.directory,))
            os.makedirs(directory, exist_ok=True)
            return cls._write_blocks(directory, source.iter_chunks(),
                                     source.chunk_rows_target,
                                     name or source.name,
                                     machines if machines is not None else source.machines,
                                     source.sorted_by_submit_time, format_version,
                                     codec=codec, codec_level=codec_level,
                                     manifest_sequence=source.manifest_sequence)
        os.makedirs(directory, exist_ok=True)
        sorted_hint = False
        if isinstance(source, ColumnarTrace):
            name = name or source.name
            machines = machines if machines is not None else source.machines
            sorted_hint = True
            block_iter = source.iter_chunks(chunk_rows=chunk_rows)
            return cls._write_blocks(directory, block_iter, chunk_rows, name, machines,
                                     sorted_hint, format_version,
                                     codec=codec, codec_level=codec_level)
        if isinstance(source, Trace):
            name = name or source.name
            machines = machines if machines is not None else source.machines
            sorted_hint = True  # Trace keeps jobs sorted by submit time
            jobs: Iterable[Job] = source.jobs
        else:
            jobs = source
        return cls._write_blocks(directory,
                                 _job_blocks(jobs, chunk_rows),
                                 chunk_rows, name or "trace", machines, sorted_hint,
                                 format_version, codec=codec, codec_level=codec_level)

    @classmethod
    def _write_blocks(cls, directory, blocks: Iterable[ColumnBlock], chunk_rows: int,
                      name: str, machines: Optional[int], sorted_hint: bool,
                      format_version: int, codec: Optional[str] = None,
                      codec_level: Optional[int] = None,
                      manifest_sequence: int = 0) -> "ChunkedTraceStore":
        dictionary = StoreDictionary() if format_version == 3 else None
        string_encodings: Dict[str, str] = {}
        chunk_metas: List[_ChunkMeta] = []
        column_names: Optional[List[str]] = None
        # Sources without a sortedness guarantee (raw job iterables) are
        # *verified* while streaming through, so an actually-sorted iterable
        # still earns the manifest flag the ordered analyses and the
        # checkpoint-resume eligibility check read.
        verified_sorted = True
        previous_end = -np.inf
        for index, block in enumerate(blocks):
            if block.n_rows == 0 and index > 0:
                continue
            # materialized() decodes any dictionary-backed columns of a v3
            # source block — a plain dict(block.columns) would silently drop
            # the code-backed string columns during store→store conversion.
            columns = block.materialized()
            times = columns.get("submit_time_s")
            if times is not None and times.size:
                if times[0] < previous_end or np.any(times[:-1] > times[1:]):
                    verified_sorted = False
                previous_end = max(previous_end, float(times[-1]))
            if column_names is None:
                column_names = sorted(columns)
            elif sorted(columns) != column_names:
                # A later chunk surfaced a string column earlier chunks lacked
                # (or vice versa): pad to the union so every chunk file has the
                # same member set.
                union = sorted(set(column_names) | set(columns))
                column_names = union
                for col in union:
                    if col not in columns:
                        columns[col] = _empty_column(col, block.n_rows)
            file_name = _write_chunk(str(directory), index, columns, format_version,
                                     codec=codec, codec_level=codec_level,
                                     dictionary=dictionary,
                                     string_encodings=string_encodings)
            chunk_metas.append(_ChunkMeta(file=file_name, rows=block.n_rows,
                                          zones=_zone_maps(columns)))
        if column_names is None:
            column_names = sorted(NUMERIC_COLUMNS + ("job_id",))
            empty = {col: _empty_column(col, 0) for col in column_names}
            file_name = _write_chunk(str(directory), 0, empty, format_version,
                                     codec=codec, codec_level=codec_level,
                                     dictionary=dictionary,
                                     string_encodings=string_encodings)
            chunk_metas.append(_ChunkMeta(file=file_name, rows=0, zones={}))
        _backfill_missing_columns(str(directory), chunk_metas, column_names,
                                  format_version, codec=codec,
                                  codec_level=codec_level, dictionary=dictionary,
                                  string_encodings=string_encodings)
        manifest = {
            "format_version": format_version,
            "manifest_sequence": int(manifest_sequence),
            "store_uid": uuid.uuid4().hex,
            "name": name,
            "machines": machines,
            "n_jobs": sum(meta.rows for meta in chunk_metas),
            "chunk_rows": chunk_rows,
            "sorted_by_submit_time": sorted_hint or verified_sorted,
            "columns": column_names,
            "chunks": [meta.to_json() for meta in chunk_metas],
        }
        if format_version == 3:
            manifest["codec"] = codec
            manifest["codec_level"] = codec_level
            manifest["string_encodings"] = string_encodings
            # Chunk blocks are on disk; commit the dictionary *before* the
            # manifest swap so any committed manifest reads correctly.
            dictionary.save(str(directory))
        _swap_manifest(str(directory), manifest)
        return cls(directory)

    # -- appender ----------------------------------------------------------
    @classmethod
    def open_append(cls, directory) -> "StoreAppender":
        """Open an existing v2/v3 store for appending (``repro engine ingest``).

        Raises:
            TraceFormatError: for a v1 store — compressed ``.npz`` chunks are
                immutable archives; convert to v2 or v3 first with
                ``repro engine convert --store <dir> --output <new> --format v2``.
        """
        return StoreAppender(cls(directory))


def _swap_manifest(directory: str, manifest: Dict) -> None:
    """Write the manifest crash-safely: temp file, fsync, atomic rename.

    ``os.replace`` is atomic on POSIX, so a concurrent reader (or a crash at
    any point) sees either the previous manifest or the new one — never a
    partially written file.
    """
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    temporary = manifest_path + ".tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, manifest_path)


class StoreAppender:
    """Appends chunks to an existing v2/v3 store (see :meth:`ChunkedTraceStore.open_append`).

    One :meth:`append` call writes the new chunk files (with zone maps), keeps
    the column set coherent (new columns are backfilled into old chunks, old
    columns are filled into new chunks), re-derives the
    ``sorted_by_submit_time`` flag across the append boundary, bumps
    ``manifest_sequence``, and commits with an atomic manifest swap.

    For v3, new chunks reuse the store's codec and per-column string
    encodings, and unseen string values are *appended* to the dictionary —
    codes already on disk never change, so readers and checkpoints that
    predate the append stay valid.

    A secondary-index sidecar (:mod:`repro.engine.indexes`), when present and
    fresh, is *extended* over the appended chunks after the commit — the
    already-indexed chunks are never re-read.
    """

    def __init__(self, store: ChunkedTraceStore):
        if store.format_version not in (2, 3):
            raise TraceFormatError(
                "%s is a format-v1 (compressed .npz) store; appending requires "
                "format v2 or v3 — convert it first: repro engine convert --store %s "
                "--output <new-dir> --format v2"
                % (store.directory, store.directory))
        self.store = store

    def append(self, source, chunk_rows: Optional[int] = None) -> ChunkedTraceStore:
        """Append jobs/chunks from ``source`` and commit; returns the fresh handle.

        ``source`` may be a :class:`~repro.traces.trace.Trace`,
        :class:`~repro.engine.columnar.ColumnarTrace`, another
        :class:`ChunkedTraceStore`, or any job iterable (consumed streamingly,
        at most ``chunk_rows`` jobs buffered).  ``chunk_rows`` defaults to the
        store's own ``chunk_rows`` manifest entry.  An empty source is a
        no-op: nothing is written and the manifest (and its sequence number)
        stays untouched.
        """
        store = self.store
        chunks_before_append = store.n_chunks
        rows_per_chunk = (store.chunk_rows_target if chunk_rows is None
                          else int(chunk_rows))
        if rows_per_chunk <= 0:
            raise TraceFormatError("chunk_rows must be positive, got %r" % (chunk_rows,))
        blocks = _source_blocks(source, rows_per_chunk)

        # The append stays sorted only if the old store was sorted, every new
        # chunk is internally sorted, and the first new time does not precede
        # the last old one (times are verified, not trusted from hints).
        still_sorted = store.sorted_by_submit_time
        previous_end = -np.inf
        for index in range(store.n_chunks):
            zone = store.chunk_zone(index, "submit_time_s")
            if zone is not None:
                previous_end = max(previous_end, zone[1])

        string_encodings = dict(store.string_encodings)
        new_metas: List[_ChunkMeta] = []
        new_columns: set = set()
        next_index = store.n_chunks
        for block in blocks:
            if block.n_rows == 0:
                continue
            columns = block.materialized()
            times = columns.get("submit_time_s")
            if times is not None and times.size:
                if times[0] < previous_end or np.any(times[:-1] > times[1:]):
                    still_sorted = False
                previous_end = max(previous_end, float(times[-1]))
            file_name = _write_chunk(store.directory, next_index, columns,
                                     format_version=store.format_version,
                                     codec=store.codec,
                                     codec_level=store.codec_level,
                                     dictionary=store._dictionary,
                                     string_encodings=string_encodings)
            new_columns.update(columns)
            new_metas.append(_ChunkMeta(file=file_name, rows=block.n_rows,
                                        zones=_zone_maps(columns)))
            next_index += 1
        if not new_metas:
            return store

        all_metas = store._chunks + new_metas
        column_names = sorted(set(store.columns) | new_columns)
        # Fill the gaps both ways: old chunks missing a newly appeared column,
        # new chunks missing a column only the old data recorded.
        _backfill_missing_columns(store.directory, all_metas, column_names,
                                  store.format_version, codec=store.codec,
                                  codec_level=store.codec_level,
                                  dictionary=store._dictionary,
                                  string_encodings=string_encodings)

        manifest = {
            "format_version": store.format_version,
            "manifest_sequence": store.manifest_sequence + 1,
            "store_uid": store.store_uid or uuid.uuid4().hex,
            "name": store.name,
            "machines": store.machines,
            "n_jobs": sum(meta.rows for meta in all_metas),
            "chunk_rows": store.chunk_rows_target,
            "sorted_by_submit_time": still_sorted,
            "columns": column_names,
            "chunks": [meta.to_json() for meta in all_metas],
        }
        if store.format_version == 3:
            manifest["codec"] = store.codec
            manifest["codec_level"] = store.codec_level
            manifest["string_encodings"] = string_encodings
            # Grown dictionary commits before the manifest swap; extra
            # (not-yet-referenced) entries are harmless if we crash here.
            store._dictionary.save(store.directory)
        _swap_manifest(store.directory, manifest)
        self.store = ChunkedTraceStore(store.directory)
        # Extend any index sidecar over the appended chunks only (old chunks
        # are never re-read).  Runs after the manifest swap: a crash in
        # between leaves the sidecar pinned to the previous sequence, which
        # the staleness check detects — never a silently wrong index.
        from .indexes import extend_indexes

        extend_indexes(self.store, previous_chunks=chunks_before_append)
        return self.store


def _source_blocks(source, chunk_rows: int) -> Iterator[ColumnBlock]:
    """Stream any supported source as column blocks of at most ``chunk_rows``."""
    if isinstance(source, ChunkedTraceStore):
        return source.iter_chunks()
    if isinstance(source, ColumnarTrace):
        return source.iter_chunks(chunk_rows=chunk_rows)
    if isinstance(source, Trace):
        return _job_blocks(iter(source.jobs), chunk_rows)
    return _job_blocks(source, chunk_rows)


def append_store(directory, source, chunk_rows: Optional[int] = None) -> ChunkedTraceStore:
    """Functional alias: append ``source`` to the v2 store at ``directory``."""
    return ChunkedTraceStore.open_append(directory).append(source, chunk_rows=chunk_rows)


def _choose_string_encoding(array: np.ndarray) -> str:
    """Dictionary-encode low-cardinality columns; raw-compress the rest.

    Decided once per column on its first non-empty chunk and persisted in the
    manifest: a unique-per-row column like ``job_id`` would bloat the
    dictionary sidecar to one entry per job and buy nothing, while ``name``/
    ``input_path``-style columns shrink to uint32 codes that consumers can
    fold over directly.  Dictionary coding needs *repetition* to pay for the
    sidecar entries, so a column must show at least 2x reuse in the first
    chunk (distinct <= rows/2) on top of the absolute cardinality cap.
    """
    distinct = np.unique(array).size
    limit = min(max(DICTIONARY_MAX_DISTINCT, array.size // 4), array.size // 2)
    return "dict" if distinct <= limit else "raw"


def _encode_v3_column(name: str, array: np.ndarray, codec: Optional[str],
                      codec_level: Optional[int],
                      dictionary: StoreDictionary,
                      string_encodings: Dict[str, str]) -> bytes:
    """Encode one column of one chunk as a v3 block."""
    codec = codec or DEFAULT_CODEC
    array = np.asarray(array)
    if array.dtype.kind in "US":
        encoding = string_encodings.get(name)
        if encoding is None:
            if array.size == 0:
                # No data to judge cardinality by: write a raw empty block and
                # leave the decision to the first non-empty chunk.
                return pack_block(array, "raw", codec, codec_level)
            encoding = string_encodings[name] = _choose_string_encoding(array)
        if encoding == "dict":
            codes = dictionary.column(name).encode(array)
            return pack_block(codes, "dict", codec, codec_level,
                              raw_bytes=array.nbytes)
        return pack_block(array, "raw", codec, codec_level)
    if name == "submit_time_s" and array.dtype == np.float64:
        return pack_block(array, "delta64", codec, codec_level)
    return pack_block(array, "raw", codec, codec_level)


def _write_chunk(directory: str, index: int, columns: Dict[str, np.ndarray],
                 format_version: int, codec: Optional[str] = None,
                 codec_level: Optional[int] = None,
                 dictionary: Optional[StoreDictionary] = None,
                 string_encodings: Optional[Dict[str, str]] = None) -> str:
    """Write one chunk's columns; returns the manifest ``file`` entry."""
    if format_version == 1:
        file_name = "chunk-%05d.npz" % index
        np.savez_compressed(os.path.join(directory, file_name), **columns)
        return file_name
    prefix = "chunk-%05d" % index
    if format_version == 3:
        for name, array in columns.items():
            block = _encode_v3_column(name, np.asarray(array), codec, codec_level,
                                      dictionary, string_encodings)
            with open(os.path.join(directory, "%s.%s.bin" % (prefix, name)),
                      "wb") as handle:
                handle.write(block)
        return prefix
    for name, array in columns.items():
        np.save(os.path.join(directory, "%s.%s.npy" % (prefix, name)),
                np.ascontiguousarray(array))
    return prefix


def _empty_column(name: str, rows: int) -> np.ndarray:
    if name in NUMERIC_COLUMNS:
        return np.full(rows, np.nan, dtype=float)
    return np.full(rows, "", dtype=np.str_)


def _backfill_missing_columns(directory: str, chunk_metas: List[_ChunkMeta],
                              column_names: List[str], format_version: int,
                              codec: Optional[str] = None,
                              codec_level: Optional[int] = None,
                              dictionary: Optional[StoreDictionary] = None,
                              string_encodings: Optional[Dict[str, str]] = None) -> None:
    """Rewrite early chunks that predate a column first seen in a later chunk."""
    if format_version == 3:
        for meta in chunk_metas:
            for col in column_names:
                path = os.path.join(directory, "%s.%s.bin" % (meta.file, col))
                if not os.path.isfile(path):
                    block = _encode_v3_column(col, _empty_column(col, meta.rows),
                                              codec, codec_level, dictionary,
                                              string_encodings)
                    with open(path, "wb") as handle:
                        handle.write(block)
        return
    if format_version == 2:
        for meta in chunk_metas:
            for col in column_names:
                path = os.path.join(directory, "%s.%s.npy" % (meta.file, col))
                if not os.path.isfile(path):
                    np.save(path, _empty_column(col, meta.rows))
        return
    for meta in chunk_metas:
        path = os.path.join(directory, meta.file)
        with np.load(path, allow_pickle=False) as archive:
            present = set(archive.files)
            missing = [col for col in column_names if col not in present]
            if not missing:
                continue
            data = {nm: archive[nm] for nm in archive.files}
        for col in missing:
            data[col] = _empty_column(col, meta.rows)
        np.savez_compressed(path, **data)


def _job_blocks(jobs: Iterable[Job], chunk_rows: int) -> Iterator[ColumnBlock]:
    """Buffer a job iterable into column blocks of at most ``chunk_rows`` rows."""
    buffers: Dict[str, List] = {column: [] for column in ALL_COLUMNS}
    count = 0
    yielded = False
    for job in jobs:
        _append_job(buffers, job)
        count += 1
        if count >= chunk_rows:
            yield ColumnBlock(_buffers_to_arrays(buffers))
            yielded = True
            buffers = {column: [] for column in ALL_COLUMNS}
            count = 0
    if count or not yielded:
        yield ColumnBlock(_buffers_to_arrays(buffers))


def write_store(directory, source, chunk_rows: int = DEFAULT_CHUNK_ROWS,
                name: Optional[str] = None, machines: Optional[int] = None,
                format_version: int = DEFAULT_FORMAT_VERSION,
                codec: Optional[str] = None,
                codec_level: Optional[int] = None) -> ChunkedTraceStore:
    """Functional alias for :meth:`ChunkedTraceStore.write`."""
    return ChunkedTraceStore.write(directory, source, chunk_rows=chunk_rows,
                                   name=name, machines=machines,
                                   format_version=format_version,
                                   codec=codec, codec_level=codec_level)
