"""Block codecs and dictionary encoding for store format v3.

Format v3 (see :mod:`repro.engine.store`) keeps the chunk-addressable
one-file-per-column-per-chunk layout of v2, but each file is a **compressed
block** instead of a raw ``.npy``::

    magic "RBK1" | uint32 header length | JSON header | compressed payload

The JSON header records the codec, the logical dtype/row count, the value
*encoding* applied before compression, and the uncompressed byte size (what
``engine info --sizes`` reports the compression ratio against).  Three
encodings exist:

* ``raw`` — the array's own bytes (numeric columns, and high-cardinality
  string columns whose fixed-width unicode padding compresses well);
* ``delta64`` — float64 values stored as first-order differences of their
  **uint64 bit patterns**.  Integer deltas round-trip bit-exactly (float
  deltas would not: ``cumsum`` of float differences can drift in the last
  ulp), and the slowly-varying bit patterns of a sorted column such as
  ``submit_time_s`` become small integers that compress far better than the
  raw IEEE-754 stream;
* ``dict`` — ``uint32`` codes into a per-store :class:`StringDictionary`
  persisted in the ``dictionary.json`` manifest sidecar.  Codes are assigned
  in first-appearance order and only ever *appended*, so an append to the
  store never renumbers existing chunks (checkpoints and open handles stay
  valid).

Codecs are a pluggable registry: stdlib ``zlib`` (default) and ``lzma`` are
always present; ``zstd`` and ``lz4`` register themselves only when the
optional ``zstandard`` / ``lz4`` packages are importable — they are never a
hard dependency, and a store written with an unavailable codec fails loudly
at read time with the codec name.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import TraceFormatError

__all__ = [
    "BLOCK_MAGIC",
    "DEFAULT_CODEC",
    "DICTIONARY_NAME",
    "StringDictionary",
    "StoreDictionary",
    "available_codecs",
    "register_codec",
    "pack_block",
    "unpack_block",
    "read_block_header",
    "delta_encode_floats",
    "delta_decode_floats",
]

BLOCK_MAGIC = b"RBK1"
DEFAULT_CODEC = "zlib"
#: The manifest sidecar holding every dictionary-encoded column's value table.
DICTIONARY_NAME = "dictionary.json"

_ENCODINGS = ("raw", "delta64", "dict")


# ---------------------------------------------------------------------------
# Codec registry
# ---------------------------------------------------------------------------
class _Codec:
    __slots__ = ("name", "compress", "decompress")

    def __init__(self, name: str,
                 compress: Callable[[bytes, Optional[int]], bytes],
                 decompress: Callable[[bytes], bytes]):
        self.name = name
        self.compress = compress
        self.decompress = decompress


_CODECS: Dict[str, _Codec] = {}


def register_codec(name: str,
                   compress: Callable[[bytes, Optional[int]], bytes],
                   decompress: Callable[[bytes], bytes]) -> None:
    """Register (or replace) a codec under ``name``.

    ``compress(data, level)`` receives the caller's ``--level`` (``None`` for
    the codec's own default); ``decompress(data)`` must invert it exactly.
    """
    _CODECS[name] = _Codec(name, compress, decompress)


def available_codecs() -> List[str]:
    """Names of every codec usable in this process, in registration order."""
    return list(_CODECS)


def _get_codec(name: str) -> _Codec:
    codec = _CODECS.get(name)
    if codec is None:
        raise TraceFormatError(
            "codec %r is not available in this environment (have: %s); "
            "the store was probably written where the optional package "
            "providing it was installed" % (name, ", ".join(_CODECS)))
    return codec


register_codec("zlib",
               lambda data, level: zlib.compress(data, 6 if level is None else int(level)),
               zlib.decompress)


def _lzma_compress(data: bytes, level: Optional[int]) -> bytes:
    import lzma

    return lzma.compress(data, preset=1 if level is None else int(level))


def _lzma_decompress(data: bytes) -> bytes:
    import lzma

    return lzma.decompress(data)


register_codec("lzma", _lzma_compress, _lzma_decompress)

# Optional codecs: registered only when their package is importable — the
# engine never gains a hard dependency on them.
try:  # pragma: no cover - exercised only where zstandard is installed
    import zstandard as _zstd

    register_codec(
        "zstd",
        lambda data, level: _zstd.ZstdCompressor(
            level=3 if level is None else int(level)).compress(data),
        lambda data: _zstd.ZstdDecompressor().decompress(data))
except ImportError:  # pragma: no cover
    pass

try:  # pragma: no cover - exercised only where lz4 is installed
    import lz4.frame as _lz4_frame

    register_codec(
        "lz4",
        lambda data, level: _lz4_frame.compress(
            data, compression_level=0 if level is None else int(level)),
        _lz4_frame.decompress)
except ImportError:  # pragma: no cover
    pass


# ---------------------------------------------------------------------------
# Delta transform (bit-exact for arbitrary float64, NaN included)
# ---------------------------------------------------------------------------
def delta_encode_floats(array: np.ndarray) -> np.ndarray:
    """float64 → uint64 first-order differences of the raw bit patterns.

    Wrapping uint64 arithmetic is exact, so :func:`delta_decode_floats`
    reproduces every input bit-for-bit — including NaN payloads — which float
    subtraction could not guarantee.
    """
    bits = np.ascontiguousarray(array, dtype=np.float64).view(np.uint64)
    deltas = np.empty_like(bits)
    if bits.size:
        deltas[0] = bits[0]
        np.subtract(bits[1:], bits[:-1], out=deltas[1:])  # wraps mod 2**64
    return deltas


def delta_decode_floats(deltas: np.ndarray) -> np.ndarray:
    """Invert :func:`delta_encode_floats` (exact uint64 prefix sum)."""
    bits = np.cumsum(np.asarray(deltas, dtype=np.uint64), dtype=np.uint64)
    return bits.view(np.float64)


# ---------------------------------------------------------------------------
# Block pack/unpack
# ---------------------------------------------------------------------------
def pack_block(array: np.ndarray, encoding: str, codec_name: str,
               level: Optional[int] = None,
               raw_bytes: Optional[int] = None) -> bytes:
    """Serialize one column of one chunk into a self-describing block.

    ``raw_bytes`` overrides the recorded uncompressed size — dictionary
    columns pass the *string* array's size so the reported compression ratio
    measures against what a v2 store would put on disk, not the codes.
    """
    if encoding not in _ENCODINGS:
        raise TraceFormatError("unknown block encoding %r" % (encoding,))
    codec = _get_codec(codec_name)
    if encoding == "delta64":
        payload_array = delta_encode_floats(array)
        dtype = "<f8"
    elif encoding == "dict":
        payload_array = np.ascontiguousarray(array, dtype=np.uint32)
        dtype = "<u4"
    else:
        payload_array = np.ascontiguousarray(array)
        if payload_array.dtype.kind == "U" and payload_array.dtype.itemsize == 0:
            payload_array = payload_array.astype("<U1")
        dtype = payload_array.dtype.str
    header = {
        "codec": codec.name,
        "encoding": encoding,
        "dtype": dtype,
        "rows": int(array.shape[0]),
        "raw_bytes": int(array.nbytes if raw_bytes is None else raw_bytes),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    payload = codec.compress(payload_array.tobytes(), level)
    return b"".join([BLOCK_MAGIC, struct.pack("<I", len(header_bytes)),
                     header_bytes, payload])


def _split_block(data: bytes, path: str) -> Tuple[Dict, bytes]:
    if len(data) < 8 or data[:4] != BLOCK_MAGIC:
        raise TraceFormatError("%s: not a v3 column block (bad magic)" % (path,))
    (header_len,) = struct.unpack("<I", data[4:8])
    if len(data) < 8 + header_len:
        raise TraceFormatError("%s: truncated v3 column block header" % (path,))
    try:
        header = json.loads(data[8:8 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError("%s: invalid v3 block header: %s" % (path, exc))
    return header, data[8 + header_len:]


def unpack_block(data: bytes, path: str = "<block>") -> Tuple[Dict, np.ndarray]:
    """Decode one block back into ``(header, array)``.

    ``dict`` blocks return the **uint32 code array** — attaching the store
    dictionary (and decoding to strings lazily) is the reader's job; that is
    the code-native decode path.
    """
    header, payload = _split_block(data, path)
    codec = _get_codec(header.get("codec", DEFAULT_CODEC))
    try:
        raw = codec.decompress(payload)
    except Exception as exc:  # codec libraries raise their own error types
        raise TraceFormatError("%s: cannot decompress %s block: %s"
                               % (path, codec.name, exc))
    encoding = header.get("encoding", "raw")
    rows = int(header.get("rows", 0))
    if encoding == "delta64":
        array = delta_decode_floats(np.frombuffer(raw, dtype=np.uint64))
    elif encoding == "dict":
        array = np.frombuffer(raw, dtype=np.uint32)
    elif encoding == "raw":
        array = np.frombuffer(raw, dtype=np.dtype(header["dtype"]))
    else:
        raise TraceFormatError("%s: unknown block encoding %r" % (path, encoding))
    if array.shape[0] != rows:
        raise TraceFormatError("%s: block decodes to %d rows, header says %d"
                               % (path, array.shape[0], rows))
    return header, array


def read_block_header(path: str) -> Dict:
    """Read just the JSON header of a block file (for size reporting)."""
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(8)
            if len(prefix) < 8 or prefix[:4] != BLOCK_MAGIC:
                raise TraceFormatError("%s: not a v3 column block (bad magic)"
                                       % (path,))
            (header_len,) = struct.unpack("<I", prefix[4:8])
            header_bytes = handle.read(header_len)
    except IOError as exc:
        raise TraceFormatError("%s: cannot read block header: %s" % (path, exc))
    try:
        return json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError("%s: invalid v3 block header: %s" % (path, exc))


# ---------------------------------------------------------------------------
# Dictionary encoding
# ---------------------------------------------------------------------------
class StringDictionary:
    """One column's value table: code (uint32) ↔ string, append-only.

    Codes are positions in :attr:`values`; :meth:`encode` admits unseen
    values by appending, so growth is **monotonic** — a code minted before an
    append means the same string after it.  The decoded array and the
    value→code index are both built lazily (readers that fold over codes
    never pay for the reverse map).
    """

    __slots__ = ("values", "_array", "_index")

    def __init__(self, values: Optional[List[str]] = None):
        self.values: List[str] = list(values or [])
        self._array: Optional[np.ndarray] = None
        self._index: Optional[Dict[str, int]] = None

    def __len__(self) -> int:
        return len(self.values)

    def _ensure_index(self) -> Dict[str, int]:
        if self._index is None or len(self._index) != len(self.values):
            self._index = {value: code for code, value in enumerate(self.values)}
        return self._index

    def lookup(self, value: str) -> Optional[int]:
        """The code of ``value``, or ``None`` when it is not in the table."""
        return self._ensure_index().get(value)

    def array(self) -> np.ndarray:
        """The value table as a NumPy string array (cached per table size)."""
        if self._array is None or self._array.shape[0] != len(self.values):
            self._array = (np.asarray(self.values, dtype=np.str_)
                           if self.values else np.zeros(0, dtype="<U1"))
        return self._array

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Materialize a code array into strings (the lazy string path)."""
        codes = np.asarray(codes)
        if codes.size == 0:
            return np.zeros(0, dtype="<U1")
        if int(codes.max(initial=0)) >= len(self.values):
            raise TraceFormatError(
                "dictionary code %d out of range (table has %d values); the "
                "dictionary sidecar is older than the chunk data"
                % (int(codes.max()), len(self.values)))
        return self.array()[codes]

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Map a string array to codes, appending unseen values to the table.

        Vectorized through the chunk's distinct values: the per-row cost is
        one ``np.unique`` plus an integer gather, and the Python-level table
        probe runs once per *distinct* value.
        """
        values = np.asarray(values)
        if values.size == 0:
            return np.zeros(0, dtype=np.uint32)
        unique, inverse = np.unique(values, return_inverse=True)
        index = self._ensure_index()
        codes_for_unique = np.empty(unique.size, dtype=np.uint32)
        for position, value in enumerate(unique.tolist()):
            code = index.get(value)
            if code is None:
                code = len(self.values)
                self.values.append(value)
                index[value] = code
            codes_for_unique[position] = code
        return codes_for_unique[inverse.ravel()]


class StoreDictionary:
    """Every dictionary-encoded column's table, persisted as one sidecar.

    The sidecar is written *before* the manifest swap: a crash in between
    leaves a table with extra (unreferenced) entries, which is harmless —
    codes only grow, so any committed manifest reads correctly against the
    sidecar on disk or any later version of it.
    """

    VERSION = 1

    def __init__(self, columns: Optional[Dict[str, StringDictionary]] = None):
        self.columns: Dict[str, StringDictionary] = dict(columns or {})

    def column(self, name: str) -> StringDictionary:
        """The (possibly fresh) table for one column — writers grow it."""
        table = self.columns.get(name)
        if table is None:
            table = self.columns[name] = StringDictionary()
        return table

    def get(self, name: str) -> Optional[StringDictionary]:
        return self.columns.get(name)

    @classmethod
    def load(cls, directory: str) -> "StoreDictionary":
        path = os.path.join(directory, DICTIONARY_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except IOError as exc:
            raise TraceFormatError("%s: cannot read store dictionary: %s"
                                   % (path, exc))
        except json.JSONDecodeError as exc:
            raise TraceFormatError("%s: invalid store dictionary: %s" % (path, exc))
        if document.get("dictionary_version") != cls.VERSION:
            raise TraceFormatError("%s: unsupported dictionary version %r"
                                   % (path, document.get("dictionary_version")))
        return cls({name: StringDictionary(values)
                    for name, values in document.get("columns", {}).items()})

    def save(self, directory: str) -> None:
        """Write the sidecar crash-safely (temp file, fsync, atomic rename)."""
        path = os.path.join(directory, DICTIONARY_NAME)
        temporary = path + ".tmp"
        document = {
            "dictionary_version": self.VERSION,
            "columns": {name: table.values
                        for name, table in sorted(self.columns.items())},
        }
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)

    def sidecar_bytes(self, directory: str) -> int:
        path = os.path.join(directory, DICTIONARY_NAME)
        return os.path.getsize(path) if os.path.isfile(path) else 0
