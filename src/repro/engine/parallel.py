"""Chunk-parallel query execution over a chunked trace store.

The executor fans the chunks of a :class:`~repro.engine.store.ChunkedTraceStore`
out over a ``multiprocessing`` pool.  Each worker opens the store **once** —
a pool initializer parses the manifest and caches the handle in the worker
process — and reuses it across every chunk batch it is handed, so only the
picklable task payloads (a :class:`~repro.engine.operators.Query`, or the
shared-scan pipeline's consumer lists) cross the process boundary.  Workers
evaluate their chunk subset with the same serial ``execute`` path and return
partial aggregate states; the parent merges partials with
:meth:`AggregateState.merge` — exact for count/sum/min/max/mean and for the
fixed-bin percentile/CDF sketches.

Only aggregate-shaped queries (global or grouped) parallelize; ``top-k``,
``limit`` and plain collection fall back to the serial scan, which for
``limit`` is the better plan anyway (it short-circuits).
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Tuple

from ..errors import AnalysisError
from .aggregates import AggregateState
from .operators import Query, QueryResult, execute
from .store import ChunkedTraceStore

__all__ = ["ParallelExecutor", "get_worker_store"]

#: Per-worker store handle, opened once by :func:`_init_worker_store` and
#: reused for every task the worker processes (manifest parsed once).
_WORKER_STORE: Optional[ChunkedTraceStore] = None


def _init_worker_store(directory: str) -> None:
    """Pool initializer: open the store once for this worker process."""
    global _WORKER_STORE
    _WORKER_STORE = ChunkedTraceStore(directory)


def get_worker_store(directory: Optional[str] = None) -> ChunkedTraceStore:
    """The cached store handle (re-opened only when the directory changes)."""
    global _WORKER_STORE
    if directory is not None and (_WORKER_STORE is None
                                  or _WORKER_STORE.directory != str(directory)):
        _WORKER_STORE = ChunkedTraceStore(directory)
    if _WORKER_STORE is None:
        raise AnalysisError("worker store was never initialized")
    return _WORKER_STORE


def _worker_partials(task: Tuple[Query, List[int]]):
    """Evaluate a chunk subset and return picklable partial state.

    Runs in a worker process whose initializer already opened the store.
    Returns ``(states, groups, counters)`` where ``states``/``groups`` hold
    :class:`AggregateState` partials (not results, so the parent can merge
    them exactly).
    """
    query, chunk_indices = task
    store = get_worker_store()
    states, groups, counters = _partial_execute(store, query, chunk_indices)
    return states, groups, counters


def _partial_execute(store, query: Query, chunk_indices):
    """Like :func:`execute` but returning unmerged partial states."""
    from .operators import (_apply_filters, _iter_source_chunks, _make_states,
                            _update_groups, _update_states)

    columns = query.required_columns()
    states = _make_states(query)
    groups: Dict[object, Dict[str, AggregateState]] = {}
    counters = {"rows_scanned": 0, "rows_matched": 0, "chunks_scanned": 0, "chunks_skipped": 0}
    for block, skipped in _iter_source_chunks(store, columns, query.predicates, chunk_indices):
        if skipped:
            counters["chunks_skipped"] += 1
            continue
        counters["chunks_scanned"] += 1
        counters["rows_scanned"] += block.n_rows
        block = _apply_filters(block, query.predicates)
        counters["rows_matched"] += block.n_rows
        if block.n_rows == 0:
            continue
        if query.group_column is None:
            _update_states(states, block, query)
        else:
            _update_groups(groups, block, query)
    return states, groups, counters


class ParallelExecutor:
    """Fan chunk scans out over worker processes and merge the partials.

    Args:
        processes: worker count; defaults to ``min(n_chunks, cpu_count)``.
    """

    def __init__(self, processes: Optional[int] = None):
        if processes is not None and processes < 1:
            raise AnalysisError("ParallelExecutor needs at least one process")
        self.processes = processes

    def effective_workers(self, n_tasks: int) -> int:
        """Worker count for ``n_tasks`` independent tasks (at least one)."""
        n_workers = self.processes or min(n_tasks, multiprocessing.cpu_count())
        return max(1, min(n_workers, n_tasks))

    def map(self, func, tasks: List, store_directory: Optional[str] = None,
            chunksize: Optional[int] = None) -> List:
        """Generic fan-out: apply a picklable ``func`` to each task item.

        Used by the scenario-sweep runner, the shared-scan pipeline and the
        sharded replayer to spread independent work items over worker
        processes.  When ``store_directory`` is given, each worker opens that
        chunked store once in its pool initializer and ``func`` can fetch the
        cached handle via :func:`get_worker_store` — instead of re-parsing
        the manifest per task.  ``chunksize`` is forwarded to
        :meth:`multiprocessing.pool.Pool.map`; it defaults to 1 so a handful
        of long, uneven tasks (e.g. replay shards, where early windows are
        often denser) never batch onto one worker while others idle.  Falls
        back to a serial loop when one worker (or one task) makes a pool
        pointless, so results are identical either way.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        n_workers = self.effective_workers(len(tasks))
        if n_workers == 1 or len(tasks) == 1:
            if store_directory is not None:
                # Parity with the pool path: (re-)open the handle once per
                # map call, so a store rewritten in place between calls is
                # never read through a stale manifest.
                _init_worker_store(store_directory)
            return [func(task) for task in tasks]
        initializer = _init_worker_store if store_directory is not None else None
        initargs = (store_directory,) if store_directory is not None else ()
        with multiprocessing.Pool(processes=n_workers, initializer=initializer,
                                  initargs=initargs) as pool:
            return pool.map(func, tasks, chunksize=chunksize or 1)

    def run(self, store: ChunkedTraceStore, query: Query) -> QueryResult:
        """Execute ``query`` against ``store``; parallel for aggregate queries."""
        query.validate()
        if not query.is_aggregate_only():
            return execute(store, query)
        n_chunks = store.n_chunks
        n_workers = self.effective_workers(n_chunks)
        if n_workers == 1 or n_chunks <= 1:
            return execute(store, query)

        # Contiguous chunk ranges keep each worker's reads sequential on disk.
        tasks = []
        per_worker = -(-n_chunks // n_workers)
        for start in range(0, n_chunks, per_worker):
            indices = list(range(start, min(n_chunks, start + per_worker)))
            tasks.append((query, indices))

        partials = self.map(_worker_partials, tasks, store_directory=store.directory)
        return _merge_partials(query, partials)


def _merge_partials(query: Query, partials) -> QueryResult:
    result = QueryResult()
    merged_states: Optional[Dict[str, AggregateState]] = None
    merged_groups: Dict[object, Dict[str, AggregateState]] = {}
    for states, groups, counters in partials:
        result.rows_scanned += counters["rows_scanned"]
        result.rows_matched += counters["rows_matched"]
        result.chunks_scanned += counters["chunks_scanned"]
        result.chunks_skipped += counters["chunks_skipped"]
        if query.group_column is None:
            if merged_states is None:
                merged_states = states
            else:
                for label in merged_states:
                    merged_states[label].merge(states[label])
        else:
            for key, group in groups.items():
                target = merged_groups.get(key)
                if target is None:
                    merged_groups[key] = group
                else:
                    for label in target:
                        target[label].merge(group[label])
    if query.group_column is None:
        merged_states = merged_states or {}
        result.aggregates = {label: state.result() for label, state in merged_states.items()}
    else:
        result.groups = {
            key: {label: state.result() for label, state in group.items()}
            for key, group in sorted(merged_groups.items(), key=lambda item: str(item[0]))
        }
    return result
