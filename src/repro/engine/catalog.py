"""Store catalog: named :class:`ChunkedTraceStore` directories under one root.

The service daemon (:mod:`repro.service`) and the federation layer
(:mod:`repro.engine.federation`, :mod:`repro.core.federation`) both work over
*named* stores; a catalog is simply a directory whose immediate
subdirectories each contain a store ``manifest.json``::

    catalog/
      fb2010/manifest.json + chunks...
      cc-b/manifest.json + chunks...
      .service/            <- ignored (no manifest): daemon scratch state

Entries are discovered lazily and re-discovered on :meth:`refresh`, so stores
dropped into (or deleted from) the catalog directory while the daemon runs are
picked up without a restart.  :meth:`CatalogEntry.open` returns a fresh
:class:`ChunkedTraceStore` handle whenever the manifest changed on disk
(detected via mtime + size), and the *previous* handle keeps working — v2/v3
appends never rewrite committed chunk files, and a v3 append only ever
*extends* the dictionary sidecar (codes already on disk keep their meaning),
so an in-flight scan on an old handle completes against the manifest it
opened with while new requests see the grown store.

Cluster / epoch metadata
------------------------
The paper's seven-cluster comparison (§7) and its FB-2009 → FB-2010 evolution
study (§4.1) need each member tagged with *which cluster* it came from and
*which time epoch* it covers.  A member named ``<cluster>@<epoch>`` carries
both implicitly (``fb@2009``, ``fb@2010``); a bare name is its own cluster
with no epoch.  An optional ``catalog.json`` next to the members overrides
either field per member::

    {"members": {"fb2010": {"cluster": "fb", "epoch": "2010"}}}

Epochs order lexicographically within a cluster (zero-pad numeric epochs),
which is what :meth:`StoreCatalog.epochs` returns and what the federation
drift report walks pair-by-pair.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from ..errors import TraceFormatError
from .store import MANIFEST_NAME, ChunkedTraceStore

__all__ = ["CATALOG_METADATA_NAME", "CatalogEntry", "StoreCatalog"]

#: Optional per-catalog metadata sidecar (cluster/epoch overrides).
CATALOG_METADATA_NAME = "catalog.json"


def _split_member_name(name: str) -> "tuple[str, Optional[str]]":
    """Default cluster/epoch of a member name: split on the last ``@``."""
    if "@" in name:
        cluster, _, epoch = name.rpartition("@")
        if cluster and epoch:
            return cluster, epoch
    return name, None


class CatalogEntry:
    """One named store in a catalog; caches the open handle per manifest state.

    Attributes:
        name: the member (subdirectory) name.
        directory: absolute or catalog-relative store directory.
        cluster: which deployment the member belongs to (defaults to the part
            of the name before the last ``@``, or the whole name).
        epoch: which time epoch the member covers, or ``None``; epochs of one
            cluster order lexicographically.
    """

    def __init__(self, name: str, directory: str,
                 cluster: Optional[str] = None, epoch: Optional[str] = None):
        self.name = name
        self.directory = directory
        default_cluster, default_epoch = _split_member_name(name)
        self.cluster = default_cluster if cluster is None else str(cluster)
        self.epoch = default_epoch if epoch is None else str(epoch)
        self._handle: Optional[ChunkedTraceStore] = None
        self._manifest_state: Optional[tuple] = None

    def _current_manifest_state(self) -> Optional[tuple]:
        try:
            stat = os.stat(os.path.join(self.directory, MANIFEST_NAME))
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def open(self) -> ChunkedTraceStore:
        """A :class:`ChunkedTraceStore` handle on the current manifest.

        Re-opens only when the manifest file changed since the cached handle
        was created.  Raises :class:`TraceFormatError` when the directory no
        longer holds a readable store.
        """
        state = self._current_manifest_state()
        if self._handle is None or state != self._manifest_state:
            self._handle = ChunkedTraceStore(self.directory)
            self._manifest_state = state
        return self._handle

    def info(self) -> Dict:
        """The store's machine-readable metadata plus its catalog identity."""
        info = self.open().info()
        info["catalog_name"] = self.name
        info["cluster"] = self.cluster
        info["epoch"] = self.epoch
        return info


class StoreCatalog:
    """Directory of named stores (see module docs for the on-disk layout)."""

    def __init__(self, directory):
        self.directory = str(directory)
        if not os.path.isdir(self.directory):
            raise TraceFormatError("catalog directory %s does not exist"
                                   % (self.directory,))
        self._entries: Dict[str, CatalogEntry] = {}
        self.refresh()

    def _member_metadata(self) -> Dict[str, Dict]:
        """Per-member overrides from ``catalog.json`` (missing file: empty)."""
        path = os.path.join(self.directory, CATALOG_METADATA_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError:
            return {}
        except json.JSONDecodeError as exc:
            raise TraceFormatError("catalog metadata %s is not valid JSON: %s"
                                   % (path, exc))
        members = document.get("members", {})
        if not isinstance(members, dict):
            raise TraceFormatError('catalog metadata %s: "members" must be an '
                                   "object mapping member names" % (path,))
        return members

    def refresh(self) -> None:
        """Rescan the catalog directory for store subdirectories."""
        metadata = self._member_metadata()
        found: Dict[str, CatalogEntry] = {}
        for name in sorted(os.listdir(self.directory)):
            directory = os.path.join(self.directory, name)
            if not os.path.isfile(os.path.join(directory, MANIFEST_NAME)):
                continue
            overrides = metadata.get(name, {})
            entry = self._entries.get(name)
            if entry is None:
                entry = CatalogEntry(name, directory,
                                     cluster=overrides.get("cluster"),
                                     epoch=overrides.get("epoch"))
            else:
                # Keep the cached handle; re-apply metadata, which may have
                # changed on disk since the entry was first discovered.
                default_cluster, default_epoch = _split_member_name(name)
                entry.cluster = str(overrides.get("cluster") or default_cluster)
                epoch = overrides.get("epoch")
                entry.epoch = default_epoch if epoch is None else str(epoch)
            found[name] = entry
        self._entries = found

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def entry(self, name: str) -> CatalogEntry:
        """The entry for ``name``; rescans once before failing.

        Raises:
            TraceFormatError: when no store of that name exists.
        """
        if name not in self._entries:
            self.refresh()
        if name not in self._entries:
            raise TraceFormatError(
                "catalog %s has no store named %r (have: %s)"
                % (self.directory, name, ", ".join(self.names()) or "<none>"))
        return self._entries[name]

    def open(self, name: str) -> ChunkedTraceStore:
        return self.entry(name).open()

    def members(self) -> List[CatalogEntry]:
        """Every entry, in member-name order."""
        return [self._entries[name] for name in self.names()]

    def clusters(self) -> List[str]:
        """Distinct cluster names, sorted."""
        return sorted({entry.cluster for entry in self._entries.values()})

    def epochs(self, cluster: str) -> List[CatalogEntry]:
        """The cluster's members in epoch order (lexicographic; no-epoch first).

        The federation drift report compares consecutive pairs of this list —
        the §4.1 FB-2009 → FB-2010 walk generalized to any epoch chain.
        """
        members = [entry for entry in self.members() if entry.cluster == cluster]
        return sorted(members, key=lambda entry: (entry.epoch is not None,
                                                  entry.epoch or "", entry.name))

    def info(self) -> List[Dict]:
        """Machine-readable metadata for every store in the catalog."""
        return [self._entries[name].info() for name in self.names()]
