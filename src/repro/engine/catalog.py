"""Store catalog: named :class:`ChunkedTraceStore` directories under one root.

The service daemon (:mod:`repro.service`) serves *named* stores; a catalog is
simply a directory whose immediate subdirectories each contain a store
``manifest.json``::

    catalog/
      fb2010/manifest.json + chunks...
      cc-b/manifest.json + chunks...
      .service/            <- ignored (no manifest): daemon scratch state

Entries are discovered lazily and re-discovered on :meth:`refresh`, so stores
dropped into (or deleted from) the catalog directory while the daemon runs are
picked up without a restart.  :meth:`CatalogEntry.open` returns a fresh
:class:`ChunkedTraceStore` handle whenever the manifest changed on disk
(detected via mtime + size), and the *previous* handle keeps working — v2/v3
appends never rewrite committed chunk files, and a v3 append only ever
*extends* the dictionary sidecar (codes already on disk keep their meaning),
so an in-flight scan on an old handle completes against the manifest it
opened with while new requests see the grown store.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..errors import TraceFormatError
from .store import MANIFEST_NAME, ChunkedTraceStore

__all__ = ["CatalogEntry", "StoreCatalog"]


class CatalogEntry:
    """One named store in a catalog; caches the open handle per manifest state."""

    def __init__(self, name: str, directory: str):
        self.name = name
        self.directory = directory
        self._handle: Optional[ChunkedTraceStore] = None
        self._manifest_state: Optional[tuple] = None

    def _current_manifest_state(self) -> Optional[tuple]:
        try:
            stat = os.stat(os.path.join(self.directory, MANIFEST_NAME))
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def open(self) -> ChunkedTraceStore:
        """A :class:`ChunkedTraceStore` handle on the current manifest.

        Re-opens only when the manifest file changed since the cached handle
        was created.  Raises :class:`TraceFormatError` when the directory no
        longer holds a readable store.
        """
        state = self._current_manifest_state()
        if self._handle is None or state != self._manifest_state:
            self._handle = ChunkedTraceStore(self.directory)
            self._manifest_state = state
        return self._handle

    def info(self) -> Dict:
        """The store's machine-readable metadata plus its catalog name."""
        info = self.open().info()
        info["catalog_name"] = self.name
        return info


class StoreCatalog:
    """Directory of named stores (see module docs for the on-disk layout)."""

    def __init__(self, directory):
        self.directory = str(directory)
        if not os.path.isdir(self.directory):
            raise TraceFormatError("catalog directory %s does not exist"
                                   % (self.directory,))
        self._entries: Dict[str, CatalogEntry] = {}
        self.refresh()

    def refresh(self) -> None:
        """Rescan the catalog directory for store subdirectories."""
        found: Dict[str, CatalogEntry] = {}
        for name in sorted(os.listdir(self.directory)):
            directory = os.path.join(self.directory, name)
            if not os.path.isfile(os.path.join(directory, MANIFEST_NAME)):
                continue
            found[name] = self._entries.get(name) or CatalogEntry(name, directory)
        self._entries = found

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def entry(self, name: str) -> CatalogEntry:
        """The entry for ``name``; rescans once before failing.

        Raises:
            TraceFormatError: when no store of that name exists.
        """
        if name not in self._entries:
            self.refresh()
        if name not in self._entries:
            raise TraceFormatError(
                "catalog %s has no store named %r (have: %s)"
                % (self.directory, name, ", ".join(self.names()) or "<none>"))
        return self._entries[name]

    def open(self, name: str) -> ChunkedTraceStore:
        return self.entry(name).open()

    def info(self) -> List[Dict]:
        """Machine-readable metadata for every store in the catalog."""
        return [self._entries[name].info() for name in self.names()]
