"""Cloudera customer workload specifications (CC-a .. CC-e).

The five Cloudera customer workloads (Table 1 of the paper) come from
business-critical Hadoop clusters in e-commerce, telecommunications, media and
retail.  The job-class populations and centroids below are the Table 2 rows;
the arrival and access parameters encode the per-workload observations in
§4–§5 (Zipf slope ≈ 5/6 everywhere, re-access fractions of up to 78% for
CC-c/CC-d/CC-e, peak-to-median ratios ranging up to 260:1, diurnal signal
visible in CC-e utilization).

CC-a does not record file paths; all five record job names.
"""

from __future__ import annotations

from ..units import DAY
from .spec import AccessSpec, ArrivalSpec, JobClassSpec, NameMixEntry, WorkloadSpec

__all__ = ["CC_A", "CC_B", "CC_C", "CC_D", "CC_E", "CLOUDERA_WORKLOADS"]

_ROW = JobClassSpec.from_table_row


# ---------------------------------------------------------------------------
# CC-a: <100 machines, 1 month, 5,759 jobs, 80 TB moved.
# ---------------------------------------------------------------------------
_CC_A_CLASSES = (
    _ROW("Small jobs", 5525, "51 MB", "0", "3.9 MB", "39 sec", 33, 0, dispersion=2.0),
    _ROW("Transform", 194, "14 GB", "12 GB", "10 GB", "35 min", 65100, 15410),
    _ROW("Map only, huge", 31, "1.2 TB", "0", "27 GB", "2 hrs 30 min", 437615, 0),
    _ROW("Transform and aggregate", 9, "273 GB", "185 GB", "21 MB", "4 hrs 30 min", 191351, 831181),
)

_CC_A_NAME_MIX = (
    NameMixEntry("piglatin", "pig", 0.30),
    NameMixEntry("insert", "hive", 0.25),
    NameMixEntry("oozie", "oozie", 0.18),
    NameMixEntry("select", "hive", 0.12),
    NameMixEntry("bmdailyjob", "native", 0.08),
    NameMixEntry("distcp", "native", 0.07),
)

CC_A = WorkloadSpec(
    name="CC-a",
    machines=90,
    trace_length_s=30 * DAY,
    job_classes=_CC_A_CLASSES,
    name_mix=_CC_A_NAME_MIX,
    arrival=ArrivalSpec(diurnal_amplitude=0.2, weekend_factor=0.9, burstiness=0.6,
                        peak_to_median=260.0),
    access=AccessSpec(zipf_slope=5.0 / 6.0, distinct_input_files=4000,
                      distinct_output_files=4000, input_reaccess_fraction=0.2,
                      output_reaccess_fraction=0.1, reaccess_halflife_s=3 * 3600.0),
    has_names=True,
    has_input_paths=False,
    has_output_paths=False,
    description="Cloudera customer a: small cluster, mixed Pig/Hive/Oozie analytics.",
)


# ---------------------------------------------------------------------------
# CC-b: 300 machines, 9 days, 22,974 jobs, 600 TB moved.
# ---------------------------------------------------------------------------
_CC_B_CLASSES = (
    _ROW("Small jobs", 21210, "4.6 KB", "0", "4.7 KB", "23 sec", 11, 0, dispersion=1.3),
    _ROW("Transform, small", 1565, "41 GB", "10 GB", "2.1 GB", "4 min", 15837, 12392),
    _ROW("Transform, medium", 165, "123 GB", "43 GB", "13 GB", "6 min", 36265, 31389),
    _ROW("Aggregate and transform", 31, "4.7 TB", "374 MB", "24 MB", "9 min", 876786, 705),
    _ROW("Aggregate", 3, "600 GB", "1.6 GB", "550 MB", "6 hrs 45 min", 3092977, 230976),
)

_CC_B_NAME_MIX = (
    NameMixEntry("oozie", "oozie", 0.32),
    NameMixEntry("piglatin", "pig", 0.26),
    NameMixEntry("select", "hive", 0.16),
    NameMixEntry("insert", "hive", 0.10),
    NameMixEntry("flow", "native", 0.08),
    NameMixEntry("metrodataextractor", "native", 0.08),
)

CC_B = WorkloadSpec(
    name="CC-b",
    machines=300,
    trace_length_s=9 * DAY,
    job_classes=_CC_B_CLASSES,
    name_mix=_CC_B_NAME_MIX,
    arrival=ArrivalSpec(diurnal_amplitude=0.3, weekend_factor=0.85, burstiness=0.8,
                        peak_to_median=100.0),
    access=AccessSpec(zipf_slope=5.0 / 6.0, distinct_input_files=15000,
                      distinct_output_files=15000, input_reaccess_fraction=0.25,
                      output_reaccess_fraction=0.10, reaccess_halflife_s=3 * 3600.0),
    has_names=True,
    has_input_paths=True,
    has_output_paths=True,
    description="Cloudera customer b: Oozie/Pig dominated ETL over a 300-node cluster.",
)


# ---------------------------------------------------------------------------
# CC-c: 700 machines, 1 month, 21,030 jobs, 18 PB moved.
# ---------------------------------------------------------------------------
_CC_C_CLASSES = (
    _ROW("Small jobs", 19975, "5.7 GB", "3.0 GB", "200 MB", "4 min", 10933, 6586, dispersion=1.3),
    _ROW("Transform, light reduce", 477, "1.0 TB", "4.2 TB", "920 GB", "47 min", 1927432, 462070),
    _ROW("Aggregate", 246, "887 GB", "57 GB", "22 MB", "4 hrs 14 min", 569391, 158930),
    _ROW("Transform, heavy reduce", 197, "1.1 TB", "3.7 TB", "3.7 TB", "53 min", 1895403, 886347),
    _ROW("Aggregate, large", 105, "32 GB", "37 GB", "2.4 GB", "2 hrs 11 min", 14865972, 369846),
    _ROW("Long jobs", 23, "3.7 TB", "562 GB", "37 GB", "17 hrs", 9779062, 14989871),
    _ROW("Aggregate, huge", 7, "220 TB", "18 GB", "2.8 GB", "5 hrs 15 min", 66839710, 758957),
)

_CC_C_NAME_MIX = (
    NameMixEntry("piglatin", "pig", 0.35),
    NameMixEntry("select", "hive", 0.22),
    NameMixEntry("flow", "native", 0.14),
    NameMixEntry("sywr", "native", 0.10),
    NameMixEntry("twitch", "native", 0.08),
    NameMixEntry("snapshot", "native", 0.06),
    NameMixEntry("insert", "hive", 0.05),
)

CC_C = WorkloadSpec(
    name="CC-c",
    machines=700,
    trace_length_s=30 * DAY,
    job_classes=_CC_C_CLASSES,
    name_mix=_CC_C_NAME_MIX,
    arrival=ArrivalSpec(diurnal_amplitude=0.25, weekend_factor=0.9, burstiness=0.85,
                        peak_to_median=150.0),
    access=AccessSpec(zipf_slope=5.0 / 6.0, distinct_input_files=60000,
                      distinct_output_files=60000, input_reaccess_fraction=0.55,
                      output_reaccess_fraction=0.23, reaccess_halflife_s=2.5 * 3600.0),
    has_names=True,
    has_input_paths=True,
    has_output_paths=True,
    description="Cloudera customer c: largest Cloudera cluster, heavy Pig/Hive transforms.",
)


# ---------------------------------------------------------------------------
# CC-d: 400-500 machines, 2+ months, 13,283 jobs, 8 PB moved.
# ---------------------------------------------------------------------------
_CC_D_CLASSES = (
    _ROW("Small jobs", 12736, "3.1 GB", "753 MB", "231 MB", "67 sec", 7376, 5085, dispersion=1.3),
    _ROW("Expand and aggregate", 214, "633 GB", "2.9 TB", "332 GB", "11 min", 544433, 352692),
    _ROW("Transform and aggregate", 162, "5.3 GB", "6.1 TB", "33 GB", "23 min", 2011911, 910673),
    _ROW("Expand and transform", 128, "1.0 TB", "6.2 TB", "6.7 TB", "20 min", 847286, 900395),
    _ROW("Aggregate", 43, "17 GB", "4.0 GB", "1.7 GB", "36 min", 6259747, 7067),
)

_CC_D_NAME_MIX = (
    NameMixEntry("piglatin", "pig", 0.30),
    NameMixEntry("insert", "hive", 0.24),
    NameMixEntry("flow", "native", 0.14),
    NameMixEntry("edwsequence", "native", 0.12),
    NameMixEntry("importjob", "native", 0.08),
    NameMixEntry("snapshot", "native", 0.07),
    NameMixEntry("edw", "native", 0.05),
)

CC_D = WorkloadSpec(
    name="CC-d",
    machines=450,
    trace_length_s=int(2.3 * 30) * DAY,
    job_classes=_CC_D_CLASSES,
    name_mix=_CC_D_NAME_MIX,
    arrival=ArrivalSpec(diurnal_amplitude=0.2, weekend_factor=0.9, burstiness=0.9,
                        peak_to_median=200.0),
    access=AccessSpec(zipf_slope=5.0 / 6.0, distinct_input_files=30000,
                      distinct_output_files=30000, input_reaccess_fraction=0.55,
                      output_reaccess_fraction=0.22, reaccess_halflife_s=3 * 3600.0),
    has_names=True,
    has_input_paths=True,
    has_output_paths=True,
    description="Cloudera customer d: enterprise-data-warehouse style processing.",
)


# ---------------------------------------------------------------------------
# CC-e: 100 machines, 9 days, 10,790 jobs, 590 TB moved.
# ---------------------------------------------------------------------------
_CC_E_CLASSES = (
    _ROW("Small jobs", 10243, "8.1 MB", "0", "970 KB", "18 sec", 15, 0, dispersion=1.3),
    _ROW("Transform, large", 452, "166 GB", "180 GB", "118 GB", "31 min", 35606, 38194),
    _ROW("Transform, very large", 68, "543 GB", "502 GB", "166 GB", "2 hrs", 115077, 108745),
    _ROW("Map only summary", 20, "3.0 TB", "0", "200", "5 min", 137077, 0),
    _ROW("Map only transform", 7, "6.7 TB", "2.3 GB", "6.7 TB", "3 hrs 47 min", 335807, 0),
)

_CC_E_NAME_MIX = (
    NameMixEntry("insert", "hive", 0.38),
    NameMixEntry("select", "hive", 0.27),
    NameMixEntry("edwsequence", "native", 0.08),
    NameMixEntry("queryresult", "native", 0.07),
    NameMixEntry("ajax", "native", 0.06),
    NameMixEntry("si", "native", 0.05),
    NameMixEntry("iteminquiry", "native", 0.05),
    NameMixEntry("search", "native", 0.04),
)

CC_E = WorkloadSpec(
    name="CC-e",
    machines=100,
    trace_length_s=9 * DAY,
    job_classes=_CC_E_CLASSES,
    name_mix=_CC_E_NAME_MIX,
    arrival=ArrivalSpec(diurnal_amplitude=0.45, weekend_factor=0.75, burstiness=0.7,
                        peak_to_median=60.0),
    access=AccessSpec(zipf_slope=5.0 / 6.0, distinct_input_files=8000,
                      distinct_output_files=8000, input_reaccess_fraction=0.58,
                      output_reaccess_fraction=0.20, reaccess_halflife_s=2 * 3600.0),
    has_names=True,
    has_input_paths=True,
    has_output_paths=True,
    description="Cloudera customer e: Hive-dominated interactive retail analytics.",
)

#: All five Cloudera customer workloads, keyed by name.
CLOUDERA_WORKLOADS = {spec.name: spec for spec in (CC_A, CC_B, CC_C, CC_D, CC_E)}
