"""Trace generation from a :class:`~repro.traces.spec.WorkloadSpec`.

:class:`SpecTraceGenerator` is the data-gate substitute described in DESIGN.md:
it turns the published statistical description of a paper workload (Table 1
row, Table 2 job classes, Figure 2 Zipf slope, Figure 7/8 arrival structure,
Figure 10 name mix) into a concrete, per-job trace the characterization
pipeline, synthesizer and simulator can consume.

Generation is deterministic given a seed and honours an optional ``scale``
factor so tests and benchmarks can work with traces of manageable size while
preserving each workload's class mixture.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import SpecError
from ..synth.arrival import DiurnalBurstyArrivals
from ..synth.filepop import FilePopularityModel
from .schema import Job
from .spec import JobClassSpec, WorkloadSpec
from .trace import Trace

__all__ = ["SpecTraceGenerator", "generate_trace"]

#: Default dispersion applied to task counts relative to task-seconds.
_SECONDS_PER_TASK = 30.0


class SpecTraceGenerator:
    """Generates a synthetic :class:`Trace` from a :class:`WorkloadSpec`.

    Args:
        spec: the workload description.
        seed: RNG seed; identical seeds produce identical traces.
        scale: fraction of the full-scale job count to generate (1.0 means the
            paper's full job count — over a million jobs for the Facebook
            workloads).  Every class keeps at least one job.
        time_scale: fraction of the full trace length to cover.  Scaling jobs
            and time by the same factor preserves the jobs-per-hour density —
            the SWIM-style scale-down of §7 — which keeps hourly statistics
            (burstiness, correlations) comparable to the full-scale workload.
            Defaults to ``scale`` when jobs are scaled down, and 1.0 otherwise.
    """

    def __init__(self, spec: WorkloadSpec, seed: int = 0, scale: float = 1.0,
                 time_scale: Optional[float] = None):
        if scale <= 0:
            raise SpecError("scale must be positive, got %r" % (scale,))
        if time_scale is not None and time_scale <= 0:
            raise SpecError("time_scale must be positive, got %r" % (time_scale,))
        self.spec = spec
        self.seed = int(seed)
        self.scale = float(scale)
        if time_scale is None:
            time_scale = min(1.0, self.scale) if self.scale < 1.0 else 1.0
        self.time_scale = float(time_scale)

    # ------------------------------------------------------------------
    def generate(self) -> Trace:
        """Generate the trace."""
        rng = np.random.default_rng(self.seed)
        spec = self.spec
        counts = spec.scaled_counts(self.scale)
        n_jobs = int(sum(counts))
        horizon_s = max(float(spec.trace_length_s) * self.time_scale, 2 * 3600.0)

        # 1. Arrival times, one independent diurnal + bursty stream per job
        #    class (§5).  Interactive small jobs and scheduled batch pipelines
        #    burst independently of each other, which is what keeps the
        #    jobs-vs-bytes and jobs-vs-compute hourly correlations low while
        #    bytes-vs-compute stays high (Figure 9).
        submit_times = np.empty(n_jobs, dtype=float)
        class_indices = np.empty(n_jobs, dtype=int)
        cursor = 0
        for class_index, class_count in enumerate(counts):
            arrivals = DiurnalBurstyArrivals(
                diurnal_amplitude=spec.arrival.diurnal_amplitude,
                weekend_factor=spec.arrival.weekend_factor,
                burstiness=spec.arrival.burstiness,
            )
            class_times = arrivals.generate(rng, class_count, horizon_s)
            submit_times[cursor:cursor + class_count] = class_times
            class_indices[cursor:cursor + class_count] = class_index
            cursor += class_count
        order = np.argsort(submit_times, kind="stable")
        submit_times = submit_times[order]
        class_indices = class_indices[order]

        # 2. Per-job dimensions sampled around each class centroid.
        dimensions = self._sample_dimensions(rng, class_indices)

        # 3. File paths: Zipf popularity + temporal locality (§4), with fresh
        #    inputs drawn from size-binned catalogs so access frequency stays
        #    decoupled from file size (Figures 3-4).
        paths = FilePopularityModel(
            n_input_files=max(2, int(spec.access.distinct_input_files * self.scale) or 2),
            n_output_files=max(2, int(spec.access.distinct_output_files * self.scale) or 2),
            zipf_slope=spec.access.zipf_slope,
            input_reaccess_fraction=spec.access.input_reaccess_fraction,
            output_reaccess_fraction=spec.access.output_reaccess_fraction,
            reaccess_halflife_s=spec.access.reaccess_halflife_s,
        ).assign(
            submit_times,
            rng,
            record_inputs=spec.has_input_paths,
            record_outputs=spec.has_output_paths,
            input_prefix="/%s/in" % spec.name.lower(),
            output_prefix="/%s/out" % spec.name.lower(),
            input_bytes=dimensions[:, 0],
            output_bytes=dimensions[:, 2],
        )

        # 4. Job names from the Figure-10 mix (if the trace records names).
        names, frameworks = self._sample_names(rng, n_jobs)

        jobs = []
        for index in range(n_jobs):
            class_spec = spec.job_classes[class_indices[index]]
            input_b, shuffle_b, output_b, duration, map_s, reduce_s = dimensions[index]
            map_tasks = max(1, int(round(map_s / _SECONDS_PER_TASK))) if map_s > 0 else 1
            reduce_tasks = int(round(reduce_s / _SECONDS_PER_TASK)) if reduce_s > 0 else 0
            jobs.append(
                Job(
                    job_id="%s_job_%07d" % (spec.name.lower().replace("-", "_"), index),
                    submit_time_s=float(submit_times[index]),
                    duration_s=float(duration),
                    input_bytes=float(input_b),
                    shuffle_bytes=float(shuffle_b),
                    output_bytes=float(output_b),
                    map_task_seconds=float(map_s),
                    reduce_task_seconds=float(reduce_s),
                    map_tasks=map_tasks,
                    reduce_tasks=reduce_tasks,
                    name=names[index],
                    framework=frameworks[index],
                    input_path=paths.input_paths[index],
                    output_path=paths.output_paths[index],
                    workload=spec.name,
                    cluster_label=class_spec.label,
                )
            )
        return Trace(jobs, name=spec.name, machines=spec.machines)

    # ------------------------------------------------------------------
    def _sample_dimensions(self, rng: np.random.Generator, class_indices: np.ndarray) -> np.ndarray:
        """Sample the 6 numeric dimensions for every job.

        Each dimension is log-normal around its class centroid with the class
        dispersion; zero centroids (map-only shuffle/reduce) stay exactly zero
        so map-only structure is preserved.
        """
        n_jobs = class_indices.size
        output = np.zeros((n_jobs, 6), dtype=float)
        for class_index, class_spec in enumerate(self.spec.job_classes):
            mask = class_indices == class_index
            count = int(mask.sum())
            if count == 0:
                continue
            output[mask] = self._sample_class(rng, class_spec, count)
        return output

    @staticmethod
    def _sample_class(rng: np.random.Generator, class_spec: JobClassSpec, count: int) -> np.ndarray:
        """Sample ``count`` jobs of one class: correlated log-normal jitter.

        A shared per-job factor correlates data size and compute time, which
        reproduces the paper's §5.3 observation that bytes and task-seconds
        are the most strongly correlated pair of dimensions.
        """
        sigma = class_spec.dispersion
        shared = rng.normal(0.0, sigma, count)
        centroid = np.asarray(class_spec.centroid, dtype=float)
        samples = np.zeros((count, 6), dtype=float)
        for dim in range(6):
            if centroid[dim] <= 0:
                continue
            own = rng.normal(0.0, sigma * 0.5, count)
            samples[:, dim] = centroid[dim] * np.exp(0.8 * shared + own)
        # Durations below one second are unphysical for a MapReduce job.
        samples[:, 3] = np.maximum(samples[:, 3], 1.0)
        return samples

    def _sample_names(self, rng: np.random.Generator, n_jobs: int):
        """Sample job names and frameworks from the Figure-10 name mix."""
        if not self.spec.has_names or not self.spec.name_mix:
            return [None] * n_jobs, [None] * n_jobs
        entries, weights = self.spec.name_mix_weights()
        picks = rng.choice(len(entries), size=n_jobs, p=weights)
        names = []
        frameworks = []
        for index in range(n_jobs):
            entry = entries[picks[index]]
            names.append("%s job %d" % (entry.first_word, index))
            frameworks.append(entry.framework)
        return names, frameworks


def generate_trace(spec: WorkloadSpec, seed: int = 0, scale: float = 1.0,
                   time_scale: Optional[float] = None) -> Trace:
    """Convenience wrapper: ``SpecTraceGenerator(spec, seed, scale).generate()``."""
    return SpecTraceGenerator(spec, seed=seed, scale=scale, time_scale=time_scale).generate()
