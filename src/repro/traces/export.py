"""Aggregated-metrics export: the "ship only aggregates offsite" pipeline.

Section 8 of the paper argues that enterprise MapReduce monitoring tools
should perform workload analysis automatically and "ship only the anonymized
and aggregated metrics for workload comparisons offsite".  Together with
:mod:`repro.traces.anonymize` this module implements that pipeline end to end:

* :class:`AggregatedMetrics` — a compact, JSON-serializable summary of one
  workload: log-scale histograms of the per-job size dimensions, the hourly
  submission/I/O/compute series, job-name first-word counts, and the Table-1
  style scalars.  No per-job records and no raw strings leave the site.
* :func:`aggregate_trace` — build the summary from a trace.
* :meth:`AggregatedMetrics.to_json` / :meth:`AggregatedMetrics.from_json` —
  the wire format.

The histograms use fixed decade (powers-of-ten) bins so summaries produced by
different sites are directly comparable and can be merged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import AnalysisError, TraceFormatError
from .trace import Trace

__all__ = ["AggregatedMetrics", "aggregate_trace", "merge_aggregates"]

#: Decade bin edges for byte histograms: 1 B .. 1 EB.
BYTE_BIN_EDGES = [10.0 ** exponent for exponent in range(0, 19)]

#: Decade bin edges for duration histograms: 1 s .. ~11.6 days.
DURATION_BIN_EDGES = [10.0 ** exponent for exponent in range(0, 7)]

#: Size dimensions summarized per job.
SIZE_DIMENSIONS = ("input_bytes", "shuffle_bytes", "output_bytes")


def _decade_histogram(values: np.ndarray, edges: List[float]) -> List[int]:
    """Histogram with an extra underflow bucket for zero-valued entries."""
    values = np.asarray(values, dtype=float)
    values = values[~np.isnan(values)]
    zero_count = int((values <= 0).sum())
    positive = values[values > 0]
    counts, _ = np.histogram(positive, bins=edges)
    return [zero_count] + [int(count) for count in counts]


@dataclass
class AggregatedMetrics:
    """Anonymizable aggregate summary of one workload.

    Attributes:
        workload: workload name (free to be a pseudonym).
        n_jobs: number of jobs summarized.
        machines: cluster size, if known.
        trace_length_s: trace span in seconds.
        bytes_moved: total input + shuffle + output bytes.
        total_task_seconds: total map + reduce task time.
        size_histograms: per-dimension decade histograms (first bucket counts
            zero-valued jobs).
        duration_histogram: decade histogram of job durations.
        hourly_jobs / hourly_bytes / hourly_task_seconds: hourly series.
        first_word_counts: job counts per job-name first word (empty when the
            trace records no names).
        map_only_fraction: fraction of map-only jobs.
    """

    workload: str
    n_jobs: int
    machines: Optional[int]
    trace_length_s: float
    bytes_moved: float
    total_task_seconds: float
    size_histograms: Dict[str, List[int]]
    duration_histogram: List[int]
    hourly_jobs: List[float]
    hourly_bytes: List[float]
    hourly_task_seconds: List[float]
    first_word_counts: Dict[str, int] = field(default_factory=dict)
    map_only_fraction: float = 0.0
    schema_version: int = 1

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "schema_version": self.schema_version,
            "workload": self.workload,
            "n_jobs": self.n_jobs,
            "machines": self.machines,
            "trace_length_s": self.trace_length_s,
            "bytes_moved": self.bytes_moved,
            "total_task_seconds": self.total_task_seconds,
            "size_histograms": self.size_histograms,
            "duration_histogram": self.duration_histogram,
            "hourly_jobs": self.hourly_jobs,
            "hourly_bytes": self.hourly_bytes,
            "hourly_task_seconds": self.hourly_task_seconds,
            "first_word_counts": self.first_word_counts,
            "map_only_fraction": self.map_only_fraction,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "AggregatedMetrics":
        required = {"workload", "n_jobs", "size_histograms", "hourly_jobs"}
        missing = required - set(data)
        if missing:
            raise TraceFormatError("aggregate record missing fields: %s" % sorted(missing))
        return cls(
            workload=data["workload"],
            n_jobs=int(data["n_jobs"]),
            machines=data.get("machines"),
            trace_length_s=float(data.get("trace_length_s", 0.0)),
            bytes_moved=float(data.get("bytes_moved", 0.0)),
            total_task_seconds=float(data.get("total_task_seconds", 0.0)),
            size_histograms={key: list(value) for key, value in data["size_histograms"].items()},
            duration_histogram=list(data.get("duration_histogram", [])),
            hourly_jobs=list(data["hourly_jobs"]),
            hourly_bytes=list(data.get("hourly_bytes", [])),
            hourly_task_seconds=list(data.get("hourly_task_seconds", [])),
            first_word_counts={key: int(value) for key, value in data.get("first_word_counts", {}).items()},
            map_only_fraction=float(data.get("map_only_fraction", 0.0)),
            schema_version=int(data.get("schema_version", 1)),
        )

    @classmethod
    def from_json(cls, text: str) -> "AggregatedMetrics":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise TraceFormatError("invalid aggregate JSON: %s" % error) from error
        return cls.from_dict(data)

    # -- derived views ------------------------------------------------------
    def median_size(self, dimension: str) -> float:
        """Approximate median of one size dimension from its decade histogram.

        The estimate is the geometric center of the bucket containing the
        median job, which is within half a decade of the true value — enough
        for the cross-site comparisons this format exists for.

        Raises:
            AnalysisError: for an unknown dimension or an all-empty histogram.
        """
        if dimension not in self.size_histograms:
            raise AnalysisError("unknown size dimension %r" % (dimension,))
        counts = self.size_histograms[dimension]
        total = sum(counts)
        if total == 0:
            raise AnalysisError("histogram of %r is empty" % (dimension,))
        target = total / 2.0
        running = 0.0
        for bucket, count in enumerate(counts):
            running += count
            if running >= target:
                if bucket == 0:
                    return 0.0
                low = BYTE_BIN_EDGES[bucket - 1]
                high = BYTE_BIN_EDGES[min(bucket, len(BYTE_BIN_EDGES) - 1)]
                return float(np.sqrt(low * high))
        return float(BYTE_BIN_EDGES[-1])

    def peak_to_median_task_seconds(self) -> float:
        """Peak-to-median ratio of the hourly task-time series (Figure 8 scalar)."""
        values = np.asarray(self.hourly_task_seconds, dtype=float)
        positive = values[values > 0]
        if positive.size == 0:
            return 0.0
        return float(positive.max() / np.median(positive))


def aggregate_trace(trace: Trace, workload_name: Optional[str] = None) -> AggregatedMetrics:
    """Summarize a trace into an :class:`AggregatedMetrics` record.

    Raises:
        AnalysisError: for an empty trace.
    """
    if trace.is_empty():
        raise AnalysisError("cannot aggregate an empty trace")

    from ..core.stats import hourly_series  # local import to avoid a package cycle

    times = trace.submit_times()
    horizon = trace.duration_s()
    summary = trace.summary()

    size_histograms = {
        dimension: _decade_histogram(trace.dimension(dimension), BYTE_BIN_EDGES)
        for dimension in SIZE_DIMENSIONS
    }
    durations = np.array([job.duration_s or 0.0 for job in trace], dtype=float)

    first_words: Dict[str, int] = {}
    for job in trace:
        word = job.first_word
        if word is not None:
            first_words[word] = first_words.get(word, 0) + 1

    map_only = float(np.mean([1.0 if job.is_map_only else 0.0 for job in trace]))
    return AggregatedMetrics(
        workload=workload_name or trace.name,
        n_jobs=len(trace),
        machines=trace.machines,
        trace_length_s=summary.length_s,
        bytes_moved=summary.bytes_moved,
        total_task_seconds=summary.total_task_seconds,
        size_histograms=size_histograms,
        duration_histogram=_decade_histogram(durations, DURATION_BIN_EDGES),
        hourly_jobs=[float(v) for v in hourly_series(times, None, horizon)],
        hourly_bytes=[float(v) for v in hourly_series(times, [job.total_bytes for job in trace], horizon)],
        hourly_task_seconds=[float(v) for v in hourly_series(times, [job.total_task_seconds for job in trace], horizon)],
        first_word_counts=first_words,
        map_only_fraction=map_only,
    )


def merge_aggregates(aggregates: List[AggregatedMetrics], workload_name: str = "merged") -> AggregatedMetrics:
    """Merge several aggregate records into one (e.g. monthly shards of a site).

    Histograms and scalar totals add; hourly series are concatenated in the
    order given (shards are assumed to be consecutive time windows).

    Raises:
        AnalysisError: for an empty input list or mismatched histogram shapes.
    """
    if not aggregates:
        raise AnalysisError("cannot merge zero aggregate records")
    first = aggregates[0]
    size_histograms = {key: list(value) for key, value in first.size_histograms.items()}
    duration_histogram = list(first.duration_histogram)
    merged = AggregatedMetrics(
        workload=workload_name,
        n_jobs=first.n_jobs,
        machines=first.machines,
        trace_length_s=first.trace_length_s,
        bytes_moved=first.bytes_moved,
        total_task_seconds=first.total_task_seconds,
        size_histograms=size_histograms,
        duration_histogram=duration_histogram,
        hourly_jobs=list(first.hourly_jobs),
        hourly_bytes=list(first.hourly_bytes),
        hourly_task_seconds=list(first.hourly_task_seconds),
        first_word_counts=dict(first.first_word_counts),
        map_only_fraction=first.map_only_fraction * first.n_jobs,
    )
    for aggregate in aggregates[1:]:
        if set(aggregate.size_histograms) != set(merged.size_histograms):
            raise AnalysisError("aggregate records disagree on size dimensions")
        for key, counts in aggregate.size_histograms.items():
            if len(counts) != len(merged.size_histograms[key]):
                raise AnalysisError("aggregate histograms for %r have different bin counts" % key)
            merged.size_histograms[key] = [a + b for a, b in zip(merged.size_histograms[key], counts)]
        limit = min(len(merged.duration_histogram), len(aggregate.duration_histogram))
        merged.duration_histogram = [
            merged.duration_histogram[index] + aggregate.duration_histogram[index]
            for index in range(limit)
        ]
        merged.n_jobs += aggregate.n_jobs
        merged.trace_length_s += aggregate.trace_length_s
        merged.bytes_moved += aggregate.bytes_moved
        merged.total_task_seconds += aggregate.total_task_seconds
        merged.hourly_jobs.extend(aggregate.hourly_jobs)
        merged.hourly_bytes.extend(aggregate.hourly_bytes)
        merged.hourly_task_seconds.extend(aggregate.hourly_task_seconds)
        for word, count in aggregate.first_word_counts.items():
            merged.first_word_counts[word] = merged.first_word_counts.get(word, 0) + count
        merged.map_only_fraction += aggregate.map_only_fraction * aggregate.n_jobs
    merged.map_only_fraction = merged.map_only_fraction / merged.n_jobs if merged.n_jobs else 0.0
    return merged
