"""Facebook workload specifications (FB-2009 and FB-2010).

The two Facebook workloads come from the same cluster at two points in time
(Table 1 of the paper): FB-2009 covers 6 months on a 600-machine cluster
(~1.13M jobs, 9.4 PB moved); FB-2010 covers 1.5 months on a 3000-machine
cluster (~1.17M jobs, 1.5 EB moved).

The job-class populations and centroids below are the Table 2 rows.  The
arrival parameters encode the §5.2 observation that the peak-to-median ratio
of hourly task-time dropped from 31:1 (2009) to 9:1 (2010), and that FB-2010
shows a visually identifiable diurnal pattern in job submissions.  The name
mix for FB-2009 follows Figure 10 (44% "ad", 12% "insert", with "from" jobs
carrying an outsized share of I/O); FB-2010 does not record job names, and
neither records output paths (FB-2009 records no paths at all).
"""

from __future__ import annotations

from ..units import DAY
from .spec import AccessSpec, ArrivalSpec, JobClassSpec, NameMixEntry, WorkloadSpec

__all__ = ["FB_2009", "FB_2010", "FACEBOOK_WORKLOADS"]

_ROW = JobClassSpec.from_table_row


# ---------------------------------------------------------------------------
# FB-2009: 600 machines, 6 months, 1,129,193 jobs, 9.4 PB moved.
# ---------------------------------------------------------------------------
_FB_2009_CLASSES = (
    _ROW("Small jobs", 1081918, "21 KB", "0", "871 KB", "32 s", 20, 0, dispersion=1.3),
    _ROW("Load data, fast", 37038, "381 KB", "0", "1.9 GB", "21 min", 6079, 0),
    _ROW("Load data, slow", 2070, "10 KB", "0", "4.2 GB", "1 hr 50 min", 26321, 0),
    _ROW("Load data, large", 602, "405 KB", "0", "447 GB", "1 hr 10 min", 66657, 0),
    _ROW("Load data, huge", 180, "446 KB", "0", "1.1 TB", "5 hrs 5 min", 125662, 0),
    _ROW("Aggregate, fast", 6035, "230 GB", "8.8 GB", "491 MB", "15 min", 104338, 66760),
    _ROW("Aggregate and expand", 379, "1.9 TB", "502 MB", "2.6 GB", "30 min", 348942, 76736),
    _ROW("Expand and aggregate", 159, "418 GB", "2.5 TB", "45 GB", "1 hr 25 min", 1076089, 974395),
    _ROW("Data transform", 793, "255 GB", "788 GB", "1.6 GB", "35 min", 384562, 338050),
    _ROW("Data summary", 19, "7.6 TB", "51 GB", "104 KB", "55 min", 4843452, 853911),
)

# Figure 10 name mix for FB-2009 (fractions of jobs).  "ad" and "[other
# native]" stand for native MapReduce jobs; "from"/"insert"/"select" are Hive.
_FB_2009_NAME_MIX = (
    NameMixEntry("ad", "native", 0.44),
    NameMixEntry("insert", "hive", 0.12),
    NameMixEntry("from", "hive", 0.08),
    NameMixEntry("select", "hive", 0.05),
    NameMixEntry("etl", "native", 0.03),
    NameMixEntry("pipeline", "native", 0.28),
)

FB_2009 = WorkloadSpec(
    name="FB-2009",
    machines=600,
    trace_length_s=6 * 30 * DAY,
    job_classes=_FB_2009_CLASSES,
    name_mix=_FB_2009_NAME_MIX,
    arrival=ArrivalSpec(
        diurnal_amplitude=0.25,
        weekend_factor=0.85,
        burstiness=0.7,
        peak_to_median=31.0,
    ),
    access=AccessSpec(
        zipf_slope=5.0 / 6.0,
        distinct_input_files=400000,
        distinct_output_files=400000,
        input_reaccess_fraction=0.30,
        output_reaccess_fraction=0.12,
        reaccess_halflife_s=3 * 3600.0,
    ),
    has_names=True,
    has_input_paths=False,
    has_output_paths=False,
    description="Facebook production Hadoop cluster, 2009 snapshot (6 months).",
)


# ---------------------------------------------------------------------------
# FB-2010: 3000 machines, 1.5 months, 1,169,184 jobs, 1.5 EB moved.
# ---------------------------------------------------------------------------
_FB_2010_CLASSES = (
    _ROW("Small jobs", 1145663, "6.9 MB", "600", "60 KB", "1 min", 48, 34, dispersion=1.3),
    _ROW("Map only transform, 8 hrs", 7911, "50 GB", "0", "61 GB", "8 hrs", 60664, 0),
    _ROW("Map only transform, 45 min", 779, "3.6 TB", "0", "4.4 TB", "45 min", 3081710, 0),
    _ROW("Map only aggregate", 670, "2.1 TB", "0", "2.7 GB", "1 hr 20 min", 9457592, 0),
    _ROW("Map only transform, 3 days", 104, "35 GB", "0", "3.5 GB", "3 days", 198436, 0),
    _ROW("Aggregate", 11491, "1.5 TB", "30 GB", "2.2 GB", "30 min", 1112765, 387191),
    _ROW("Transform, 2 hrs", 1876, "711 GB", "2.6 TB", "860 GB", "2 hrs", 1618792, 2056439),
    _ROW("Aggregate and transform", 454, "9.0 TB", "1.5 TB", "1.2 TB", "1 hr", 1795682, 818344),
    _ROW("Expand and aggregate", 169, "2.7 TB", "12 TB", "260 GB", "2 hrs 7 min", 2862726, 3091678),
    _ROW("Transform, 18 hrs", 67, "630 GB", "1.2 TB", "140 GB", "18 hrs", 1545220, 18144174),
)

FB_2010 = WorkloadSpec(
    name="FB-2010",
    machines=3000,
    trace_length_s=45 * DAY,
    job_classes=_FB_2010_CLASSES,
    # The FB-2010 trace does not record job names (Figure 10 caption).
    name_mix=(),
    arrival=ArrivalSpec(
        diurnal_amplitude=0.45,
        weekend_factor=0.8,
        burstiness=0.5,
        peak_to_median=9.0,
    ),
    access=AccessSpec(
        zipf_slope=5.0 / 6.0,
        distinct_input_files=1000000,
        distinct_output_files=1000000,
        input_reaccess_fraction=0.35,
        output_reaccess_fraction=0.0,
        reaccess_halflife_s=3 * 3600.0,
    ),
    has_names=False,
    has_input_paths=True,
    has_output_paths=False,
    description="Facebook production Hadoop cluster, 2010 snapshot (1.5 months).",
)

#: Both Facebook workloads, keyed by name.
FACEBOOK_WORKLOADS = {spec.name: spec for spec in (FB_2009, FB_2010)}
