"""Workload specifications.

A :class:`WorkloadSpec` is a statistical description of a workload: enough
information for :mod:`repro.traces.generator` to synthesize a trace whose
marginal distributions and cluster structure match a paper workload (the data
gate substitute described in DESIGN.md §2), and enough metadata for the
benchmark harness to label its output.

The specification mirrors what the paper publishes about each workload:

* Table 1 — machine count, trace length, total job count.
* Table 2 — per-job-class populations and 6-D centroids (input, shuffle,
  output bytes; duration; map and reduce task-seconds) with a class label.
* Figure 2 — Zipf shape parameter of the file-access popularity (≈ 5/6).
* Figures 5, 6 — re-access behaviour (fraction of jobs re-reading existing
  input / output, and the time scale of re-accesses).
* Figure 7/8 — arrival process: mean rate, diurnal amplitude, burstiness.
* Figure 10 — mix of job-name first words / frameworks.
* §3 — which optional dimensions (names, paths) the trace records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import SpecError
from ..units import parse_bytes, parse_duration

__all__ = ["JobClassSpec", "NameMixEntry", "ArrivalSpec", "AccessSpec", "WorkloadSpec"]


@dataclass(frozen=True)
class JobClassSpec:
    """One row of the paper's Table 2: a cluster of similarly-behaving jobs.

    Attributes:
        label: the human label the paper assigns (e.g. ``"Small jobs"``).
        count: number of jobs of this class in the full-scale workload.
        input_bytes: centroid input size in bytes.
        shuffle_bytes: centroid shuffle size in bytes.
        output_bytes: centroid output size in bytes.
        duration_s: centroid job duration in seconds.
        map_task_seconds: centroid total map task time (slot-seconds).
        reduce_task_seconds: centroid total reduce task time (slot-seconds).
        dispersion: multiplicative spread of the log-normal jitter applied
            around the centroid when sampling jobs (sigma of ln-space).
    """

    label: str
    count: int
    input_bytes: float
    shuffle_bytes: float
    output_bytes: float
    duration_s: float
    map_task_seconds: float
    reduce_task_seconds: float
    dispersion: float = 0.6

    def __post_init__(self):
        if self.count <= 0:
            raise SpecError("job class %r must have a positive count" % (self.label,))
        for name in ("input_bytes", "shuffle_bytes", "output_bytes", "duration_s",
                     "map_task_seconds", "reduce_task_seconds"):
            if getattr(self, name) < 0:
                raise SpecError("job class %r: %s must be non-negative" % (self.label, name))
        if self.dispersion < 0:
            raise SpecError("job class %r: dispersion must be non-negative" % (self.label,))

    @property
    def centroid(self) -> Tuple[float, float, float, float, float, float]:
        """Centroid in the 6-D feature space used by the clustering analysis."""
        return (
            self.input_bytes,
            self.shuffle_bytes,
            self.output_bytes,
            self.duration_s,
            self.map_task_seconds,
            self.reduce_task_seconds,
        )

    @property
    def is_map_only(self) -> bool:
        return self.shuffle_bytes == 0 and self.reduce_task_seconds == 0

    @staticmethod
    def from_table_row(label: str, count: int, input_size: str, shuffle_size: str,
                       output_size: str, duration: str, map_task_seconds: float,
                       reduce_task_seconds: float, dispersion: float = 0.6) -> "JobClassSpec":
        """Build a class spec from human-readable Table 2 strings.

        Sizes accept strings such as ``"4.7 TB"`` and durations such as
        ``"4 hrs 30 min"`` (multiple terms are summed).
        """
        return JobClassSpec(
            label=label,
            count=count,
            input_bytes=parse_bytes(input_size),
            shuffle_bytes=parse_bytes(shuffle_size),
            output_bytes=parse_bytes(output_size),
            duration_s=_parse_compound_duration(duration),
            map_task_seconds=float(map_task_seconds),
            reduce_task_seconds=float(reduce_task_seconds),
            dispersion=dispersion,
        )


def _parse_compound_duration(text) -> float:
    """Parse durations like ``"4 hrs 30 min"`` by summing each number+unit term."""
    if isinstance(text, (int, float)):
        return float(text)
    tokens = text.split()
    if len(tokens) % 2 != 0:
        raise SpecError("cannot parse duration %r" % (text,))
    total = 0.0
    for index in range(0, len(tokens), 2):
        total += parse_duration("%s %s" % (tokens[index], tokens[index + 1]))
    return total


@dataclass(frozen=True)
class NameMixEntry:
    """One slice of the Figure-10 job-name mix.

    Attributes:
        first_word: the first word of the job name (e.g. ``"insert"``).
        framework: the framework the word is attributed to
            (``"hive"``, ``"pig"``, ``"oozie"``, ``"native"``).
        weight: fraction of jobs whose name begins with this word.
    """

    first_word: str
    framework: str
    weight: float

    def __post_init__(self):
        if not self.first_word:
            raise SpecError("name mix entry needs a non-empty first word")
        if self.weight <= 0:
            raise SpecError("name mix entry %r must have positive weight" % (self.first_word,))


@dataclass(frozen=True)
class ArrivalSpec:
    """Arrival process parameters (Figures 7 and 8).

    Attributes:
        diurnal_amplitude: relative amplitude of the daily sinusoid in the
            submission rate (0 = flat, 1 = rate swings between 0 and 2x mean).
        weekend_factor: multiplicative factor applied to the rate on weekends.
        burstiness: dispersion of the per-hour rate multiplier (sigma of a
            log-normal); larger values produce larger peak-to-median ratios.
        peak_to_median: the paper-reported peak-to-median ratio of hourly
            task-time, retained for benchmark comparison (not used directly
            by the generator).
    """

    diurnal_amplitude: float = 0.3
    weekend_factor: float = 0.8
    burstiness: float = 1.0
    peak_to_median: Optional[float] = None

    def __post_init__(self):
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise SpecError("diurnal_amplitude must be within [0, 1]")
        if self.weekend_factor <= 0:
            raise SpecError("weekend_factor must be positive")
        if self.burstiness < 0:
            raise SpecError("burstiness must be non-negative")


@dataclass(frozen=True)
class AccessSpec:
    """File-access behaviour parameters (Figures 2, 3, 4, 5 and 6).

    Attributes:
        zipf_slope: magnitude of the log-log rank-frequency slope (the paper
            reports ≈ 5/6 for every workload).
        distinct_input_files: number of distinct input paths at full scale.
        distinct_output_files: number of distinct output paths at full scale.
        input_reaccess_fraction: fraction of jobs whose input path was already
            read by an earlier job (Figure 6, "re-access pre-existing input").
        output_reaccess_fraction: fraction of jobs whose input path is the
            output of an earlier job (Figure 6, "re-access pre-existing output").
        reaccess_halflife_s: time scale of re-accesses; 75% of re-accesses
            happen within ~6 hours in the paper (Figure 5).
    """

    zipf_slope: float = 5.0 / 6.0
    distinct_input_files: int = 10000
    distinct_output_files: int = 10000
    input_reaccess_fraction: float = 0.4
    output_reaccess_fraction: float = 0.2
    reaccess_halflife_s: float = 3 * 3600.0

    def __post_init__(self):
        if self.zipf_slope <= 0:
            raise SpecError("zipf_slope must be positive")
        if self.distinct_input_files <= 0 or self.distinct_output_files <= 0:
            raise SpecError("distinct file counts must be positive")
        for name in ("input_reaccess_fraction", "output_reaccess_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SpecError("%s must be within [0, 1]" % (name,))
        if self.reaccess_halflife_s <= 0:
            raise SpecError("reaccess_halflife_s must be positive")


@dataclass(frozen=True)
class WorkloadSpec:
    """Complete statistical description of one workload.

    Attributes:
        name: workload name (e.g. ``"FB-2009"``).
        machines: cluster size from Table 1.
        trace_length_s: trace length from Table 1, in seconds.
        job_classes: Table-2 job classes.
        name_mix: Figure-10 name mix; empty when the trace lacks job names.
        arrival: arrival-process parameters.
        access: file-access parameters.
        has_names: whether job names are recorded (False for FB-2010).
        has_input_paths: whether input paths are recorded
            (False for FB-2009 and CC-a).
        has_output_paths: whether output paths are recorded
            (False for FB-2009, FB-2010 and CC-a).
        description: free-form description used in reports.
    """

    name: str
    machines: int
    trace_length_s: float
    job_classes: Tuple[JobClassSpec, ...]
    name_mix: Tuple[NameMixEntry, ...] = ()
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    access: AccessSpec = field(default_factory=AccessSpec)
    has_names: bool = True
    has_input_paths: bool = True
    has_output_paths: bool = True
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise SpecError("workload spec needs a name")
        if self.machines <= 0:
            raise SpecError("workload %r: machines must be positive" % (self.name,))
        if self.trace_length_s <= 0:
            raise SpecError("workload %r: trace_length_s must be positive" % (self.name,))
        if not self.job_classes:
            raise SpecError("workload %r: needs at least one job class" % (self.name,))
        if self.has_names and not self.name_mix:
            raise SpecError(
                "workload %r records job names but has an empty name mix" % (self.name,)
            )

    @property
    def total_jobs(self) -> int:
        """Total job count at full scale (sum of class counts; Table 1 column)."""
        return sum(job_class.count for job_class in self.job_classes)

    @property
    def class_fractions(self) -> List[float]:
        """Fraction of jobs in each class, in ``job_classes`` order."""
        total = float(self.total_jobs)
        return [job_class.count / total for job_class in self.job_classes]

    def expected_bytes_moved(self) -> float:
        """Expected total bytes moved (input+shuffle+output summed over classes)."""
        return float(
            sum(
                job_class.count
                * (job_class.input_bytes + job_class.shuffle_bytes + job_class.output_bytes)
                for job_class in self.job_classes
            )
        )

    def scaled_counts(self, scale: float) -> List[int]:
        """Per-class job counts for a scaled-down run.

        Every class keeps at least one job so rare-but-huge classes (which
        dominate bytes moved) are not silently dropped by small scales.
        """
        if scale <= 0:
            raise SpecError("scale must be positive, got %r" % (scale,))
        return [max(1, int(round(job_class.count * scale))) for job_class in self.job_classes]

    def name_mix_weights(self) -> Tuple[List[NameMixEntry], List[float]]:
        """Return name-mix entries and normalized weights (empty lists if none)."""
        entries = list(self.name_mix)
        if not entries:
            return [], []
        total = sum(entry.weight for entry in entries)
        return entries, [entry.weight / total for entry in entries]
