"""Trace anonymization utilities.

The paper's traces arrive with "hashed file path names" (§4.2), and its future
-work section argues that enterprise monitoring tools should "ship only the
anonymized and aggregated metrics for workload comparisons offsite" (§8).
This module provides the anonymization half of that pipeline; the aggregation
half lives in :mod:`repro.traces.export`.

* :class:`Anonymizer` — salted, deterministic hashing of string fields.  The
  same input string always maps to the same token within one anonymizer, so
  re-access structure (the Figure 5/6 analyses) survives anonymization, while
  the original path or name cannot be recovered without the salt.
* :func:`anonymize_trace` — produce an anonymized copy of a trace, hashing
  paths, job names (optionally preserving the analysis-relevant first word)
  and job ids.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import SchemaError
from .schema import Job
from .trace import Trace

__all__ = ["Anonymizer", "anonymize_trace"]


@dataclass
class Anonymizer:
    """Deterministic, salted string anonymization.

    Attributes:
        salt: secret mixed into every hash.  Two anonymizers with the same
            salt produce identical tokens; without the salt the mapping cannot
            be brute-forced from short path vocabularies.
        token_length: number of hex characters kept from the digest.
        preserve_directories: when hashing paths, hash each path component
            separately so the directory hierarchy depth survives (useful for
            per-directory analyses) while every component is still opaque.
    """

    salt: str = "repro"
    token_length: int = 16
    preserve_directories: bool = True
    _cache: Dict[str, str] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if not self.salt:
            raise SchemaError("anonymizer salt must be a non-empty string")
        if not 4 <= self.token_length <= 64:
            raise SchemaError("token_length must be between 4 and 64")

    # ------------------------------------------------------------------
    def token(self, value: str) -> str:
        """Deterministic opaque token for one string."""
        cached = self._cache.get(value)
        if cached is not None:
            return cached
        digest = hashlib.sha256((self.salt + "\x00" + value).encode("utf-8")).hexdigest()
        token = digest[: self.token_length]
        self._cache[value] = token
        return token

    def path(self, path: Optional[str]) -> Optional[str]:
        """Anonymize a file path (None passes through)."""
        if path is None:
            return None
        if not self.preserve_directories:
            return "/" + self.token(path)
        components = [part for part in path.split("/") if part]
        if not components:
            return "/" + self.token(path)
        return "/" + "/".join(self.token(part) for part in components)

    def name(self, name: Optional[str], keep_first_word: bool = True) -> Optional[str]:
        """Anonymize a job name.

        With ``keep_first_word`` the first word survives in clear text — it is
        what the §6.1 framework analysis needs and is framework-generated
        rather than user data — while the remainder of the name is hashed.
        """
        if name is None:
            return None
        stripped = name.strip()
        if not stripped:
            return self.token(name)
        if not keep_first_word:
            return self.token(stripped)
        parts = stripped.split(None, 1)
        first = parts[0]
        if len(parts) == 1:
            return first
        return "%s %s" % (first, self.token(parts[1]))

    def job_id(self, job_id: str) -> str:
        """Anonymize a job id (always hashed; ids can embed user names)."""
        return "job_" + self.token(job_id)


def anonymize_trace(trace: Trace, anonymizer: Optional[Anonymizer] = None,
                    keep_first_word: bool = True, hash_job_ids: bool = False,
                    name: Optional[str] = None) -> Trace:
    """Return an anonymized copy of a trace.

    All numeric dimensions are left untouched (they are what the offsite
    analyses consume); paths, names, and optionally job ids are replaced by
    salted tokens.  Identical strings map to identical tokens, so access
    frequencies, re-access intervals and name-based grouping are preserved.

    Args:
        trace: the trace to anonymize.
        anonymizer: the :class:`Anonymizer` to use (a default-salted one when
            omitted — pass your own to control the salt).
        keep_first_word: keep job-name first words in clear text (needed for
            the Figure-10 analysis).
        hash_job_ids: also replace job ids with tokens.
        name: name of the anonymized trace (source name by default).
    """
    anonymizer = anonymizer or Anonymizer()
    jobs = []
    for job in trace:
        data = job.to_dict()
        data["input_path"] = anonymizer.path(job.input_path)
        data["output_path"] = anonymizer.path(job.output_path)
        data["name"] = anonymizer.name(job.name, keep_first_word=keep_first_word)
        if hash_job_ids:
            data["job_id"] = anonymizer.job_id(job.job_id)
        jobs.append(Job.from_dict(data))
    return Trace(jobs, name=name or trace.name, machines=trace.machines)
