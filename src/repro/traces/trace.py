"""Trace container: an ordered collection of :class:`~repro.traces.schema.Job`.

A :class:`Trace` is the unit every analysis, synthesizer and replayer in this
library consumes.  It provides filtering, sorting, time-window slicing, merge,
and the summary statistics reported in Table 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..errors import AnalysisError
from ..units import format_bytes, format_duration
from .schema import Job, NUMERIC_DIMENSIONS

__all__ = ["Trace", "TraceSummary"]


@dataclass
class TraceSummary:
    """Summary of a trace, mirroring a row of the paper's Table 1.

    Attributes:
        name: workload name.
        machines: number of machines in the originating cluster (if known).
        length_s: trace length in seconds (last finish minus first submit).
        start_s: earliest submit time.
        end_s: latest finish time.
        n_jobs: number of jobs.
        bytes_moved: sum over jobs of input + shuffle + output bytes.
        total_task_seconds: sum of map + reduce task time over jobs.
    """

    name: str
    machines: Optional[int]
    length_s: float
    start_s: float
    end_s: float
    n_jobs: int
    bytes_moved: float
    total_task_seconds: float

    def as_row(self):
        """Render the summary as a list of human-readable strings (Table 1 row)."""
        return [
            self.name,
            str(self.machines) if self.machines is not None else "-",
            format_duration(self.length_s),
            str(self.n_jobs),
            format_bytes(self.bytes_moved),
        ]


class Trace:
    """An ordered, immutable-ish collection of jobs from one workload.

    Jobs are kept sorted by submission time.  The container supports the
    sequence protocol (``len``, indexing, iteration) plus the filtering and
    summarizing operations the characterization pipeline needs.
    """

    def __init__(self, jobs: Iterable[Job], name: str = "trace", machines: Optional[int] = None):
        self._jobs: List[Job] = sorted(jobs, key=lambda job: job.submit_time_s)
        self.name = name
        self.machines = machines
        #: Extracted-column cache: repeated analyses over the same trace reuse
        #: one array per dimension instead of re-walking the job list.
        self._column_cache: Dict[str, np.ndarray] = {}

    def invalidate_cache(self):
        """Drop cached column arrays.  Call after mutating ``jobs`` in place.

        The container is immutable-ish — every public operation returns a new
        trace — but code that reaches into :attr:`jobs` and edits job fields
        must invalidate, or stale arrays will be served.
        """
        self._column_cache = {}

    # -- sequence protocol -------------------------------------------------
    def __len__(self):
        return len(self._jobs)

    def __iter__(self):
        return iter(self._jobs)

    def __getitem__(self, index):
        result = self._jobs[index]
        if isinstance(index, slice):
            return Trace(result, name=self.name, machines=self.machines)
        return result

    def __repr__(self):
        return "Trace(name=%r, n_jobs=%d)" % (self.name, len(self._jobs))

    @property
    def jobs(self):
        """The underlying job list (sorted by submit time).  Do not mutate."""
        return self._jobs

    def is_empty(self):
        return not self._jobs

    # -- basic accessors ---------------------------------------------------
    def submit_times(self):
        """Return a numpy array of submit times in seconds."""
        return self.dimension("submit_time_s")

    def dimension(self, name):
        """Return a numpy array of one numeric dimension across all jobs.

        Missing values (``None``) become ``nan`` so downstream code can mask
        them out explicitly.  Arrays are cached on the trace (and returned
        read-only): repeated analyses stop paying the job-list walk.  Call
        :meth:`invalidate_cache` after mutating jobs in place.
        """
        if name not in NUMERIC_DIMENSIONS and name not in ("submit_time_s", "total_bytes", "total_task_seconds"):
            raise AnalysisError("unknown job dimension: %r" % (name,))
        cached = self._column_cache.get(name)
        if cached is not None:
            return cached
        values = []
        for job in self._jobs:
            value = getattr(job, name)
            values.append(float(value) if value is not None else float("nan"))
        array = np.array(values, dtype=float)
        array.flags.writeable = False
        self._column_cache[name] = array
        return array

    def feature_matrix(self):
        """Return the (n_jobs, 6) matrix of clustering features (§6.2)."""
        if not self._jobs:
            return np.zeros((0, len(NUMERIC_DIMENSIONS)))
        columns = [self.dimension(dim) for dim in NUMERIC_DIMENSIONS]
        matrix = np.column_stack(columns)
        return np.where(np.isnan(matrix), 0.0, matrix)

    def to_columnar(self):
        """Convert to a :class:`repro.engine.ColumnarTrace` (one pass).

        The columnar form holds each dimension as one contiguous array and is
        the input to the engine's scan operators and chunked on-disk store —
        see :mod:`repro.engine` for the scaling story.
        """
        from ..engine.columnar import ColumnarTrace

        return ColumnarTrace.from_trace(self)

    # -- filtering / slicing ----------------------------------------------
    def filter(self, predicate, name=None):
        """Return a new trace with only the jobs for which ``predicate`` is true."""
        return Trace(
            [job for job in self._jobs if predicate(job)],
            name=name or self.name,
            machines=self.machines,
        )

    def time_window(self, start_s, end_s, name=None):
        """Return the jobs submitted in ``[start_s, end_s)`` as a new trace."""
        if end_s < start_s:
            raise AnalysisError("time window end %r precedes start %r" % (end_s, start_s))
        return self.filter(
            lambda job: start_s <= job.submit_time_s < end_s,
            name=name or ("%s[%g:%g]" % (self.name, start_s, end_s)),
        )

    def with_paths(self):
        """Return only the jobs that carry an input path (for access analysis)."""
        return self.filter(lambda job: job.input_path is not None, name=self.name)

    def with_names(self):
        """Return only the jobs that carry a job name (for naming analysis)."""
        return self.filter(lambda job: job.name is not None, name=self.name)

    def merge(self, other, name=None):
        """Return a new trace with the jobs of both traces, re-sorted by time."""
        return Trace(
            list(self._jobs) + list(other.jobs),
            name=name or ("%s+%s" % (self.name, other.name)),
            machines=self.machines,
        )

    def shifted(self, offset_s, name=None):
        """Return a copy with every submit time shifted by ``offset_s`` seconds."""
        shifted_jobs = []
        for job in self._jobs:
            data = job.to_dict()
            data["submit_time_s"] = job.submit_time_s + offset_s
            shifted_jobs.append(Job.from_dict(data))
        return Trace(shifted_jobs, name=name or self.name, machines=self.machines)

    # -- summary -----------------------------------------------------------
    def duration_s(self):
        """Trace length: last job finish minus first job submission (0 if empty)."""
        if not self._jobs:
            return 0.0
        start = self._jobs[0].submit_time_s
        end = max(job.finish_time_s for job in self._jobs)
        return max(0.0, end - start)

    def bytes_moved(self):
        """Sum over jobs of input + shuffle + output bytes (Table 1 definition)."""
        return float(sum(job.total_bytes for job in self._jobs))

    def total_task_seconds(self):
        """Sum over jobs of map + reduce task time."""
        return float(sum(job.total_task_seconds for job in self._jobs))

    def summary(self):
        """Return a :class:`TraceSummary` (one Table-1 row) for this trace."""
        if not self._jobs:
            return TraceSummary(
                name=self.name, machines=self.machines, length_s=0.0, start_s=0.0,
                end_s=0.0, n_jobs=0, bytes_moved=0.0, total_task_seconds=0.0,
            )
        start = self._jobs[0].submit_time_s
        end = max(job.finish_time_s for job in self._jobs)
        return TraceSummary(
            name=self.name,
            machines=self.machines,
            length_s=end - start,
            start_s=start,
            end_s=end,
            n_jobs=len(self._jobs),
            bytes_moved=self.bytes_moved(),
            total_task_seconds=self.total_task_seconds(),
        )
