"""Trace quality checks: the §3 caveats made explicit.

Section 3 of the paper lists the data-quality issues that come with production
trace collection: partial information for jobs straddling the trace boundaries,
clusters taken offline mid-trace (CC-d "was taken offline several times due to
operational reasons", visible as gaps in Figure 7), and dimensions that some
traces simply do not record (FB-2009 and CC-a lack path names, FB-2010 lacks
output paths and job names).

Any analysis pipeline that accepts operator-supplied traces needs to detect
these issues before the characterization runs, both to warn the analyst and to
decide whether boundary trimming is needed.  This module provides:

* :func:`assess_quality` — a :class:`TraceQualityReport` covering dimension
  coverage, logging gaps, boundary-straddling jobs, duplicate ids, and the
  resulting per-analysis availability (which figures of the paper can be
  produced from this trace).
* :func:`trim_boundaries` — drop the first and last partially-observed windows
  of a trace, the mitigation the paper applies by intentionally querying nine
  days of data to capture a clean week for CC-b and CC-e.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import AnalysisError
from ..units import HOUR
from .schema import NUMERIC_DIMENSIONS
from .trace import Trace

__all__ = ["LoggingGap", "TraceQualityReport", "assess_quality", "trim_boundaries"]

#: Optional string dimensions whose presence gates specific analyses.
STRING_DIMENSIONS = ("name", "input_path", "output_path")


@dataclass
class LoggingGap:
    """A stretch of trace time with no job submissions at all.

    Attributes:
        start_s: first second of the gap (relative to the trace origin).
        end_s: last second of the gap.
    """

    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def duration_hours(self) -> float:
        return self.duration_s / HOUR


@dataclass
class TraceQualityReport:
    """Quality assessment of one trace.

    Attributes:
        workload: trace name.
        n_jobs: number of jobs examined.
        dimension_coverage: per-dimension fraction of jobs that record a value
            (numeric dimensions count non-``None``; string dimensions count
            non-empty strings).
        gaps: logging gaps longer than the detection threshold.
        gap_fraction: total gap time divided by trace length.
        straddling_jobs: jobs whose execution extends past the last submission
            seen in the trace (their recorded duration is suspect — the paper's
            "inaccuracies at trace start and termination").
        duplicate_job_ids: job ids that appear more than once.
        analyses_available: mapping of analysis name -> whether this trace can
            support it (e.g. access analyses need paths, naming needs names).
    """

    workload: str
    n_jobs: int
    dimension_coverage: Dict[str, float]
    gaps: List[LoggingGap]
    gap_fraction: float
    straddling_jobs: int
    duplicate_job_ids: List[str]
    analyses_available: Dict[str, bool] = field(default_factory=dict)

    @property
    def has_gaps(self) -> bool:
        return bool(self.gaps)

    @property
    def is_clean(self) -> bool:
        """True when no issue was detected that would bias the analyses."""
        return (not self.gaps and not self.duplicate_job_ids
                and self.straddling_jobs == 0)

    def summary_lines(self) -> List[str]:
        """Human-readable findings, one per line."""
        lines = ["Trace quality for %s (%d jobs):" % (self.workload, self.n_jobs)]
        for dimension, coverage in sorted(self.dimension_coverage.items()):
            if coverage < 1.0:
                lines.append("  %s recorded for %.0f%% of jobs" % (dimension, 100 * coverage))
        if self.gaps:
            lines.append("  %d logging gap(s) totalling %.1f hours (%.1f%% of the trace)"
                         % (len(self.gaps), sum(gap.duration_hours for gap in self.gaps),
                            100 * self.gap_fraction))
        if self.straddling_jobs:
            lines.append("  %d job(s) straddle the trace end" % self.straddling_jobs)
        if self.duplicate_job_ids:
            lines.append("  %d duplicate job id(s)" % len(self.duplicate_job_ids))
        unavailable = [name for name, ok in self.analyses_available.items() if not ok]
        if unavailable:
            lines.append("  analyses unavailable: %s" % ", ".join(sorted(unavailable)))
        if len(lines) == 1:
            lines.append("  no issues detected")
        return lines


def _coverage(trace: Trace) -> Dict[str, float]:
    coverage: Dict[str, float] = {}
    n_jobs = len(trace)
    for dimension in NUMERIC_DIMENSIONS:
        recorded = sum(1 for job in trace if getattr(job, dimension) is not None)
        coverage[dimension] = recorded / n_jobs
    for dimension in STRING_DIMENSIONS:
        recorded = sum(1 for job in trace if getattr(job, dimension))
        coverage[dimension] = recorded / n_jobs
    return coverage


def _find_gaps(trace: Trace, min_gap_hours: float) -> List[LoggingGap]:
    times = np.sort(trace.submit_times())
    origin = times[0]
    gaps: List[LoggingGap] = []
    threshold = min_gap_hours * HOUR
    deltas = np.diff(times)
    for index in np.nonzero(deltas > threshold)[0]:
        gaps.append(LoggingGap(start_s=float(times[index] - origin),
                               end_s=float(times[index + 1] - origin)))
    return gaps


def assess_quality(trace: Trace, min_gap_hours: float = 6.0,
                   min_coverage_for_analysis: float = 0.5) -> TraceQualityReport:
    """Assess a trace's data quality and analysis availability.

    Args:
        trace: the trace to assess.
        min_gap_hours: submission silences at least this long are reported as
            logging gaps (the CC-d situation).
        min_coverage_for_analysis: fraction of jobs that must record a
            dimension before the analyses depending on it are declared available.

    Raises:
        AnalysisError: for an empty trace.
    """
    if trace.is_empty():
        raise AnalysisError("cannot assess the quality of an empty trace")
    if min_gap_hours <= 0:
        raise AnalysisError("min_gap_hours must be positive")

    coverage = _coverage(trace)
    gaps = _find_gaps(trace, min_gap_hours)
    length = trace.duration_s()
    gap_fraction = (sum(gap.duration_s for gap in gaps) / length) if length > 0 else 0.0

    # A job "straddles" the collection boundary when it was submitted before
    # the last observed submission but is still running past it — its recorded
    # duration and task times describe work the trace only partially covers.
    last_submit = max(job.submit_time_s for job in trace)
    straddling = sum(1 for job in trace
                     if job.submit_time_s < last_submit and job.finish_time_s > last_submit)

    seen: Dict[str, int] = {}
    for job in trace:
        seen[job.job_id] = seen.get(job.job_id, 0) + 1
    duplicates = sorted(job_id for job_id, count in seen.items() if count > 1)

    threshold = min_coverage_for_analysis
    analyses = {
        "data_sizes (Fig 1)": coverage["input_bytes"] >= threshold,
        "access_patterns (Figs 2-6)": coverage["input_path"] >= threshold,
        "temporal (Figs 7-9)": coverage["map_task_seconds"] >= threshold,
        "naming (Fig 10)": coverage["name"] >= threshold,
        "clustering (Table 2)": all(coverage[dim] >= threshold for dim in NUMERIC_DIMENSIONS),
    }
    return TraceQualityReport(
        workload=trace.name,
        n_jobs=len(trace),
        dimension_coverage=coverage,
        gaps=gaps,
        gap_fraction=gap_fraction,
        straddling_jobs=straddling,
        duplicate_job_ids=duplicates,
        analyses_available=analyses,
    )


def trim_boundaries(trace: Trace, window_hours: float = 1.0,
                    name: Optional[str] = None) -> Trace:
    """Drop the first and last ``window_hours`` of a trace.

    The paper notes that jobs straddling the collection boundaries carry
    partial information and that it deliberately over-collected (nine days for
    the week-long CC-b and CC-e analyses) so the boundary windows could be
    discarded.  This helper performs that trim on any trace.

    Raises:
        AnalysisError: when the window is not positive or the trace is empty.
    """
    if trace.is_empty():
        raise AnalysisError("cannot trim an empty trace")
    if window_hours <= 0:
        raise AnalysisError("window_hours must be positive")
    start = trace.jobs[0].submit_time_s + window_hours * HOUR
    end = max(job.submit_time_s for job in trace) - window_hours * HOUR
    if end <= start:
        raise AnalysisError(
            "trace %r is too short to trim %.1f-hour boundaries" % (trace.name, window_hours))
    return trace.time_window(start, end, name=name or trace.name)
