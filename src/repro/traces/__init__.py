"""Trace substrate: job schema, trace containers, I/O, and the paper workloads.

Public surface::

    from repro.traces import Job, Trace, load_workload, read_trace, write_trace

See DESIGN.md for the full subpackage inventory.
"""

from .schema import FEATURE_DIMENSIONS, NUMERIC_DIMENSIONS, Job
from .trace import Trace, TraceSummary
from .io import (
    iter_csv,
    iter_jsonl,
    iter_trace,
    read_csv,
    read_jsonl,
    read_trace,
    write_csv,
    write_jsonl,
    write_trace,
)
from .hadoop_log import format_job_line, parse_history_lines, parse_job_line, read_history_log
from .anonymize import Anonymizer, anonymize_trace
from .export import AggregatedMetrics, aggregate_trace, merge_aggregates
from .quality import LoggingGap, TraceQualityReport, assess_quality, trim_boundaries
from .spec import AccessSpec, ArrivalSpec, JobClassSpec, NameMixEntry, WorkloadSpec
from .generator import SpecTraceGenerator, generate_trace
from .facebook import FB_2009, FB_2010, FACEBOOK_WORKLOADS
from .cloudera import CC_A, CC_B, CC_C, CC_D, CC_E, CLOUDERA_WORKLOADS
from .registry import (
    DEFAULT_SCALES,
    PAPER_WORKLOAD_NAMES,
    all_paper_specs,
    get_spec,
    load_all_paper_workloads,
    load_workload,
    register_spec,
    registered_names,
    unregister_spec,
)

__all__ = [
    "Job",
    "Trace",
    "TraceSummary",
    "NUMERIC_DIMENSIONS",
    "FEATURE_DIMENSIONS",
    "read_csv",
    "read_jsonl",
    "read_trace",
    "iter_csv",
    "iter_jsonl",
    "iter_trace",
    "write_csv",
    "write_jsonl",
    "write_trace",
    "parse_job_line",
    "parse_history_lines",
    "read_history_log",
    "format_job_line",
    "Anonymizer",
    "anonymize_trace",
    "AggregatedMetrics",
    "aggregate_trace",
    "merge_aggregates",
    "LoggingGap",
    "TraceQualityReport",
    "assess_quality",
    "trim_boundaries",
    "WorkloadSpec",
    "JobClassSpec",
    "NameMixEntry",
    "ArrivalSpec",
    "AccessSpec",
    "SpecTraceGenerator",
    "generate_trace",
    "FB_2009",
    "FB_2010",
    "FACEBOOK_WORKLOADS",
    "CC_A",
    "CC_B",
    "CC_C",
    "CC_D",
    "CC_E",
    "CLOUDERA_WORKLOADS",
    "PAPER_WORKLOAD_NAMES",
    "DEFAULT_SCALES",
    "all_paper_specs",
    "get_spec",
    "register_spec",
    "unregister_spec",
    "registered_names",
    "load_workload",
    "load_all_paper_workloads",
]
