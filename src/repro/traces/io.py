"""Trace serialization: CSV and JSON-lines round-trips, with optional gzip.

The on-disk formats mirror the per-job summaries Hadoop's history logs provide
(see §3 of the paper): one row per job, with the numeric dimensions plus the
optional name/path strings.  Both formats round-trip through
:meth:`Job.to_dict` / :meth:`Job.from_dict` so they stay in sync with the
schema automatically.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
import os
from typing import Iterable, Iterator, Optional

from ..errors import TraceFormatError
from .schema import Job
from .trace import Trace

__all__ = [
    "write_csv",
    "read_csv",
    "iter_csv",
    "write_jsonl",
    "read_jsonl",
    "iter_jsonl",
    "write_trace",
    "read_trace",
    "iter_trace",
]

#: Column order for CSV output.  Optional columns are written as empty strings.
CSV_COLUMNS = [
    "job_id",
    "submit_time_s",
    "duration_s",
    "input_bytes",
    "shuffle_bytes",
    "output_bytes",
    "map_task_seconds",
    "reduce_task_seconds",
    "map_tasks",
    "reduce_tasks",
    "name",
    "framework",
    "input_path",
    "output_path",
    "workload",
    "cluster_label",
]

_NUMERIC_COLUMNS = {
    "submit_time_s",
    "duration_s",
    "input_bytes",
    "shuffle_bytes",
    "output_bytes",
    "map_task_seconds",
    "reduce_task_seconds",
}
_INT_COLUMNS = {"map_tasks", "reduce_tasks"}


def _open_text(path, mode):
    """Open ``path`` as text, transparently handling a ``.gz`` suffix."""
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8", newline="")


# ---------------------------------------------------------------------------
# CSV
# ---------------------------------------------------------------------------
def write_csv(trace: Trace, path) -> None:
    """Write a trace to ``path`` as CSV (gzip if the path ends with ``.gz``)."""
    with _open_text(path, "w") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS, extrasaction="ignore")
        writer.writeheader()
        for job in trace:
            row = job.to_dict()
            writer.writerow({key: ("" if row.get(key) is None else row.get(key)) for key in CSV_COLUMNS})


def iter_csv(path) -> Iterator[Job]:
    """Yield jobs from a CSV trace file one row at a time (lazy).

    The file stays open only while the generator is being consumed; memory
    use is one row, so arbitrarily large traces can be streamed straight into
    the columnar engine's chunked store without a job-list detour.

    Raises:
        TraceFormatError: on a missing header or a malformed row.
    """
    with _open_text(path, "r") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "job_id" not in reader.fieldnames:
            raise TraceFormatError("%s: missing CSV header with a job_id column" % (path,))
        for line_number, row in enumerate(reader, start=2):
            yield _job_from_csv_row(row, path, line_number)


def read_csv(path, name: Optional[str] = None, machines: Optional[int] = None) -> Trace:
    """Read a trace previously written by :func:`write_csv`.

    Rows are streamed via :func:`iter_csv` — the whole file is never held as
    text; only the resulting :class:`Job` objects are materialized.

    Raises:
        TraceFormatError: on a missing header or a malformed row.
    """
    return Trace(iter_csv(path), name=name or _default_name(path), machines=machines)


def _job_from_csv_row(row, path, line_number):
    data = {}
    for key, value in row.items():
        if value is None or value == "":
            data[key] = None
            continue
        if key in _NUMERIC_COLUMNS:
            try:
                data[key] = float(value)
            except ValueError:
                raise TraceFormatError(
                    "%s line %d: column %s is not numeric: %r" % (path, line_number, key, value)
                )
        elif key in _INT_COLUMNS:
            try:
                data[key] = int(float(value))
            except ValueError:
                raise TraceFormatError(
                    "%s line %d: column %s is not an integer: %r" % (path, line_number, key, value)
                )
        else:
            data[key] = value
    try:
        return Job.from_dict(data)
    except Exception as exc:
        raise TraceFormatError("%s line %d: %s" % (path, line_number, exc))


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------
def write_jsonl(trace: Trace, path) -> None:
    """Write a trace to ``path`` as JSON-lines (gzip if the path ends with ``.gz``)."""
    with _open_text(path, "w") as handle:
        for job in trace:
            record = {key: value for key, value in job.to_dict().items() if value is not None}
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")


def iter_jsonl(path) -> Iterator[Job]:
    """Yield jobs from a JSON-lines trace file one record at a time (lazy).

    Raises:
        TraceFormatError: on malformed JSON or a record violating the schema.
    """
    with _open_text(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError("%s line %d: invalid JSON: %s" % (path, line_number, exc))
            try:
                yield Job.from_dict(record)
            except TraceFormatError:
                raise
            except Exception as exc:
                raise TraceFormatError("%s line %d: %s" % (path, line_number, exc))


def read_jsonl(path, name: Optional[str] = None, machines: Optional[int] = None) -> Trace:
    """Read a trace previously written by :func:`write_jsonl`.

    Rows are streamed via :func:`iter_jsonl`; only the resulting :class:`Job`
    objects are materialized.

    Raises:
        TraceFormatError: on malformed JSON or a record violating the schema.
    """
    return Trace(iter_jsonl(path), name=name or _default_name(path), machines=machines)


# ---------------------------------------------------------------------------
# Format dispatch
# ---------------------------------------------------------------------------
def write_trace(trace: Trace, path) -> None:
    """Write a trace, choosing the format from the file extension.

    ``.csv`` / ``.csv.gz`` use CSV; ``.jsonl`` / ``.jsonl.gz`` use JSON lines.
    """
    if _strip_gz(path).endswith(".csv"):
        write_csv(trace, path)
    elif _strip_gz(path).endswith(".jsonl"):
        write_jsonl(trace, path)
    else:
        raise TraceFormatError("unknown trace format for %r (use .csv or .jsonl)" % (path,))


def read_trace(path, name: Optional[str] = None, machines: Optional[int] = None) -> Trace:
    """Read a trace, choosing the format from the file extension."""
    if _strip_gz(path).endswith(".csv"):
        return read_csv(path, name=name, machines=machines)
    if _strip_gz(path).endswith(".jsonl"):
        return read_jsonl(path, name=name, machines=machines)
    raise TraceFormatError("unknown trace format for %r (use .csv or .jsonl)" % (path,))


def iter_trace(path) -> Iterator[Job]:
    """Stream jobs from a trace file lazily, choosing the format by extension.

    This is the bounded-memory entry point: pair it with
    :meth:`repro.engine.ChunkedTraceStore.write` to convert a trace file to
    the columnar on-disk format without ever materializing the job list.
    """
    if _strip_gz(path).endswith(".csv"):
        return iter_csv(path)
    if _strip_gz(path).endswith(".jsonl"):
        return iter_jsonl(path)
    raise TraceFormatError("unknown trace format for %r (use .csv or .jsonl)" % (path,))


def _strip_gz(path):
    text = str(path)
    return text[:-3] if text.endswith(".gz") else text


def _default_name(path):
    base = os.path.basename(str(path))
    for suffix in (".gz", ".csv", ".jsonl"):
        if base.endswith(suffix):
            base = base[: -len(suffix)]
    return base or "trace"
