"""Parser for Hadoop JobTracker-history-style log lines.

The paper's traces were extracted from "standard logging tools in Hadoop" (§3)
— per-job summary lines from the JobTracker history.  Production deployments
that want to feed their own logs into this library can convert them to the
key=value summary format parsed here (one line per job), which mirrors the
fields the paper's methodology needs:

    Job JOBID="job_201101250930_0001" SUBMIT_TIME="1295948570321" \
        FINISH_TIME="1295948600321" JOBNAME="insert into table x" \
        TOTAL_MAPS="12" TOTAL_REDUCES="3" HDFS_BYTES_READ="1048576" \
        MAP_OUTPUT_BYTES="65536" HDFS_BYTES_WRITTEN="4096" \
        MAP_SLOT_SECONDS="120" REDUCE_SLOT_SECONDS="30" \
        INPUT_DIR="/data/hashed/abc" OUTPUT_DIR="/data/hashed/def"

Timestamps are Hadoop-style epoch milliseconds; the parser converts them to
seconds relative to the earliest submission it sees, matching the convention
used by the rest of the library.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional

from ..errors import TraceFormatError
from .schema import Job
from .trace import Trace

__all__ = ["parse_job_line", "parse_history_lines", "read_history_log", "format_job_line"]

_KV_RE = re.compile(r'(\w+)="([^"]*)"')

#: Mapping of Hadoop history attribute names to :class:`Job` fields.
_REQUIRED_KEYS = ("JOBID", "SUBMIT_TIME", "FINISH_TIME")


def parse_job_line(line: str) -> Dict[str, str]:
    """Parse one ``Job KEY="value" ...`` line into a dict of raw strings.

    Raises:
        TraceFormatError: when the line is not a Job summary line or is
            missing any of the required keys.
    """
    stripped = line.strip()
    if not stripped.startswith("Job "):
        raise TraceFormatError("not a Job summary line: %r" % (line[:80],))
    fields = dict(_KV_RE.findall(stripped))
    missing = [key for key in _REQUIRED_KEYS if key not in fields]
    if missing:
        raise TraceFormatError("Job line missing required keys %s: %r" % (missing, line[:80]))
    return fields


def _to_float(fields: Dict[str, str], key: str, default: float = 0.0) -> float:
    raw = fields.get(key)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise TraceFormatError("field %s is not numeric: %r" % (key, raw))


def _to_int(fields: Dict[str, str], key: str) -> Optional[int]:
    raw = fields.get(key)
    if raw is None or raw == "":
        return None
    try:
        return int(float(raw))
    except ValueError:
        raise TraceFormatError("field %s is not an integer: %r" % (key, raw))


def parse_history_lines(lines: Iterable[str], name: str = "hadoop-history",
                        machines: Optional[int] = None) -> Trace:
    """Parse an iterable of history lines into a :class:`Trace`.

    Lines that are not Job summary lines (task attempts, blank lines,
    comments) are skipped silently — real history logs interleave many record
    types and only the per-job summaries matter here.
    """
    raw_records: List[Dict[str, str]] = []
    for line in lines:
        stripped = line.strip()
        if not stripped or not stripped.startswith("Job "):
            continue
        raw_records.append(parse_job_line(stripped))

    if not raw_records:
        return Trace([], name=name, machines=machines)

    # Hadoop reports epoch milliseconds; convert to seconds relative to the
    # first submission so the trace origin is zero.
    origin_ms = min(_to_float(record, "SUBMIT_TIME") for record in raw_records)
    jobs = []
    for record in raw_records:
        submit_ms = _to_float(record, "SUBMIT_TIME")
        finish_ms = _to_float(record, "FINISH_TIME", default=submit_ms)
        jobs.append(
            Job(
                job_id=record["JOBID"],
                submit_time_s=(submit_ms - origin_ms) / 1000.0,
                duration_s=max(0.0, (finish_ms - submit_ms) / 1000.0),
                input_bytes=_to_float(record, "HDFS_BYTES_READ"),
                shuffle_bytes=_to_float(record, "MAP_OUTPUT_BYTES"),
                output_bytes=_to_float(record, "HDFS_BYTES_WRITTEN"),
                map_task_seconds=_to_float(record, "MAP_SLOT_SECONDS"),
                reduce_task_seconds=_to_float(record, "REDUCE_SLOT_SECONDS"),
                map_tasks=_to_int(record, "TOTAL_MAPS"),
                reduce_tasks=_to_int(record, "TOTAL_REDUCES"),
                name=record.get("JOBNAME") or None,
                input_path=record.get("INPUT_DIR") or None,
                output_path=record.get("OUTPUT_DIR") or None,
                workload=name,
            )
        )
    return Trace(jobs, name=name, machines=machines)


def read_history_log(path, name: Optional[str] = None, machines: Optional[int] = None) -> Trace:
    """Read a Hadoop-history-style log file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_history_lines(handle, name=name or "hadoop-history", machines=machines)


def format_job_line(job: Job) -> str:
    """Render a :class:`Job` back into the history-line format.

    Useful for tests and for exporting synthetic traces into a format other
    Hadoop tooling understands.  Times are written as epoch milliseconds with
    origin zero.
    """
    parts = [
        'JOBID="%s"' % job.job_id,
        'SUBMIT_TIME="%d"' % round(job.submit_time_s * 1000),
        'FINISH_TIME="%d"' % round(job.finish_time_s * 1000),
        'HDFS_BYTES_READ="%d"' % round(job.input_bytes or 0),
        'MAP_OUTPUT_BYTES="%d"' % round(job.shuffle_bytes or 0),
        'HDFS_BYTES_WRITTEN="%d"' % round(job.output_bytes or 0),
        'MAP_SLOT_SECONDS="%d"' % round(job.map_task_seconds or 0),
        'REDUCE_SLOT_SECONDS="%d"' % round(job.reduce_task_seconds or 0),
    ]
    if job.map_tasks is not None:
        parts.append('TOTAL_MAPS="%d"' % job.map_tasks)
    if job.reduce_tasks is not None:
        parts.append('TOTAL_REDUCES="%d"' % job.reduce_tasks)
    if job.name:
        parts.append('JOBNAME="%s"' % job.name.replace('"', "'"))
    if job.input_path:
        parts.append('INPUT_DIR="%s"' % job.input_path)
    if job.output_path:
        parts.append('OUTPUT_DIR="%s"' % job.output_path)
    return "Job " + " ".join(parts)
