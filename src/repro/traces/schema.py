"""Job-level trace schema.

The paper's traces (§3) contain per-job summaries with the following
dimensions: job ID, job name, input/shuffle/output data sizes in bytes, job
duration, submit time, map and reduce task times in slot-seconds, map and
reduce task counts, and input/output file paths.  :class:`Job` captures
exactly these fields plus the derived quantities the analyses need.

Some traces are missing some dimensions (the paper notes FB-2009 and CC-a lack
path names, FB-2010 lacks output paths and job names).  Missing string fields
are represented as ``None``; missing numeric fields are represented as ``None``
too, never as zero, so "zero bytes" and "not recorded" stay distinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Optional

from ..errors import SchemaError

__all__ = ["Job", "NUMERIC_DIMENSIONS", "FEATURE_DIMENSIONS", "extract_first_word"]


def extract_first_word(name: Optional[str]) -> Optional[str]:
    """First word of a job name, lower-cased and stripped of digits/symbols.

    This mirrors §6.1 of the paper: "we focus on the first word of job names,
    ignoring any capitalization, numbers, or other symbols."  Returns ``None``
    for missing/empty names or when nothing alphabetic remains.  Shared by
    :attr:`Job.first_word` and the columnar naming analysis so both paths
    classify names identically.
    """
    if not name:
        return None
    stripped = name.strip()
    token = stripped.split()[0] if stripped else ""
    cleaned = "".join(ch for ch in token.lower() if ch.isalpha())
    return cleaned or None

#: Numeric per-job dimensions, in the order used throughout the library.
NUMERIC_DIMENSIONS = (
    "input_bytes",
    "shuffle_bytes",
    "output_bytes",
    "duration_s",
    "map_task_seconds",
    "reduce_task_seconds",
)

#: The six dimensions used by the paper's k-means clustering (§6.2).
FEATURE_DIMENSIONS = NUMERIC_DIMENSIONS


@dataclass
class Job:
    """A single MapReduce job record.

    Attributes:
        job_id: unique identifier within a trace.
        submit_time_s: submission time in seconds from the trace origin.
        duration_s: wall-clock duration of the job in seconds.
        input_bytes: bytes read by map tasks from the distributed filesystem.
        shuffle_bytes: bytes moved from map output to reduce input
            (zero for map-only jobs).
        output_bytes: bytes written by the final stage.
        map_task_seconds: total map task time (slot-seconds).
        reduce_task_seconds: total reduce task time (slot-seconds);
            zero for map-only jobs.
        map_tasks: number of map tasks, if recorded.
        reduce_tasks: number of reduce tasks, if recorded.
        name: user- or framework-supplied job name, if recorded.
        framework: name of the submitting framework (``"hive"``, ``"pig"``,
            ``"oozie"``, ``"native"``), if known.
        input_path: hashed path of the primary input file, if recorded.
        output_path: hashed path of the primary output file, if recorded.
        workload: name of the workload this job belongs to (e.g. ``"FB-2009"``).
        cluster_label: label of the Table-2 style job class this job was drawn
            from or assigned to, if any.
    """

    job_id: str
    submit_time_s: float
    duration_s: float
    input_bytes: float
    shuffle_bytes: float
    output_bytes: float
    map_task_seconds: float
    reduce_task_seconds: float
    map_tasks: Optional[int] = None
    reduce_tasks: Optional[int] = None
    name: Optional[str] = None
    framework: Optional[str] = None
    input_path: Optional[str] = None
    output_path: Optional[str] = None
    workload: Optional[str] = None
    cluster_label: Optional[str] = None

    def __post_init__(self):
        self.validate()

    # ------------------------------------------------------------------
    # Validation and derived quantities
    # ------------------------------------------------------------------
    def validate(self):
        """Check field types and value ranges; raise :class:`SchemaError` if bad."""
        if not self.job_id:
            raise SchemaError("job_id must be a non-empty string")
        numeric_fields = ("submit_time_s", "duration_s") + NUMERIC_DIMENSIONS[:3] + (
            "map_task_seconds",
            "reduce_task_seconds",
        )
        for field_name in numeric_fields:
            value = getattr(self, field_name)
            if value is None:
                continue
            try:
                value = float(value)
            except (TypeError, ValueError):
                raise SchemaError(
                    "job %s: field %s must be numeric, got %r"
                    % (self.job_id, field_name, getattr(self, field_name))
                )
            setattr(self, field_name, value)
            if field_name != "submit_time_s" and value < 0:
                raise SchemaError(
                    "job %s: field %s must be non-negative, got %r"
                    % (self.job_id, field_name, value)
                )
        for field_name in ("map_tasks", "reduce_tasks"):
            value = getattr(self, field_name)
            if value is None:
                continue
            if int(value) != value or value < 0:
                raise SchemaError(
                    "job %s: field %s must be a non-negative integer, got %r"
                    % (self.job_id, field_name, value)
                )
            setattr(self, field_name, int(value))

    # Derived quantities -------------------------------------------------
    @property
    def total_bytes(self):
        """Input + shuffle + output bytes — the "bytes moved" of Table 1."""
        return (self.input_bytes or 0.0) + (self.shuffle_bytes or 0.0) + (self.output_bytes or 0.0)

    @property
    def total_task_seconds(self):
        """Map + reduce task time, the paper's per-job compute measure."""
        return (self.map_task_seconds or 0.0) + (self.reduce_task_seconds or 0.0)

    @property
    def finish_time_s(self):
        """Submission time plus duration."""
        return self.submit_time_s + (self.duration_s or 0.0)

    @property
    def is_map_only(self):
        """True when the job has no reduce stage (zero shuffle and reduce time)."""
        return (self.shuffle_bytes or 0.0) == 0.0 and (self.reduce_task_seconds or 0.0) == 0.0

    @property
    def data_ratio(self):
        """Output bytes divided by input bytes (``inf`` for zero input).

        The paper (§6.2) observes that some map stages aggregate (ratio < 1)
        while some reduce stages expand (ratio > 1), inverting the original
        map/reduce intuition.
        """
        inp = self.input_bytes or 0.0
        out = self.output_bytes or 0.0
        if inp == 0.0:
            return float("inf") if out > 0 else 1.0
        return out / inp

    @property
    def first_word(self):
        """First word of the job name, lower-cased and stripped of digits/symbols.

        This mirrors §6.1: "we focus on the first word of job names, ignoring
        any capitalization, numbers, or other symbols."  Returns ``None`` when
        the trace did not record job names.
        """
        return extract_first_word(self.name)

    # Serialization -------------------------------------------------------
    def to_dict(self):
        """Return a plain dict of all fields (for JSON/CSV serialization)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        """Build a :class:`Job` from a dict produced by :meth:`to_dict`.

        Unknown keys are ignored so traces written by newer versions can be
        read by older ones.
        """
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        kwargs = {key: value for key, value in data.items() if key in known}
        missing = {"job_id", "submit_time_s", "duration_s", "input_bytes",
                   "shuffle_bytes", "output_bytes", "map_task_seconds",
                   "reduce_task_seconds"} - set(kwargs)
        if missing:
            raise SchemaError("job record missing required fields: %s" % sorted(missing))
        return cls(**kwargs)

    def feature_vector(self):
        """Return the 6-dimensional vector used for k-means clustering (§6.2).

        Order: input, shuffle, output bytes, duration, map task time, reduce
        task time.  Missing values are treated as zero.
        """
        return [float(getattr(self, dim) or 0.0) for dim in FEATURE_DIMENSIONS]
