"""Registry of the seven paper workloads plus user-registered specs.

The registry maps workload names ("FB-2009", "CC-c", ...) to their
:class:`~repro.traces.spec.WorkloadSpec` and offers one-call trace generation.
Downstream users can register their own specs alongside the paper ones, which
is how the benchmark harness supports "workload suites" (§7 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SpecError
from .cloudera import CLOUDERA_WORKLOADS
from .facebook import FACEBOOK_WORKLOADS
from .generator import generate_trace
from .spec import WorkloadSpec
from .trace import Trace

__all__ = [
    "PAPER_WORKLOAD_NAMES",
    "all_paper_specs",
    "get_spec",
    "register_spec",
    "unregister_spec",
    "registered_names",
    "load_workload",
    "load_all_paper_workloads",
    "DEFAULT_SCALES",
]

#: Names of the seven paper workloads, in Table 1 order.
PAPER_WORKLOAD_NAMES = ("CC-a", "CC-b", "CC-c", "CC-d", "CC-e", "FB-2009", "FB-2010")

#: Default down-scale factor applied when generating each paper workload for
#: tests and benchmarks.  The Cloudera workloads are small enough to generate
#: at full scale; the two Facebook workloads (>1.1M jobs each) are scaled to a
#: few tens of thousands of jobs, which preserves their class mixture.
DEFAULT_SCALES = {
    "CC-a": 1.0,
    "CC-b": 1.0,
    "CC-c": 1.0,
    "CC-d": 1.0,
    "CC-e": 1.0,
    "FB-2009": 0.02,
    "FB-2010": 0.02,
}

_REGISTRY: Dict[str, WorkloadSpec] = {}
_REGISTRY.update(CLOUDERA_WORKLOADS)
_REGISTRY.update(FACEBOOK_WORKLOADS)


def all_paper_specs() -> List[WorkloadSpec]:
    """Return the seven paper workload specs in Table 1 order."""
    return [_REGISTRY[name] for name in PAPER_WORKLOAD_NAMES]


def get_spec(name: str) -> WorkloadSpec:
    """Look up a registered workload spec by name.

    Raises:
        SpecError: if the name is unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SpecError(
            "unknown workload %r; registered workloads: %s" % (name, ", ".join(sorted(_REGISTRY)))
        )


def register_spec(spec: WorkloadSpec, overwrite: bool = False) -> None:
    """Register a user-defined workload spec under its own name.

    Raises:
        SpecError: if the name is taken and ``overwrite`` is false.
    """
    if spec.name in _REGISTRY and not overwrite:
        raise SpecError("workload %r is already registered" % (spec.name,))
    _REGISTRY[spec.name] = spec


def unregister_spec(name: str) -> None:
    """Remove a user-registered workload; paper workloads cannot be removed."""
    if name in PAPER_WORKLOAD_NAMES:
        raise SpecError("cannot unregister the paper workload %r" % (name,))
    _REGISTRY.pop(name, None)


def registered_names() -> List[str]:
    """All registered workload names, paper workloads first."""
    extra = sorted(name for name in _REGISTRY if name not in PAPER_WORKLOAD_NAMES)
    return list(PAPER_WORKLOAD_NAMES) + extra


def load_workload(name: str, seed: int = 0, scale: Optional[float] = None,
                  time_scale: Optional[float] = None) -> Trace:
    """Generate the named workload's trace.

    Args:
        name: a registered workload name.
        seed: RNG seed for deterministic generation.
        scale: job-count scale factor; defaults to :data:`DEFAULT_SCALES` for
            paper workloads and 1.0 otherwise.
        time_scale: trace-length scale factor.  When omitted, scaled-down
            workloads are also compressed in time by the same factor (bounded
            below by one week where possible) so jobs-per-hour density — and
            with it the hourly burstiness and correlation statistics — stays
            comparable to the full-scale workload (the SWIM scale-down of §7).
    """
    spec = get_spec(name)
    if scale is None:
        scale = DEFAULT_SCALES.get(name, 1.0)
    if time_scale is None and scale < 1.0:
        # Keep at least a week of trace when the full workload allows it, so
        # the Figure-7 weekly views stay meaningful.
        week_fraction = min(1.0, (7 * 24 * 3600.0) / spec.trace_length_s)
        time_scale = max(scale, week_fraction)
    return generate_trace(spec, seed=seed, scale=scale, time_scale=time_scale)


def load_all_paper_workloads(seed: int = 0, scale: Optional[float] = None,
                             scale_overrides: Optional[Dict[str, float]] = None) -> Dict[str, Trace]:
    """Generate every paper workload; returns ``{name: trace}`` in Table 1 order.

    ``scale`` (if given) applies to every workload; ``scale_overrides`` lets
    callers adjust individual workloads on top of that.
    """
    overrides = scale_overrides or {}
    traces = {}
    for name in PAPER_WORKLOAD_NAMES:
        effective = overrides.get(name, scale if scale is not None else DEFAULT_SCALES.get(name, 1.0))
        traces[name] = load_workload(name, seed=seed, scale=effective)
    return traces
