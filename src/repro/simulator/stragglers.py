"""Straggler injection and mitigation modelling (§6.2 of the paper).

The paper observes that the dominance of small jobs complicates straggler
mitigation: small jobs contain only a handful of tasks — sometimes a single
map and a single reduce task — so a slow task cannot be told apart from an
inherently slow job, and speculative execution has nothing to compare against.
The paper also notes that *if* stragglers occur randomly with a fixed
probability, a job with few tasks is less likely to contain one at all, but
any straggler it does contain delays the whole job by the full slowdown.

This module makes those statements quantitatively checkable on the replay
substrate:

* :class:`StragglerModel` injects stragglers into a job's tasks with a fixed
  per-task probability and a multiplicative slowdown factor — the "stragglers
  occur randomly with a fixed probability" hypothesis of §6.2.
* :class:`SpeculativeExecutionModel` approximates Hadoop speculative
  execution: a straggling task is re-launched and effectively capped near the
  duration of its sibling tasks, but *only* when the job has enough
  comparable tasks in the same stage for the slowness to be detectable.
* :func:`straggler_task_transform` packages both as a ``task_transform``
  hook for :class:`~repro.simulator.replay.WorkloadReplayer`.
* :func:`straggler_impact` compares a baseline replay against a
  straggler-injected replay and summarizes the impact by job size class.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import SimulationError
from ..units import GB
from .metrics import SimulationMetrics
from .tasks import SimJob, SimTask

__all__ = [
    "StragglerModel",
    "SpeculativeExecutionModel",
    "StragglerInjectionStats",
    "straggler_task_transform",
    "StragglerImpact",
    "straggler_impact",
]


@dataclass(frozen=True)
class StragglerModel:
    """Random straggler injection with a fixed per-task probability.

    Attributes:
        probability: chance that any individual task straggles.
        slowdown_factor: multiplier applied to a straggling task's duration
            (the paper's informal definition of a straggler is a task that
            "executes significantly slower than other tasks in a job").
        seed: RNG seed; injection is deterministic given the seed and the
            order in which jobs are transformed.
    """

    probability: float = 0.05
    slowdown_factor: float = 5.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise SimulationError("straggler probability must be in [0, 1]")
        if self.slowdown_factor < 1.0:
            raise SimulationError("slowdown factor must be at least 1.0")


@dataclass(frozen=True)
class SpeculativeExecutionModel:
    """Approximation of Hadoop speculative execution.

    A straggling task is assumed to be detected and re-executed when — and
    only when — its stage contains at least ``min_comparable_tasks`` tasks, so
    the scheduler has siblings to compare progress against.  A rescued task's
    duration is capped at ``rescue_cap_factor`` times the stage's normal task
    duration plus ``relaunch_overhead_s`` for the backup copy to start.

    The "only when comparable tasks exist" condition is exactly the §6.2
    argument: single-task jobs cannot benefit because an abnormally slow task
    is indistinguishable from an inherently slow job.

    Attributes:
        enabled: whether speculative execution runs at all.
        min_comparable_tasks: minimum number of tasks in a stage for a
            straggler to be detectable.
        rescue_cap_factor: multiple of the normal task duration the rescued
            task is capped at.
        relaunch_overhead_s: extra seconds paid for launching the backup copy.
    """

    enabled: bool = True
    min_comparable_tasks: int = 4
    rescue_cap_factor: float = 1.5
    relaunch_overhead_s: float = 5.0

    def __post_init__(self):
        if self.min_comparable_tasks < 2:
            raise SimulationError("speculation needs at least two comparable tasks")
        if self.rescue_cap_factor < 1.0:
            raise SimulationError("rescue cap factor must be at least 1.0")
        if self.relaunch_overhead_s < 0:
            raise SimulationError("relaunch overhead must be non-negative")


@dataclass
class StragglerInjectionStats:
    """Bookkeeping of what the injection transform actually did.

    Attributes:
        tasks_seen: total tasks examined.
        stragglers_injected: tasks that were slowed down.
        stragglers_rescued: stragglers capped by speculative execution.
        stragglers_undetectable: stragglers in stages too small for detection.
        jobs_affected: number of distinct jobs containing at least one straggler.
    """

    tasks_seen: int = 0
    stragglers_injected: int = 0
    stragglers_rescued: int = 0
    stragglers_undetectable: int = 0
    jobs_affected: int = 0
    _affected_job_ids: set = field(default_factory=set, repr=False)

    @property
    def straggler_rate(self) -> float:
        """Observed fraction of tasks that straggled."""
        if self.tasks_seen == 0:
            return 0.0
        return self.stragglers_injected / self.tasks_seen

    def _mark_job(self, job_id: str) -> None:
        if job_id not in self._affected_job_ids:
            self._affected_job_ids.add(job_id)
            self.jobs_affected += 1


def straggler_task_transform(
    model: StragglerModel,
    speculation: Optional[SpeculativeExecutionModel] = None,
    stats: Optional[StragglerInjectionStats] = None,
    per_job_streams: bool = False,
) -> Callable[[SimJob], None]:
    """Build a ``task_transform`` hook that injects (and optionally rescues) stragglers.

    Args:
        model: the straggler injection model.
        speculation: the mitigation model; pass ``None`` (or a model with
            ``enabled=False``) to replay without speculative execution.
        stats: optional stats collector, filled in as jobs are transformed.
        per_job_streams: draw each job's randomness from its own RNG stream
            seeded by ``(model.seed, crc32(job_id))`` instead of one shared
            sequential stream.  The default shared stream is deterministic
            given the seed *and the order jobs are transformed in* — which is
            input order for serial and exact-sharded replays, but changes
            with the window split under windowed sharding (each window pulls
            its own jobs).  Per-job streams make the injected slowdowns a
            pure function of (seed, job_id), so digests agree across *any*
            shard count and partitioning; the trade-off is a different (but
            equally valid) random pattern than the shared stream produces.

    Returns:
        A callable suitable for ``WorkloadReplayer(task_transform=...)``.
    """
    rng = np.random.default_rng(model.seed)
    collected = stats if stats is not None else StragglerInjectionStats()

    def transform(sim_job: SimJob) -> None:
        if per_job_streams:
            job_rng = np.random.default_rng(
                (model.seed, zlib.crc32(sim_job.job_id.encode("utf-8"))))
        else:
            job_rng = rng
        for stage_tasks in (sim_job.map_tasks, sim_job.reduce_tasks):
            if not stage_tasks:
                continue
            normal_duration = float(np.median([task.duration_s for task in stage_tasks]))
            detectable = len(stage_tasks) >= (
                speculation.min_comparable_tasks if speculation else np.inf
            )
            for task in stage_tasks:
                collected.tasks_seen += 1
                if job_rng.random() >= model.probability:
                    continue
                collected.stragglers_injected += 1
                collected._mark_job(sim_job.job_id)
                slowed = task.duration_s * model.slowdown_factor
                if speculation is not None and speculation.enabled and detectable:
                    rescued = (normal_duration * speculation.rescue_cap_factor
                               + speculation.relaunch_overhead_s)
                    if rescued < slowed:
                        task.duration_s = rescued
                        collected.stragglers_rescued += 1
                        continue
                if speculation is not None and speculation.enabled and not detectable:
                    collected.stragglers_undetectable += 1
                task.duration_s = slowed

    transform.stats = collected  # type: ignore[attr-defined]
    return transform


@dataclass
class StragglerImpact:
    """Summary of how straggler injection changed job completion times.

    Attributes:
        small_job_threshold_bytes: byte threshold splitting small from large jobs.
        mean_slowdown_small: mean completion-time ratio (straggler / baseline)
            over small jobs.
        mean_slowdown_large: same ratio over large jobs.
        p95_slowdown_small: 95th-percentile ratio over small jobs.
        p95_slowdown_large: 95th-percentile ratio over large jobs.
        fraction_small_affected: fraction of small jobs slowed by more than 5%.
        fraction_large_affected: fraction of large jobs slowed by more than 5%.
    """

    small_job_threshold_bytes: float
    mean_slowdown_small: float
    mean_slowdown_large: float
    p95_slowdown_small: float
    p95_slowdown_large: float
    fraction_small_affected: float
    fraction_large_affected: float


def _slowdowns(baseline: SimulationMetrics, perturbed: SimulationMetrics,
               predicate) -> np.ndarray:
    base = {outcome.job_id: outcome for outcome in baseline.outcomes}
    ratios = []
    for outcome in perturbed.outcomes:
        reference = base.get(outcome.job_id)
        if reference is None or not predicate(outcome):
            continue
        if reference.completion_time_s is None or outcome.completion_time_s is None:
            continue
        if reference.completion_time_s <= 0:
            continue
        ratios.append(outcome.completion_time_s / reference.completion_time_s)
    return np.array(ratios, dtype=float)


def straggler_impact(baseline: SimulationMetrics, perturbed: SimulationMetrics,
                     small_job_threshold_bytes: float = 10 * GB) -> StragglerImpact:
    """Compare a baseline replay against a straggler-injected replay.

    Both metrics objects must come from replays of the *same* trace (job ids
    are matched one-to-one); jobs missing from either run are skipped.

    Raises:
        SimulationError: when no job id appears in both runs.
    """
    small = _slowdowns(baseline, perturbed,
                       lambda outcome: outcome.total_bytes <= small_job_threshold_bytes)
    large = _slowdowns(baseline, perturbed,
                       lambda outcome: outcome.total_bytes > small_job_threshold_bytes)
    if small.size == 0 and large.size == 0:
        raise SimulationError("the two replays share no finished jobs to compare")

    def summarize(values: np.ndarray):
        if values.size == 0:
            return 1.0, 1.0, 0.0
        return (float(values.mean()), float(np.percentile(values, 95)),
                float((values > 1.05).mean()))

    mean_small, p95_small, affected_small = summarize(small)
    mean_large, p95_large, affected_large = summarize(large)
    return StragglerImpact(
        small_job_threshold_bytes=float(small_job_threshold_bytes),
        mean_slowdown_small=mean_small,
        mean_slowdown_large=mean_large,
        p95_slowdown_small=p95_small,
        p95_slowdown_large=p95_large,
        fraction_small_affected=affected_small,
        fraction_large_affected=affected_large,
    )
