"""Simplified HDFS model: file namespace, blocks, replication, and reads.

The paper's §4 observations motivate storage-level policies (tiering, caching,
eviction).  To evaluate those policies the replayer needs a filesystem model
that tracks which files exist, how big they are, how many blocks and replicas
they occupy, and how long a read or write takes given per-node disk bandwidth.
The model is deliberately coarse — block placement is round-robin and reads
are bandwidth-limited streams — because the quantities the benchmarks compare
(cache hit rates, bytes served from cache versus disk) only need per-file
access accounting, not packet-level fidelity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import SimulationError

__all__ = ["HdfsFile", "HdfsConfig", "Hdfs"]


@dataclass(frozen=True)
class HdfsConfig:
    """Static HDFS parameters.

    Attributes:
        block_size: block size in bytes (128 MB default).
        replication: replicas per block.
        n_datanodes: number of datanodes (used for placement spreading).
        disk_bandwidth_bps: sequential read/write bandwidth per datanode.
        retain_files: keep an :class:`HdfsFile` entry per path.  Streaming
            replays of traces without recorded paths disable this so the
            namespace does not grow by one implicit entry per job.
    """

    block_size: float = 128 * 1024 * 1024
    replication: int = 3
    n_datanodes: int = 100
    disk_bandwidth_bps: float = 100e6
    retain_files: bool = True

    def __post_init__(self):
        if self.block_size <= 0:
            raise SimulationError("block_size must be positive")
        if self.replication <= 0:
            raise SimulationError("replication must be positive")
        if self.n_datanodes <= 0:
            raise SimulationError("n_datanodes must be positive")
        if self.disk_bandwidth_bps <= 0:
            raise SimulationError("disk_bandwidth_bps must be positive")


@dataclass
class HdfsFile:
    """One file in the namespace.

    Attributes:
        path: file path.
        size_bytes: logical size.
        created_at_s: simulation time of creation.
        last_access_s: simulation time of the most recent read or write.
        access_count: number of reads since creation.
    """

    path: str
    size_bytes: float
    created_at_s: float = 0.0
    last_access_s: float = 0.0
    access_count: int = 0

    def n_blocks(self, block_size: float) -> int:
        return max(1, int(math.ceil(self.size_bytes / block_size)))


class Hdfs:
    """File namespace with creation, read/write accounting, and timing.

    The filesystem does not enforce capacity limits (production HDFS clusters
    are provisioned for their data); what matters for the paper's analyses is
    the access stream it observes, which it exposes to the attached cache via
    the ``on_read`` callback of :meth:`read`.
    """

    def __init__(self, config: Optional[HdfsConfig] = None):
        self.config = config or HdfsConfig()
        self._files: Dict[str, HdfsFile] = {}
        self.bytes_written = 0.0
        self.bytes_read = 0.0
        self._placement_cursor = 0

    # ------------------------------------------------------------------
    def __contains__(self, path: str) -> bool:
        return path in self._files

    def __len__(self) -> int:
        return len(self._files)

    def get(self, path: str) -> Optional[HdfsFile]:
        return self._files.get(path)

    def files(self) -> Iterable[HdfsFile]:
        return self._files.values()

    def total_bytes(self) -> float:
        """Logical bytes stored (not counting replication)."""
        return float(sum(entry.size_bytes for entry in self._files.values()))

    def raw_bytes(self) -> float:
        """Physical bytes stored including replication."""
        return self.total_bytes() * self.config.replication

    # ------------------------------------------------------------------
    def create(self, path: str, size_bytes: float, now_s: float = 0.0,
               overwrite: bool = True) -> HdfsFile:
        """Create (or overwrite) a file of the given size.

        Raises:
            SimulationError: when the file exists and ``overwrite`` is false,
                or the size is negative.
        """
        if size_bytes < 0:
            raise SimulationError("file size must be non-negative")
        if path in self._files and not overwrite:
            raise SimulationError("file %r already exists" % (path,))
        entry = HdfsFile(path=path, size_bytes=float(size_bytes), created_at_s=now_s,
                         last_access_s=now_s)
        if self.config.retain_files:
            self._files[path] = entry
        self.bytes_written += float(size_bytes)
        return entry

    def ensure(self, path: str, size_bytes: float, now_s: float = 0.0) -> HdfsFile:
        """Create the file if missing; otherwise grow it to at least ``size_bytes``."""
        existing = self._files.get(path)
        if existing is None:
            return self.create(path, size_bytes, now_s)
        if size_bytes > existing.size_bytes:
            self.bytes_written += size_bytes - existing.size_bytes
            existing.size_bytes = float(size_bytes)
        return existing

    def read(self, path: str, now_s: float, size_bytes: Optional[float] = None) -> HdfsFile:
        """Record a read of ``path`` and return its entry.

        Unknown paths are auto-created with the requested size: traces begin
        mid-life of a cluster, so the first read of a path implies the data
        already existed before the trace started.
        """
        entry = self._files.get(path)
        if entry is None:
            entry = self.create(path, size_bytes or 0.0, now_s)
            # The pre-existing data was not written during the simulation.
            self.bytes_written -= entry.size_bytes
        entry.access_count += 1
        entry.last_access_s = now_s
        read_bytes = size_bytes if size_bytes is not None else entry.size_bytes
        self.bytes_read += float(read_bytes)
        return entry

    def delete(self, path: str) -> bool:
        """Remove a file; returns whether it existed."""
        return self._files.pop(path, None) is not None

    # ------------------------------------------------------------------
    def read_time_s(self, size_bytes: float, parallelism: int = 1) -> float:
        """Time to stream ``size_bytes`` with ``parallelism`` concurrent readers."""
        if size_bytes < 0:
            raise SimulationError("size must be non-negative")
        effective = self.config.disk_bandwidth_bps * max(1, min(parallelism, self.config.n_datanodes))
        return size_bytes / effective

    def write_time_s(self, size_bytes: float, parallelism: int = 1) -> float:
        """Time to write ``size_bytes`` including the replication pipeline."""
        if size_bytes < 0:
            raise SimulationError("size must be non-negative")
        effective = self.config.disk_bandwidth_bps * max(1, min(parallelism, self.config.n_datanodes))
        return size_bytes * self.config.replication / effective

    def block_placement(self, path: str) -> List[List[int]]:
        """Round-robin datanode placement for each block of ``path``.

        Returns one list of ``replication`` datanode ids per block.  Placement
        is deterministic given creation order, which keeps replays reproducible.
        """
        entry = self._files.get(path)
        if entry is None:
            raise SimulationError("unknown file %r" % (path,))
        placements = []
        for _ in range(entry.n_blocks(self.config.block_size)):
            nodes = [
                (self._placement_cursor + replica) % self.config.n_datanodes
                for replica in range(min(self.config.replication, self.config.n_datanodes))
            ]
            placements.append(nodes)
            self._placement_cursor = (self._placement_cursor + 1) % self.config.n_datanodes
        return placements
