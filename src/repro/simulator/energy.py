"""Cluster energy model (§5.2 of the paper).

The paper's burstiness analysis concludes that "mechanisms for conserving
energy will be beneficial during periods of low utilization": peak-to-median
load ratios of 9:1 to 260:1 mean the cluster spends most hours far below its
provisioned capacity.  This module turns that remark into measurable
quantities on top of the replay simulator's utilization samples:

* :class:`PowerModel` — a standard linear node power model (idle watts plus a
  utilization-proportional active component), the same shape used by the
  power-management studies the paper cites (Sierra, power management of
  online data-intensive services).
* :func:`energy_from_metrics` — integrate the replay's slot-occupancy step
  function into energy, and compare against two reference points: an
  always-on cluster at peak power, and a hypothetical perfectly
  energy-proportional cluster.
* :class:`PowerDownPolicy` / :func:`evaluate_power_down` — estimate the
  additional savings from powering nodes off when utilization stays below a
  threshold, including the cost of keeping a minimum node count up for data
  availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from .cluster import ClusterConfig
from .metrics import SimulationMetrics

__all__ = [
    "PowerModel",
    "EnergyReport",
    "energy_from_metrics",
    "PowerDownPolicy",
    "PowerDownEvaluation",
    "evaluate_power_down",
]

#: Joules per kilowatt-hour, for human-readable reporting.
JOULES_PER_KWH = 3.6e6


@dataclass(frozen=True)
class PowerModel:
    """Linear per-node power model.

    Node power = ``idle_node_watts`` + busy-slot fraction × (``peak_node_watts``
    − ``idle_node_watts``).  Typical servers of the paper's era idle at roughly
    half their peak power, which is what the defaults encode.

    Attributes:
        idle_node_watts: power drawn by an idle (but powered-on) node.
        peak_node_watts: power drawn by a node with every slot busy.
        powered_off_watts: residual draw of a powered-off node (0 by default).
    """

    idle_node_watts: float = 150.0
    peak_node_watts: float = 300.0
    powered_off_watts: float = 0.0

    def __post_init__(self):
        if self.idle_node_watts < 0 or self.peak_node_watts < 0 or self.powered_off_watts < 0:
            raise SimulationError("power values must be non-negative")
        if self.peak_node_watts < self.idle_node_watts:
            raise SimulationError("peak power must be at least idle power")

    def cluster_power_watts(self, busy_slots: float, config: ClusterConfig) -> float:
        """Instantaneous cluster power with every node powered on.

        Busy slots are assumed spread evenly across nodes, which matches the
        simulator's rotating-cursor placement.
        """
        if busy_slots < 0:
            raise SimulationError("busy slot count must be non-negative")
        fraction = min(1.0, busy_slots / float(config.total_slots))
        per_node = self.idle_node_watts + fraction * (self.peak_node_watts - self.idle_node_watts)
        return per_node * config.n_nodes


@dataclass
class EnergyReport:
    """Energy accounting for one replay.

    Attributes:
        horizon_s: simulated time span the energy was integrated over.
        energy_joules: energy consumed under the linear power model with all
            nodes always on.
        always_peak_joules: energy of a cluster pinned at peak power
            (the provisioning-for-peak reference point).
        proportional_joules: energy of a hypothetical perfectly
            energy-proportional cluster (power scales linearly from zero with
            utilization) — the lower bound the paper's burstiness numbers make
            attractive.
        mean_power_watts: time-averaged power.
        mean_utilization: time-averaged slot utilization.
    """

    horizon_s: float
    energy_joules: float
    always_peak_joules: float
    proportional_joules: float
    mean_power_watts: float
    mean_utilization: float

    @property
    def energy_kwh(self) -> float:
        return self.energy_joules / JOULES_PER_KWH

    @property
    def savings_vs_peak(self) -> float:
        """Fractional saving of the linear model versus an always-at-peak cluster."""
        if self.always_peak_joules <= 0:
            return 0.0
        return 1.0 - self.energy_joules / self.always_peak_joules

    @property
    def proportionality_gap(self) -> float:
        """Fraction of consumed energy that a proportional cluster would avoid."""
        if self.energy_joules <= 0:
            return 0.0
        return 1.0 - self.proportional_joules / self.energy_joules


def _utilization_steps(metrics: SimulationMetrics) -> List[Tuple[float, float, float]]:
    """Return (start, end, busy_slots) steps of the replay's occupancy.

    Delegates to :meth:`SimulationMetrics.utilization_steps`: sample-exact
    when the replay retained its utilization samples, reconstructed at hour
    granularity from the incremental accumulator for streaming replays.
    """
    return metrics.utilization_steps()


def energy_from_metrics(metrics: SimulationMetrics, config: ClusterConfig,
                        power: Optional[PowerModel] = None) -> EnergyReport:
    """Integrate a replay's slot-occupancy step function into an energy report.

    Raises:
        SimulationError: when the metrics carry fewer than two utilization
            samples (nothing to integrate).
    """
    power = power or PowerModel()
    steps = _utilization_steps(metrics)
    horizon = steps[-1][1] - steps[0][0]

    energy = 0.0
    proportional = 0.0
    busy_slot_seconds = 0.0
    for start, end, busy in steps:
        span = end - start
        energy += power.cluster_power_watts(busy, config) * span
        fraction = min(1.0, busy / float(config.total_slots))
        proportional += power.peak_node_watts * config.n_nodes * fraction * span
        busy_slot_seconds += busy * span

    always_peak = power.peak_node_watts * config.n_nodes * horizon
    mean_utilization = busy_slot_seconds / (horizon * config.total_slots) if horizon > 0 else 0.0
    return EnergyReport(
        horizon_s=horizon,
        energy_joules=energy,
        always_peak_joules=always_peak,
        proportional_joules=proportional,
        mean_power_watts=energy / horizon if horizon > 0 else 0.0,
        mean_utilization=mean_utilization,
    )


@dataclass(frozen=True)
class PowerDownPolicy:
    """Power nodes off when the workload leaves them idle.

    The policy keeps exactly as many nodes on as the current slot demand
    requires (rounded up), plus a safety margin, and never drops below
    ``min_nodes_on`` — the covering subset that must stay up so every HDFS
    block keeps at least one live replica (the Sierra/Rabbit-style argument).

    Attributes:
        min_nodes_fraction: minimum fraction of nodes that must stay powered on.
        headroom_fraction: extra fraction of currently-needed nodes kept on to
            absorb short bursts without waiting for node wake-up.
        transition_energy_joules: energy charged for every node power state
            transition (wake or sleep).
    """

    min_nodes_fraction: float = 0.34
    headroom_fraction: float = 0.10
    transition_energy_joules: float = 5000.0

    def __post_init__(self):
        if not 0.0 < self.min_nodes_fraction <= 1.0:
            raise SimulationError("min_nodes_fraction must be in (0, 1]")
        if self.headroom_fraction < 0:
            raise SimulationError("headroom_fraction must be non-negative")
        if self.transition_energy_joules < 0:
            raise SimulationError("transition energy must be non-negative")


@dataclass
class PowerDownEvaluation:
    """Result of applying a :class:`PowerDownPolicy` to a replay.

    Attributes:
        baseline_joules: energy with all nodes always on (linear model).
        policy_joules: energy with the power-down policy applied.
        savings_fraction: fractional saving of the policy over the baseline.
        mean_nodes_on: time-averaged number of powered-on nodes.
        transitions: number of node power state transitions charged.
    """

    baseline_joules: float
    policy_joules: float
    savings_fraction: float
    mean_nodes_on: float
    transitions: int


def evaluate_power_down(metrics: SimulationMetrics, config: ClusterConfig,
                        power: Optional[PowerModel] = None,
                        policy: Optional[PowerDownPolicy] = None) -> PowerDownEvaluation:
    """Estimate the savings of powering idle nodes down during low utilization.

    The evaluation is optimistic about wake-up latency (demand is assumed
    known one step ahead) but charges ``transition_energy_joules`` per node
    transition, so rapid oscillation is penalized.  The point is the *shape*
    comparison the paper motivates: bursty workloads with low median load have
    a large powered-down fraction most of the time.

    Raises:
        SimulationError: when the metrics carry fewer than two utilization samples.
    """
    power = power or PowerModel()
    policy = policy or PowerDownPolicy()
    steps = _utilization_steps(metrics)
    slots_per_node = config.map_slots_per_node + config.reduce_slots_per_node
    min_nodes = max(1, int(np.ceil(policy.min_nodes_fraction * config.n_nodes)))

    baseline = 0.0
    with_policy = 0.0
    node_seconds_on = 0.0
    transitions = 0
    previous_nodes_on: Optional[int] = None
    for start, end, busy in steps:
        span = end - start
        baseline += power.cluster_power_watts(busy, config) * span

        needed = int(np.ceil(busy / slots_per_node)) if busy > 0 else 0
        nodes_on = min(config.n_nodes,
                       max(min_nodes, int(np.ceil(needed * (1.0 + policy.headroom_fraction)))))
        if previous_nodes_on is not None and nodes_on != previous_nodes_on:
            transitions += abs(nodes_on - previous_nodes_on)
            with_policy += policy.transition_energy_joules * abs(nodes_on - previous_nodes_on)
        previous_nodes_on = nodes_on

        on_config_fraction = min(1.0, busy / float(max(1, nodes_on * slots_per_node)))
        per_node = power.idle_node_watts + on_config_fraction * (
            power.peak_node_watts - power.idle_node_watts)
        with_policy += (per_node * nodes_on
                        + power.powered_off_watts * (config.n_nodes - nodes_on)) * span
        node_seconds_on += nodes_on * span

    horizon = steps[-1][1] - steps[0][0]
    savings = 1.0 - with_policy / baseline if baseline > 0 else 0.0
    return PowerDownEvaluation(
        baseline_joules=baseline,
        policy_joules=with_policy,
        savings_fraction=savings,
        mean_nodes_on=node_seconds_on / horizon if horizon > 0 else 0.0,
        transitions=transitions,
    )
